"""Suite-level trace generation helpers used by benches and examples."""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace
from repro.util.rng import derive_seed
from repro.workloads.spec_profiles import SPEC_PROFILES

DEFAULT_TRACE_LENGTH = 100_000
DEFAULT_SEED = 2006  # the paper's publication year, for determinism


def default_suite() -> Dict[str, object]:
    """The twelve SPEC-like profiles in suite order."""
    return dict(SPEC_PROFILES)


def suite_traces(
    length: int = DEFAULT_TRACE_LENGTH,
    seed: int = DEFAULT_SEED,
    names: Optional[Iterable[str]] = None,
) -> Dict[str, Trace]:
    """Generate one trace per suite workload (deterministic per name)."""
    selected = list(names) if names is not None else list(SPEC_PROFILES)
    traces = {}
    for name in selected:
        profile = SPEC_PROFILES[name]
        traces[name] = generate_trace(
            profile, length, seed=derive_seed(seed, name)
        )
    return traces
