"""SPEC-CPU2000-integer-like workload profiles.

Each profile's parameters are chosen to land in the ballpark of the
published characteristics of the corresponding SPEC CPU2000 integer
benchmark on a 4-wide machine with a hybrid predictor and 64K/1M
caches: branch misprediction rates of a few per cent, L1D miss rates
of 1-5%, gcc/perlbmk/vortex with significant I-cache pressure, mcf
dominated by long D-cache misses and low ILP, crafty/eon with high ILP.
Absolute fidelity to SPEC is *not* claimed (see DESIGN.md); what
matters for the reproduction is that the suite spans the behavioural
axes the paper's characterization varies over.
"""

from __future__ import annotations

from typing import Dict, List

from repro.isa.opcodes import OpClass
from repro.trace.profiles import WorkloadProfile


def _mix(
    ialu: float,
    load: float,
    store: float,
    branch: float,
    jump: float = 0.02,
    imul: float = 0.01,
    idiv: float = 0.002,
    fadd: float = 0.0,
    fmul: float = 0.0,
    fdiv: float = 0.0,
) -> Dict[OpClass, float]:
    mix = {
        OpClass.IALU: ialu,
        OpClass.IMUL: imul,
        OpClass.IDIV: idiv,
        OpClass.FADD: fadd,
        OpClass.FMUL: fmul,
        OpClass.FDIV: fdiv,
        OpClass.LOAD: load,
        OpClass.STORE: store,
        OpClass.BRANCH: branch,
        OpClass.JUMP: jump,
    }
    total = sum(mix.values())
    # Normalize residual rounding into the ALU share.
    mix[OpClass.IALU] += 1.0 - total
    return mix


SPEC_PROFILES: Dict[str, WorkloadProfile] = {
    "gzip": WorkloadProfile(
        name="gzip",
        mix=_mix(ialu=0.48, load=0.22, store=0.08, branch=0.17, jump=0.01),
        mean_dependence_distance=4.5,
        mispredict_rate=0.045,
        branch_taken_fraction=0.60,
        il1_mpki=0.3,
        dl1_miss_rate=0.020,
        dl2_miss_rate=0.0015,
        burst_fraction=0.10,
        burst_factor=3.0,
    ),
    "vpr": WorkloadProfile(
        name="vpr",
        mix=_mix(ialu=0.44, load=0.26, store=0.09, branch=0.14, fadd=0.03),
        mean_dependence_distance=3.5,
        mispredict_rate=0.075,
        branch_taken_fraction=0.55,
        il1_mpki=0.8,
        dl1_miss_rate=0.035,
        dl2_miss_rate=0.004,
        burst_fraction=0.15,
        burst_factor=4.0,
    ),
    "gcc": WorkloadProfile(
        name="gcc",
        mix=_mix(ialu=0.45, load=0.24, store=0.11, branch=0.15, jump=0.03),
        mean_dependence_distance=4.0,
        mispredict_rate=0.055,
        branch_taken_fraction=0.58,
        il1_mpki=6.0,
        dl1_miss_rate=0.030,
        dl2_miss_rate=0.003,
        burst_fraction=0.25,
        burst_factor=5.0,
    ),
    "mcf": WorkloadProfile(
        name="mcf",
        mix=_mix(ialu=0.40, load=0.30, store=0.09, branch=0.19, jump=0.01),
        mean_dependence_distance=3.0,
        mispredict_rate=0.065,
        branch_taken_fraction=0.52,
        il1_mpki=0.2,
        dl1_miss_rate=0.080,
        dl2_miss_rate=0.060,
        burst_fraction=0.20,
        burst_factor=4.0,
        stride_fraction=0.2,
    ),
    "crafty": WorkloadProfile(
        name="crafty",
        mix=_mix(ialu=0.52, load=0.25, store=0.06, branch=0.11, jump=0.02),
        mean_dependence_distance=6.0,
        mispredict_rate=0.055,
        branch_taken_fraction=0.57,
        il1_mpki=2.0,
        dl1_miss_rate=0.012,
        dl2_miss_rate=0.0008,
        burst_fraction=0.10,
        burst_factor=3.0,
    ),
    "parser": WorkloadProfile(
        name="parser",
        mix=_mix(ialu=0.45, load=0.24, store=0.10, branch=0.17),
        mean_dependence_distance=4.0,
        mispredict_rate=0.060,
        branch_taken_fraction=0.56,
        il1_mpki=1.0,
        dl1_miss_rate=0.025,
        dl2_miss_rate=0.004,
        burst_fraction=0.15,
        burst_factor=4.0,
    ),
    "eon": WorkloadProfile(
        name="eon",
        mix=_mix(
            ialu=0.37,
            load=0.26,
            store=0.11,
            branch=0.09,
            fadd=0.08,
            fmul=0.06,
            fdiv=0.005,
        ),
        mean_dependence_distance=6.5,
        mispredict_rate=0.025,
        branch_taken_fraction=0.60,
        il1_mpki=1.5,
        dl1_miss_rate=0.005,
        dl2_miss_rate=0.0003,
        burst_fraction=0.08,
        burst_factor=3.0,
    ),
    "perlbmk": WorkloadProfile(
        name="perlbmk",
        mix=_mix(ialu=0.44, load=0.25, store=0.12, branch=0.13, jump=0.04),
        mean_dependence_distance=4.5,
        mispredict_rate=0.040,
        branch_taken_fraction=0.58,
        il1_mpki=6.0,
        dl1_miss_rate=0.015,
        dl2_miss_rate=0.001,
        burst_fraction=0.20,
        burst_factor=4.0,
    ),
    "gap": WorkloadProfile(
        name="gap",
        mix=_mix(ialu=0.47, load=0.26, store=0.09, branch=0.11, imul=0.03),
        mean_dependence_distance=5.5,
        mispredict_rate=0.028,
        branch_taken_fraction=0.62,
        il1_mpki=0.5,
        dl1_miss_rate=0.020,
        dl2_miss_rate=0.005,
        burst_fraction=0.10,
        burst_factor=3.0,
    ),
    "vortex": WorkloadProfile(
        name="vortex",
        mix=_mix(ialu=0.43, load=0.27, store=0.13, branch=0.12, jump=0.03),
        mean_dependence_distance=5.0,
        mispredict_rate=0.018,
        branch_taken_fraction=0.60,
        il1_mpki=8.0,
        dl1_miss_rate=0.018,
        dl2_miss_rate=0.002,
        burst_fraction=0.20,
        burst_factor=5.0,
    ),
    "bzip2": WorkloadProfile(
        name="bzip2",
        mix=_mix(ialu=0.49, load=0.23, store=0.09, branch=0.15, jump=0.01),
        mean_dependence_distance=5.0,
        mispredict_rate=0.065,
        branch_taken_fraction=0.55,
        il1_mpki=0.2,
        dl1_miss_rate=0.030,
        dl2_miss_rate=0.003,
        burst_fraction=0.12,
        burst_factor=4.0,
    ),
    "twolf": WorkloadProfile(
        name="twolf",
        mix=_mix(ialu=0.42, load=0.27, store=0.08, branch=0.17, fadd=0.02),
        mean_dependence_distance=3.5,
        mispredict_rate=0.090,
        branch_taken_fraction=0.53,
        il1_mpki=0.5,
        dl1_miss_rate=0.050,
        dl2_miss_rate=0.003,
        burst_fraction=0.18,
        burst_factor=4.5,
    ),
}


def _fp_mix(
    ialu: float,
    load: float,
    store: float,
    branch: float,
    fadd: float,
    fmul: float,
    fdiv: float = 0.005,
    jump: float = 0.01,
) -> Dict[OpClass, float]:
    return _mix(
        ialu=ialu, load=load, store=store, branch=branch, jump=jump,
        imul=0.005, idiv=0.001, fadd=fadd, fmul=fmul, fdiv=fdiv,
    )


# SPEC CPU2000 FP-like profiles: fewer, more predictable branches,
# heavy FP mixes, streaming memory behaviour (high stride fractions),
# and — for art/equake-like entries — significant long-miss rates.
SPEC_FP_PROFILES: Dict[str, WorkloadProfile] = {
    "swim": WorkloadProfile(
        name="swim",
        mix=_fp_mix(ialu=0.28, load=0.28, store=0.12, branch=0.03,
                    fadd=0.16, fmul=0.12),
        mean_dependence_distance=8.0,
        mispredict_rate=0.008,
        branch_taken_fraction=0.85,
        il1_mpki=0.1,
        dl1_miss_rate=0.060,
        dl2_miss_rate=0.020,
        stride_fraction=0.95,
        burst_fraction=0.05,
    ),
    "mgrid": WorkloadProfile(
        name="mgrid",
        mix=_fp_mix(ialu=0.27, load=0.30, store=0.08, branch=0.03,
                    fadd=0.18, fmul=0.13),
        mean_dependence_distance=9.0,
        mispredict_rate=0.006,
        branch_taken_fraction=0.88,
        il1_mpki=0.1,
        dl1_miss_rate=0.035,
        dl2_miss_rate=0.006,
        stride_fraction=0.95,
        burst_fraction=0.05,
    ),
    "applu": WorkloadProfile(
        name="applu",
        mix=_fp_mix(ialu=0.26, load=0.28, store=0.10, branch=0.04,
                    fadd=0.16, fmul=0.14, fdiv=0.01),
        mean_dependence_distance=7.0,
        mispredict_rate=0.012,
        branch_taken_fraction=0.82,
        il1_mpki=0.3,
        dl1_miss_rate=0.040,
        dl2_miss_rate=0.010,
        stride_fraction=0.9,
        burst_fraction=0.08,
    ),
    "art": WorkloadProfile(
        name="art",
        mix=_fp_mix(ialu=0.30, load=0.30, store=0.06, branch=0.09,
                    fadd=0.14, fmul=0.09, fdiv=0.001),
        mean_dependence_distance=5.0,
        mispredict_rate=0.025,
        branch_taken_fraction=0.70,
        il1_mpki=0.1,
        dl1_miss_rate=0.100,
        dl2_miss_rate=0.050,
        stride_fraction=0.6,
        burst_fraction=0.10,
    ),
    "equake": WorkloadProfile(
        name="equake",
        mix=_fp_mix(ialu=0.30, load=0.30, store=0.08, branch=0.07,
                    fadd=0.13, fmul=0.10),
        mean_dependence_distance=5.5,
        mispredict_rate=0.020,
        branch_taken_fraction=0.75,
        il1_mpki=0.5,
        dl1_miss_rate=0.060,
        dl2_miss_rate=0.015,
        stride_fraction=0.7,
        burst_fraction=0.10,
    ),
    "ammp": WorkloadProfile(
        name="ammp",
        mix=_fp_mix(ialu=0.30, load=0.28, store=0.08, branch=0.08,
                    fadd=0.13, fmul=0.10, fdiv=0.008),
        mean_dependence_distance=4.5,
        mispredict_rate=0.030,
        branch_taken_fraction=0.68,
        il1_mpki=0.6,
        dl1_miss_rate=0.045,
        dl2_miss_rate=0.012,
        stride_fraction=0.5,
        burst_fraction=0.12,
    ),
}

ALL_PROFILES: Dict[str, WorkloadProfile] = {
    **SPEC_PROFILES,
    **SPEC_FP_PROFILES,
}


def spec_profile(name: str) -> WorkloadProfile:
    """Return one profile by benchmark name (integer or FP suite)."""
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(ALL_PROFILES)}"
        ) from None


def spec_names() -> List[str]:
    """Integer-suite benchmark names in canonical (suite) order."""
    return list(SPEC_PROFILES)


def spec_fp_names() -> List[str]:
    """FP-suite benchmark names in canonical order."""
    return list(SPEC_FP_PROFILES)
