"""Assembly microbenchmark kernels.

Each builder returns an assembled :class:`~repro.isa.program.Program`
plus the data-memory preload it expects. Running a kernel through the
functional simulator yields a *real* dynamic trace — real dependence
chains, real addresses, real branch outcomes — used to cross-check the
synthetic-trace methodology and to drive structural (predictor+cache)
simulations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.trace.functional import DataMemory, FunctionalSimulator
from repro.trace.stream import Trace
from repro.util.rng import SplitMix

DATA_BASE = 0x100000


@dataclass
class Kernel:
    """An assembled kernel plus its initial memory image."""

    program: Program
    memory_image: Dict[int, float] = field(default_factory=dict)

    def run(self, max_instructions: int = 2_000_000) -> Trace:
        """Execute functionally; return the dynamic trace."""
        memory = DataMemory()
        memory.preload(self.memory_image)
        simulator = FunctionalSimulator(self.program, memory=memory)
        return simulator.run(max_instructions=max_instructions)


def dot_product(elements: int = 512) -> Kernel:
    """Floating-point dot product: streaming loads, FP chain, one loop
    branch — high ILP aside from the accumulator recurrence."""
    text = f"""
        li   r2, {DATA_BASE}
        li   r3, {DATA_BASE + 8 * elements}
        fmov f1, 0
    loop:
        fld  f2, 0(r2)
        fld  f3, {8 * elements}(r2)
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r2, r2, 8
        bne  r2, r3, loop
        halt
    """
    image = {DATA_BASE + 8 * i: float(i % 17) for i in range(2 * elements)}
    return Kernel(program=assemble(text, name="dot_product"), memory_image=image)


def pointer_chase(nodes: int = 256, laps: int = 8, seed: int = 11) -> Kernel:
    """Linked-list traversal: serialized loads (memory-latency bound,
    minimal ILP) — the mcf-like extreme."""
    rng = SplitMix(seed)
    order = list(range(1, nodes))
    rng.shuffle(order)
    chain = [0] + order
    image: Dict[int, float] = {}
    for i, node in enumerate(chain):
        succ = chain[(i + 1) % nodes]
        image[DATA_BASE + 16 * node] = DATA_BASE + 16 * succ
        image[DATA_BASE + 16 * node + 8] = float(node)
    text = f"""
        li   r2, {DATA_BASE}
        li   r4, 0
        li   r5, {laps * nodes}
        li   r6, 0
    loop:
        ld   r3, 8(r2)
        add  r4, r4, r3
        ld   r2, 0(r2)
        addi r6, r6, 1
        bne  r6, r5, loop
        halt
    """
    return Kernel(program=assemble(text, name="pointer_chase"), memory_image=image)


def branchy_search(elements: int = 512, seed: int = 5) -> Kernel:
    """Scan with a data-dependent branch per element: the misprediction-
    heavy extreme (values are pseudo-random, the branch is essentially
    unpredictable)."""
    rng = SplitMix(seed)
    image = {DATA_BASE + 8 * i: float(rng.randint(0, 99)) for i in range(elements)}
    text = f"""
        li   r2, {DATA_BASE}
        li   r3, {DATA_BASE + 8 * elements}
        li   r4, 0
        li   r6, 50
    loop:
        ld   r5, 0(r2)
        blt  r5, r6, skip
        addi r4, r4, 1
    skip:
        addi r2, r2, 8
        bne  r2, r3, loop
        halt
    """
    return Kernel(program=assemble(text, name="branchy_search"), memory_image=image)


def stride_sum(elements: int = 1024, stride: int = 4) -> Kernel:
    """Strided reduction: exercises spatial locality in the D-cache."""
    image = {DATA_BASE + 8 * i: float(i & 7) for i in range(elements)}
    text = f"""
        li   r2, 0
        li   r3, {elements * 8}
        li   r4, 0
    loop:
        ld   r5, {DATA_BASE}(r2)
        add  r4, r4, r5
        addi r2, r2, {8 * stride}
        blt  r2, r3, loop
        halt
    """
    return Kernel(program=assemble(text, name="stride_sum"), memory_image=image)


def fibonacci(count: int = 40) -> Kernel:
    """Tight serial recurrence: the lowest-ILP integer chain."""
    text = f"""
        li   r2, 0
        li   r3, 1
        li   r5, 0
        li   r6, {count}
    loop:
        add  r4, r2, r3
        add  r2, r3, r0
        add  r3, r4, r0
        addi r5, r5, 1
        bne  r5, r6, loop
        st   r4, {DATA_BASE}(r0)
        halt
    """
    return Kernel(program=assemble(text, name="fibonacci"))


def nested_loop(outer: int = 64, inner: int = 16) -> Kernel:
    """Two-level loop nest: highly predictable branches, jump traffic."""
    text = f"""
        li   r2, 0
        li   r6, {outer}
        li   r7, {inner}
        li   r8, 0
    outer_loop:
        li   r3, 0
    inner_loop:
        add  r8, r8, r3
        addi r3, r3, 1
        bne  r3, r7, inner_loop
        addi r2, r2, 1
        bne  r2, r6, outer_loop
        st   r8, {DATA_BASE}(r0)
        halt
    """
    return Kernel(program=assemble(text, name="nested_loop"))


def histogram(elements: int = 512, buckets: int = 32, seed: int = 3) -> Kernel:
    """Data-dependent store addresses (read-modify-write histogram):
    exercises store->load memory dependences."""
    rng = SplitMix(seed)
    image = {
        DATA_BASE + 8 * i: float(rng.randint(0, buckets - 1))
        for i in range(elements)
    }
    table = DATA_BASE + 8 * elements
    text = f"""
        li   r2, {DATA_BASE}
        li   r3, {table}
        li   r4, {elements}
        li   r5, 0
        li   r9, 3
    loop:
        ld   r6, 0(r2)
        sll  r7, r6, r9
        add  r7, r7, r3
        ld   r8, 0(r7)
        addi r8, r8, 1
        st   r8, 0(r7)
        addi r2, r2, 8
        addi r5, r5, 1
        bne  r5, r4, loop
        halt
    """
    return Kernel(program=assemble(text, name="histogram"), memory_image=image)


def binary_search(elements: int = 1024, queries: int = 64, seed: int = 7) -> Kernel:
    """Repeated binary search over a sorted array: log-depth loops with
    hard-to-predict direction branches and data-dependent addresses."""
    rng = SplitMix(seed)
    image = {DATA_BASE + 8 * i: float(2 * i) for i in range(elements)}
    queries_base = DATA_BASE + 8 * elements
    for q in range(queries):
        image[queries_base + 8 * q] = float(2 * rng.randint(0, elements - 1))
    text = f"""
        li   r10, 0
        li   r11, {queries}
        li   r9, 3
    query_loop:
        sll  r12, r10, r9
        ld   r13, {queries_base}(r12)
        li   r2, 0
        li   r3, {elements}
    search_loop:
        sub  r4, r3, r2
        slti r5, r4, 2
        bnez r5, found
        add  r6, r2, r3
        li   r7, 1
        srl  r6, r6, r7
        li   r8, 3
        sll  r7, r6, r8
        ld   r5, {DATA_BASE}(r7)
        bge  r13, r5, go_right
        add  r3, r6, r0
        j    search_loop
    go_right:
        add  r2, r6, r0
        j    search_loop
    found:
        addi r10, r10, 1
        bne  r10, r11, query_loop
        halt
    """
    return Kernel(program=assemble(text, name="binary_search"), memory_image=image)


def matmul(size: int = 12) -> Kernel:
    """Dense matrix multiply (size x size): triply nested loops, FP
    multiply-accumulate chains, strided + repeated access patterns."""
    a_base = DATA_BASE
    b_base = DATA_BASE + 8 * size * size
    c_base = DATA_BASE + 16 * size * size
    image: Dict[int, float] = {}
    for i in range(size * size):
        image[a_base + 8 * i] = float(i % 7)
        image[b_base + 8 * i] = float(i % 5)
    row_bytes = 8 * size
    text = f"""
        li   r2, 0              # i
        li   r14, {row_bytes}
        li   r15, 8
        li   r13, {size}
    i_loop:
        li   r3, 0              # j
    j_loop:
        fmov f1, 0              # acc
        li   r4, 0              # k
        mul  r7, r2, r14        # i * row_bytes
    k_loop:
        mul  r8, r4, r15        # k * 8
        add  r9, r7, r8
        fld  f2, {a_base}(r9)   # A[i][k]
        mul  r10, r4, r14       # k * row_bytes
        mul  r11, r3, r15       # j * 8
        add  r12, r10, r11
        fld  f3, {b_base}(r12)  # B[k][j]
        fmul f4, f2, f3
        fadd f1, f1, f4
        addi r4, r4, 1
        bne  r4, r13, k_loop
        mul  r11, r3, r15
        add  r9, r7, r11
        fst  f1, {c_base}(r9)   # C[i][j]
        addi r3, r3, 1
        bne  r3, r13, j_loop
        addi r2, r2, 1
        bne  r2, r13, i_loop
        halt
    """
    return Kernel(program=assemble(text, name="matmul"), memory_image=image)


def bubble_sort(elements: int = 48, seed: int = 13) -> Kernel:
    """In-place bubble sort: data-dependent swap branches plus heavy
    store->load forwarding through the array."""
    rng = SplitMix(seed)
    image = {
        DATA_BASE + 8 * i: float(rng.randint(0, 999)) for i in range(elements)
    }
    text = f"""
        li   r2, 0              # pass counter
        li   r9, {elements - 1}
        li   r15, 8
    pass_loop:
        li   r3, 0              # index
    scan_loop:
        mul  r4, r3, r15
        ld   r5, {DATA_BASE}(r4)
        ld   r6, {DATA_BASE + 8}(r4)
        bge  r6, r5, no_swap
        st   r6, {DATA_BASE}(r4)
        st   r5, {DATA_BASE + 8}(r4)
    no_swap:
        addi r3, r3, 1
        bne  r3, r9, scan_loop
        addi r2, r2, 1
        bne  r2, r9, pass_loop
        halt
    """
    return Kernel(program=assemble(text, name="bubble_sort"), memory_image=image)


def checksum(elements: int = 2048, seed: int = 17) -> Kernel:
    """Rolling xor/shift checksum: a single serial integer chain mixing
    loads — the integer analogue of the fibonacci recurrence."""
    rng = SplitMix(seed)
    image = {
        DATA_BASE + 8 * i: float(rng.randint(0, (1 << 31) - 1))
        for i in range(elements)
    }
    text = f"""
        li   r2, 0
        li   r3, {8 * elements}
        li   r4, 0              # checksum
        li   r7, 5
        li   r8, 3
    loop:
        ld   r5, {DATA_BASE}(r2)
        xor  r4, r4, r5
        sll  r6, r4, r8
        srl  r4, r4, r7
        or   r4, r4, r6
        addi r2, r2, 8
        bne  r2, r3, loop
        st   r4, {DATA_BASE}(r3)
        halt
    """
    return Kernel(program=assemble(text, name="checksum"), memory_image=image)


KERNEL_BUILDERS: Dict[str, Callable[[], Kernel]] = {
    "dot_product": dot_product,
    "pointer_chase": pointer_chase,
    "branchy_search": branchy_search,
    "stride_sum": stride_sum,
    "fibonacci": fibonacci,
    "nested_loop": nested_loop,
    "histogram": histogram,
    "binary_search": binary_search,
    "matmul": matmul,
    "bubble_sort": bubble_sort,
    "checksum": checksum,
}


def kernel_names() -> List[str]:
    return list(KERNEL_BUILDERS)


def build_kernel(name: str) -> Kernel:
    """Build a kernel by name with default parameters."""
    try:
        builder = KERNEL_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(KERNEL_BUILDERS)}"
        ) from None
    return builder()


def kernel_trace(name: str) -> Trace:
    """Build and functionally execute a kernel; return its trace."""
    return build_kernel(name).run()
