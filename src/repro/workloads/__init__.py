"""Workloads: SPEC-CPU2000-like statistical profiles and real kernels.

``spec_profiles`` defines twelve synthetic workload profiles whose
statistics (instruction mix, ILP, branch misprediction rates, cache
miss rates, burstiness) are set to ballpark published SPEC CPU2000
integer behaviour — the trace substitution documented in DESIGN.md.

``kernels`` provides assembled microbenchmark programs (dot product,
pointer chase, branchy search, ...) whose *real* dynamic traces, via
the functional simulator, cross-check the synthetic methodology.
"""

from repro.workloads.spec_profiles import (
    ALL_PROFILES,
    SPEC_FP_PROFILES,
    SPEC_PROFILES,
    spec_fp_names,
    spec_names,
    spec_profile,
)
from repro.workloads.kernels import (
    KERNEL_BUILDERS,
    build_kernel,
    kernel_names,
    kernel_trace,
)
from repro.workloads.generator import default_suite, suite_traces

__all__ = [
    "SPEC_PROFILES",
    "SPEC_FP_PROFILES",
    "ALL_PROFILES",
    "spec_profile",
    "spec_names",
    "spec_fp_names",
    "KERNEL_BUILDERS",
    "build_kernel",
    "kernel_names",
    "kernel_trace",
    "default_suite",
    "suite_traces",
]
