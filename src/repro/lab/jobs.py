"""Declarative job specs and the single-job execution engine.

A job is a picklable description of one unit of work — *what* to run,
never *how*. The same spec hashes to the same store key on every
machine, which is what makes results content-addressable:

- :class:`SimJob` — simulate one workload under one configuration
  (out-of-order or in-order core).
- :class:`ExperimentJob` — run one registered experiment (t1..f21).
- :class:`SweepJob` — a one-dimensional parameter sweep that expands
  into :class:`SimJob` points.

:func:`execute_job` is the engine the pool's workers call: store
lookup, bounded retry with exponential backoff, error capture (a
failing job degrades to a recorded failure, never an exception), and
wall-time accounting. It is a module-level function so it pickles by
reference into worker processes.
"""

from __future__ import annotations

import re
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.lab import codec
from repro.obs import context as _obs_context
from repro.lab.store import ResultStore, config_digest, job_key
from repro.obs import runtime as _obs
from repro.pipeline.config import CoreConfig
from repro.resilience import deadline as _deadline
from repro.resilience import faults
from repro.resilience.watchdog import (
    claim_job,
    stamp_job_start,
    worker_checkpoint,
)
from repro.util.rng import jittered_backoff_s
from repro.util.timing import Stopwatch

#: Job lifecycle states recorded in results and manifests.
class JobStatus:
    OK = "ok"
    CACHED = "cached"
    #: Completed in an earlier (crashed/interrupted) run of the same
    #: run-id; payload re-read from the store during ``--resume``.
    RESUMED = "resumed"
    FAILED = "failed"
    #: Not finished because the run drained on SIGINT/SIGTERM; the
    #: journal re-queues it on ``--resume``.
    INTERRUPTED = "interrupted"
    #: Dropped unexecuted: its deadline had already passed when a
    #: worker dequeued it (serve's dead-work cancellation — the client
    #: stopped listening, so running it would only burn a pool slot).
    EXPIRED = "expired"


@dataclass(frozen=True)
class JobSpec:
    """Base spec: identity plus failure policy.

    ``timeout_s`` bounds one attempt's wall time (enforced by the pool
    when running in worker processes; best-effort in serial mode).
    ``retries`` is the number of *additional* attempts after the first;
    ``backoff_s`` doubles per retry.
    """

    label: str = ""
    timeout_s: Optional[float] = None
    retries: int = 0
    backoff_s: float = 0.05

    def key(self) -> str:
        raise NotImplementedError

    def execute(self) -> Any:
        """Do the work; returns a codec-encodable value."""
        raise NotImplementedError

    def decode(self, payload: Dict[str, Any]) -> Any:
        """Rebuild the rich result object from a stored payload."""
        return codec.value_from_payload(payload)


@dataclass(frozen=True)
class SimJob(JobSpec):
    """Simulate one suite workload under one configuration."""

    workload: str = ""
    length: int = 60_000
    seed: int = 2006
    config: CoreConfig = field(default_factory=CoreConfig)
    core: str = "ooo"  # "ooo" | "inorder"

    def __post_init__(self) -> None:
        if self.core not in ("ooo", "inorder"):
            raise ValueError(f"core must be 'ooo' or 'inorder', got {self.core!r}")
        if not self.workload:
            raise ValueError("SimJob needs a workload name")
        if not self.label:
            object.__setattr__(
                self, "label", f"sim:{self.core}:{self.workload}"
            )

    def key(self) -> str:
        return job_key(
            kind=f"sim-{self.core}",
            workload=self.workload,
            length=self.length,
            seed=self.seed,
            config=self.config,
        )

    def execute(self) -> Any:
        # Imported lazily so job specs stay cheap to pickle and the
        # simulator is only loaded inside the process that runs them.
        from repro.pipeline.core import simulate
        from repro.trace.synthetic import generate_trace
        from repro.util.rng import derive_seed
        from repro.workloads.spec_profiles import ALL_PROFILES

        try:
            profile = ALL_PROFILES[self.workload]
        except KeyError:
            raise ValueError(f"unknown workload {self.workload!r}") from None
        trace = generate_trace(
            profile, self.length, seed=derive_seed(self.seed, self.workload)
        )
        if self.core == "inorder":
            from repro.pipeline.inorder import simulate_inorder

            return simulate_inorder(trace, self.config)
        return simulate(trace, self.config)


@dataclass(frozen=True)
class BatchSimJob(JobSpec):
    """Simulate one workload under N lockstep configurations at once.

    One job, one trace decode, N :class:`SimulationResult`s — routed
    through :class:`repro.perf.batchcore.BatchedSuperscalarCore`, whose
    results are field-exact equal to running each config through the
    scalar core (configs the batched kernel cannot model fall back to
    the scalar oracle inside ``run_batch`` transparently). The job key
    hashes every config digest so reordering or editing any point
    re-addresses the whole batch.
    """

    workload: str = ""
    length: int = 60_000
    seed: int = 2006
    configs: Tuple[CoreConfig, ...] = ()

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("BatchSimJob needs a workload name")
        if not self.configs:
            raise ValueError("BatchSimJob needs at least one config")
        object.__setattr__(self, "configs", tuple(self.configs))
        if not self.label:
            object.__setattr__(
                self,
                "label",
                f"batch:{self.workload}:{len(self.configs)}cfg",
            )

    def key(self) -> str:
        return job_key(
            kind="sim-batch",
            workload=self.workload,
            length=self.length,
            seed=self.seed,
            config=self.configs[0],
            extra={"configs": [config_digest(c) for c in self.configs]},
        )

    def execute(self) -> Any:
        from repro.perf.batchcore import run_batch
        from repro.trace.synthetic import generate_trace
        from repro.util.rng import derive_seed
        from repro.workloads.spec_profiles import ALL_PROFILES

        try:
            profile = ALL_PROFILES[self.workload]
        except KeyError:
            raise ValueError(f"unknown workload {self.workload!r}") from None
        trace = generate_trace(
            profile, self.length, seed=derive_seed(self.seed, self.workload)
        )
        return run_batch(trace, list(self.configs))


@dataclass(frozen=True)
class ShardSimJob(JobSpec):
    """Simulate one checkpoint shard ``[start, stop)`` of a workload.

    The shard's result is in its own relative time base; the submitter
    stitches the pieces with :func:`repro.perf.checkpoint.stitch`.
    ``start`` must be 0 or an interval boundary of the trace — the
    natural drain points where resume is provably clean.
    """

    workload: str = ""
    length: int = 60_000
    seed: int = 2006
    config: CoreConfig = field(default_factory=CoreConfig)
    start: int = 0
    stop: int = 0

    def __post_init__(self) -> None:
        if not self.workload:
            raise ValueError("ShardSimJob needs a workload name")
        if not (0 <= self.start < self.stop):
            raise ValueError(
                f"need 0 <= start < stop, got [{self.start}, {self.stop})"
            )
        if not self.label:
            object.__setattr__(
                self,
                "label",
                f"shard:{self.workload}:[{self.start},{self.stop})",
            )

    def key(self) -> str:
        return job_key(
            kind="sim-shard",
            workload=self.workload,
            length=self.length,
            seed=self.seed,
            config=self.config,
            extra={"start": self.start, "stop": self.stop},
        )

    def execute(self) -> Any:
        from repro.perf.checkpoint import simulate_shard
        from repro.trace.synthetic import generate_trace
        from repro.util.rng import derive_seed
        from repro.workloads.spec_profiles import ALL_PROFILES

        try:
            profile = ALL_PROFILES[self.workload]
        except KeyError:
            raise ValueError(f"unknown workload {self.workload!r}") from None
        trace = generate_trace(
            profile, self.length, seed=derive_seed(self.seed, self.workload)
        )
        return simulate_shard(trace, self.config, self.start, self.stop)


@dataclass(frozen=True)
class ExperimentJob(JobSpec):
    """Run one registered experiment (``t1``..``t3``, ``f1``..``f21``)."""

    experiment_id: str = ""

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ValueError("ExperimentJob needs an experiment id")
        if not self.label:
            object.__setattr__(self, "label", f"exp:{self.experiment_id}")

    def key(self) -> str:
        # Experiments bake in their own workloads/lengths/seeds; the
        # baseline config plus the id (in ``extra``) addresses them.
        from repro.harness.runner import DEFAULT_LENGTH, DEFAULT_SEED

        return job_key(
            kind="experiment",
            workload="suite",
            length=DEFAULT_LENGTH,
            seed=DEFAULT_SEED,
            config=CoreConfig(),
            extra={"experiment_id": self.experiment_id.lower()},
        )

    def execute(self) -> Any:
        from repro.harness.experiments import run_experiment

        return run_experiment(self.experiment_id)


@dataclass(frozen=True)
class SweepJob:
    """A one-dimensional sweep declared as data.

    ``parameter`` must be a :class:`CoreConfig` field name; each value
    in ``values`` yields one :class:`SimJob` with that field overridden
    on ``base_config``. Expansion is eager and deterministic so the
    whole sweep is content-addressed point by point.
    """

    parameter: str
    values: Sequence[Any]
    workload: str
    length: int = 60_000
    seed: int = 2006
    base_config: CoreConfig = field(default_factory=CoreConfig)
    core: str = "ooo"
    timeout_s: Optional[float] = None
    retries: int = 0

    def expand(self) -> List[SimJob]:
        jobs = []
        for value in self.values:
            config = self.base_config.with_overrides(**{self.parameter: value})
            jobs.append(
                SimJob(
                    label=f"sweep:{self.workload}:{self.parameter}={value}",
                    workload=self.workload,
                    length=self.length,
                    seed=self.seed,
                    config=config,
                    core=self.core,
                    timeout_s=self.timeout_s,
                    retries=self.retries,
                )
            )
        return jobs

    def expand_batched(self, batch_size: int = 8) -> List[BatchSimJob]:
        """Expansion into lockstep batches instead of scalar points.

        Values are chunked in declaration order into
        :class:`BatchSimJob`s of at most ``batch_size`` configs. Only
        meaningful for the out-of-order core (the batched kernel models
        it alone); the in-order core raises so a sweep never silently
        simulates the wrong machine.
        """
        if self.core != "ooo":
            raise ValueError(
                f"batched expansion only supports the 'ooo' core, "
                f"got {self.core!r}"
            )
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        jobs = []
        values = list(self.values)
        for lo in range(0, len(values), batch_size):
            chunk = values[lo : lo + batch_size]
            configs = tuple(
                self.base_config.with_overrides(**{self.parameter: value})
                for value in chunk
            )
            jobs.append(
                BatchSimJob(
                    label=(
                        f"sweep:{self.workload}:{self.parameter}="
                        f"{chunk[0]}..{chunk[-1]}"
                    ),
                    workload=self.workload,
                    length=self.length,
                    seed=self.seed,
                    configs=configs,
                    timeout_s=self.timeout_s,
                    retries=self.retries,
                )
            )
        return jobs


@dataclass
class JobResult:
    """Outcome of one job: status, payload, and accounting.

    ``payload`` is the stored JSON form (decode with
    ``spec.decode(payload)``); on failure it is None and ``error``
    carries the formatted traceback of the final attempt.
    """

    key: str
    label: str
    status: str
    payload: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    attempts: int = 0
    wall_s: float = 0.0
    cache_hit: bool = False
    #: Sanitizer report payload (``REPRO_SANITIZE=1`` runs only; None
    #: when sanitizing was off or the result came from the store).
    sanitizer: Optional[Dict[str, Any]] = None
    #: Metrics snapshot drained after the job ran (``REPRO_METRICS=1``
    #: runs only; None when metrics were off or the result was cached).
    metrics: Optional[Dict[str, Any]] = None
    #: Path of the per-job JSONL trace, when tracing was on and
    #: ``REPRO_TRACE_DIR`` named a directory to write it into.
    trace_file: Optional[str] = None
    #: Request-scoped spans recorded in the worker when the submitter
    #: passed a ``trace_ctx`` (serve requests); the service absorbs
    #: them into the request's cross-process span tree.
    spans: Optional[List[Dict[str, Any]]] = None

    @property
    def ok(self) -> bool:
        return self.status in (
            JobStatus.OK, JobStatus.CACHED, JobStatus.RESUMED
        )

    def value(self, spec: JobSpec) -> Any:
        if self.payload is None:
            raise RuntimeError(
                f"job {self.label} has no payload (status={self.status})"
            )
        return spec.decode(self.payload)


def _attempt_with_retries(spec: JobSpec) -> Tuple[Any, int]:
    """Run ``spec.execute`` with bounded retry; returns (value, attempts).

    Backoff is exponential with seeded jitter
    (:func:`repro.util.rng.jittered_backoff_s`, keyed by the job's
    content address and the attempt number): pool workers that fail
    simultaneously — e.g. a shared-disk hiccup — retry staggered
    instead of in lockstep, with no wall-clock entropy, so results stay
    byte-deterministic. The ``job.execute`` fault site fires once per
    *attempt*, which is what makes the retry path unit-testable:
    ``job.execute:raise@1`` fails the first attempt and lets the retry
    succeed.
    """
    attempts = 0
    key = spec.key()
    while True:
        attempts += 1
        try:
            faults.fault_point("job.execute")
            return spec.execute(), attempts
        except Exception:
            if attempts > spec.retries:
                raise
            time.sleep(jittered_backoff_s(spec.backoff_s, attempts - 1, key))


def _write_job_trace(spec: JobSpec, key: str) -> Optional[str]:
    """Drain the ambient tracer into a per-job JSONL file, if configured.

    Workers inherit ``REPRO_TRACE`` / ``REPRO_TRACE_DIR`` from the
    parent; each job's spans land in their own file so traces from jobs
    sharing a worker process never interleave.
    """
    tracer = _obs.drain_trace()
    directory = _obs.trace_dir()
    if tracer is None or directory is None:
        return None
    from repro.obs.export import write_jsonl

    target_dir = Path(directory)
    target_dir.mkdir(parents=True, exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9._=-]+", "_", spec.label) or "job"
    path = target_dir / f"{safe}-{key[:8]}.jsonl"
    write_jsonl(tracer, path)
    return str(path)


def execute_job(
    spec: JobSpec,
    store_root: Optional[str] = None,
    use_cache: bool = True,
    trace_ctx: Optional[Dict[str, str]] = None,
    deadline_ns: Optional[int] = None,
) -> JobResult:
    """Run one job end to end: store lookup, retries, error capture.

    Never raises for job failures — the exception is recorded in the
    returned :class:`JobResult` so a sweep's other points survive.
    Runs identically in the parent (serial mode) and in pool workers;
    in a marked worker process the checkpoint below also writes the
    watchdog heartbeat and arms the ``pool.worker`` fault site.

    ``trace_ctx`` (``{"trace_id": ..., "parent_span": ...}``) joins
    this execution to a serve request's distributed trace: the context
    arrives as an argument (workers outlive requests, so parent env
    mutation cannot reach them), is re-exported to this process's
    environment + contextvar for the duration of the job — the same
    ambient pattern the obs pillars use — and the recorded spans ride
    home on ``JobResult.spans``.

    ``deadline_ns`` (absolute monotonic, see
    :mod:`repro.resilience.deadline`) is checked *before* any work:
    expired jobs come back :data:`JobStatus.EXPIRED` without touching
    the store or the simulator — the dequeue-time dead-work drop that
    keeps a backlogged shard from burning slots on requests nobody is
    waiting for. While a live job runs, the deadline is re-exported to
    ``REPRO_DEADLINE_NS`` (same ambient pattern as the trace context).
    """
    if deadline_ns is not None and _deadline.expired(deadline_ns):
        return JobResult(
            key=spec.key(),
            label=spec.label,
            status=JobStatus.EXPIRED,
            error="deadline expired before execution (dropped at dequeue)",
            attempts=0,
            wall_s=0.0,
        )
    if trace_ctx is None or not trace_ctx.get("trace_id"):
        return _execute_job_impl(spec, store_root, use_cache,
                                 deadline_ns=deadline_ns)
    from repro.obs import context as obs_context
    from repro.obs.spans import SpanCollector

    # Namespace this worker's span ids under the dispatch span that
    # submitted the job: worker ids must never alias the service
    # collector's ids once absorbed (parent edges resolve by id), and
    # deriving the prefix from the parent keeps exports deterministic.
    parent = trace_ctx.get("parent_span")
    collector = SpanCollector(
        process="worker", id_prefix=f"{parent}." if parent else "w."
    )
    span = collector.start(
        "worker_execute",
        trace_id=str(trace_ctx["trace_id"]),
        parent_id=parent,
        label=spec.label,
    )
    ctx = obs_context.TraceContext(span.trace_id, span.span_id)
    tokens = obs_context.activate(ctx, collector)
    obs_context.export_env(ctx)
    try:
        result = _execute_job_impl(spec, store_root, use_cache,
                                   deadline_ns=deadline_ns)
    except BaseException:
        # execute_job's contract is never-raises for job failures, so
        # this is teardown (SIGTERM, interpreter exit): close the span
        # rather than leave it dangling, then let the signal go.
        collector.finish(span, status="aborted")
        raise
    finally:
        obs_context.deactivate(tokens)
        obs_context.clear_env()
    collector.finish(
        span,
        status="ok" if result.ok else "error",
        job_status=result.status,
        attempts=result.attempts,
    )
    result.spans = collector.drain()
    return result


def _execute_job_impl(
    spec: JobSpec,
    store_root: Optional[str] = None,
    use_cache: bool = True,
    deadline_ns: Optional[int] = None,
) -> JobResult:
    worker_checkpoint(spec.label)
    key = spec.key()
    claim_job(key)
    if deadline_ns is not None:
        _deadline.export_env(deadline_ns)
    try:
        return _execute_claimed_job(spec, store_root, use_cache, key)
    finally:
        if deadline_ns is not None:
            _deadline.clear_env()


def _execute_claimed_job(
    spec: JobSpec,
    store_root: Optional[str],
    use_cache: bool,
    key: str,
) -> JobResult:
    if spec.timeout_s is not None:
        # Tell the pool this attempt is executing *now*: its timeout
        # clock arms from this stamp, not from submit time, so queue
        # wait behind a busy pool never counts against the budget.
        stamp_job_start(key)
    watch = Stopwatch()
    # Ambient request-scoped collector (serve jobs only; None for batch
    # runs) — store reads/writes below are recorded as child spans.
    collector = _obs_context.current_collector()
    ctx = _obs_context.current_context() if collector is not None else None
    store = None
    if use_cache and store_root is not None:
        store = ResultStore(root=store_root)
        if collector is not None and ctx is not None:
            t0 = collector.now()
            payload = store.get(key)
            collector.add_complete(
                "store_get",
                trace_id=ctx.trace_id,
                parent_id=ctx.span_id,
                start_ns=t0,
                hit=payload is not None,
            )
        else:
            payload = store.get(key)
        if payload is not None:
            return JobResult(
                key=key,
                label=spec.label,
                status=JobStatus.CACHED,
                payload=payload,
                attempts=0,
                wall_s=watch.elapsed,
                cache_hit=True,
            )
    # Start this job's sanitizer/obs windows clean so data from a
    # previous job in the same worker never bleeds into this one.
    _sanitizer.drain_report()
    _obs.drain_metrics()
    _obs.drain_trace()
    try:
        value, attempts = _attempt_with_retries(spec)
    except Exception:
        report = _sanitizer.drain_report()
        snapshot = _obs.drain_metrics()
        trace_file = _write_job_trace(spec, key)
        return JobResult(
            key=key,
            label=spec.label,
            status=JobStatus.FAILED,
            error=traceback.format_exc(),
            attempts=spec.retries + 1,
            wall_s=watch.elapsed,
            sanitizer=report.as_payload() if report else None,
            metrics=snapshot,
            trace_file=trace_file,
        )
    payload = codec.payload_from_value(value)
    if store is not None:
        try:
            if collector is not None and ctx is not None:
                t0 = collector.now()
                store.put(key, payload, meta={"label": spec.label})
                collector.add_complete(
                    "store_put",
                    trace_id=ctx.trace_id,
                    parent_id=ctx.span_id,
                    start_ns=t0,
                )
            else:
                store.put(key, payload, meta={"label": spec.label})
        except Exception:
            # The result is good; a failed cache write (disk full, an
            # injected store.write fault) must not fail the job or —
            # in serial mode — abort the whole batch. The job comes
            # back OK-but-unstored and simply re-runs if ever resumed.
            metrics = _obs.current_metrics()
            if metrics is not None:
                metrics.counter(
                    "resilience.store_put_failures_total"
                ).inc()
    report = _sanitizer.drain_report()
    snapshot = _obs.drain_metrics()
    trace_file = _write_job_trace(spec, key)
    return JobResult(
        key=key,
        label=spec.label,
        status=JobStatus.OK,
        payload=payload,
        attempts=attempts,
        wall_s=watch.elapsed,
        sanitizer=report.as_payload() if report else None,
        metrics=snapshot,
        trace_file=trace_file,
    )


__all__ = [
    "BatchSimJob",
    "ExperimentJob",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "ShardSimJob",
    "SimJob",
    "SweepJob",
    "execute_job",
]
