"""Run telemetry: per-job counters and the on-disk run manifest.

Every pool run aggregates one :class:`RunTelemetry`. It answers the
operational questions (how long, how parallel, how warm was the cache,
what failed and why) and serializes to a JSON manifest under
``<store root>/runs/`` so a run's provenance survives the process.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lab.jobs import JobResult, JobStatus
from repro.lab.store import CODE_SALT, ResultStore
from repro.obs.metrics import merge_snapshots


@dataclass
class JobRecord:
    """Manifest row for one job."""

    key: str
    label: str
    status: str
    wall_s: float
    attempts: int
    cache_hit: bool
    error: Optional[str] = None
    sanitizer: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    trace_file: Optional[str] = None

    @classmethod
    def from_result(cls, result: JobResult) -> "JobRecord":
        return cls(
            key=result.key,
            label=result.label,
            status=result.status,
            wall_s=result.wall_s,
            attempts=result.attempts,
            cache_hit=result.cache_hit,
            error=result.error,
            sanitizer=result.sanitizer,
            metrics=result.metrics,
            trace_file=result.trace_file,
        )

    @property
    def sanitizer_violations(self) -> int:
        if not self.sanitizer:
            return 0
        return len(self.sanitizer.get("violations", []))


@dataclass
class RunTelemetry:
    """Counters and job records for one lab run."""

    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    workers: int = 1
    started_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    records: List[JobRecord] = field(default_factory=list)

    def record(self, result: JobResult) -> None:
        self.records.append(JobRecord.from_result(result))

    def finish(self) -> None:
        self.finished_at = time.time()

    # -- derived counters -------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r.status == JobStatus.OK)

    @property
    def cached(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status == JobStatus.FAILED)

    @property
    def retries(self) -> int:
        return sum(max(0, r.attempts - 1) for r in self.records)

    @property
    def job_wall_s(self) -> float:
        """Summed per-job wall time (> elapsed when running parallel)."""
        return sum(r.wall_s for r in self.records)

    @property
    def sanitized(self) -> int:
        """Jobs that ran with the invariant sanitizer active."""
        return sum(1 for r in self.records if r.sanitizer is not None)

    @property
    def sanitizer_violations(self) -> int:
        """Total invariant violations across all sanitized jobs."""
        return sum(r.sanitizer_violations for r in self.records)

    @property
    def with_metrics(self) -> int:
        """Jobs that ran with the metrics registry active."""
        return sum(1 for r in self.records if r.metrics is not None)

    def merged_metrics(self) -> Optional[Dict[str, Any]]:
        """All workers' metric snapshots folded into one, or None.

        Counters sum, gauges take the max, fixed-edge histograms sum
        elementwise — so the merged snapshot is what a single-process
        run of the same jobs would have recorded, independent of worker
        count and scheduling order.
        """
        snapshots = [r.metrics for r in self.records if r.metrics is not None]
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    @property
    def elapsed_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else time.time()
        return end - self.started_at

    def failures(self) -> List[JobRecord]:
        return [r for r in self.records if r.status == JobStatus.FAILED]

    # -- rendering / persistence ------------------------------------------

    def summary(self) -> str:
        """One-line operator summary (the CLI prints this)."""
        text = (
            f"run {self.run_id}: {self.total} jobs "
            f"({self.ok} ran, {self.cached} cache hits, "
            f"{self.failed} failed, {self.retries} retries) "
            f"in {self.elapsed_s:.2f}s wall "
            f"({self.job_wall_s:.2f}s of job time, "
            f"workers={self.workers})"
        )
        if self.sanitized:
            text += (
                f"; sanitizer: {self.sanitized} job(s) checked, "
                f"{self.sanitizer_violations} violation(s)"
            )
        return text

    def as_manifest(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "salt": CODE_SALT,
            "workers": self.workers,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": self.elapsed_s,
            "counters": {
                "total": self.total,
                "ok": self.ok,
                "cached": self.cached,
                "failed": self.failed,
                "retries": self.retries,
                "job_wall_s": self.job_wall_s,
                "sanitized": self.sanitized,
                "sanitizer_violations": self.sanitizer_violations,
                "with_metrics": self.with_metrics,
            },
            "metrics": self.merged_metrics(),
            "jobs": [
                {
                    "key": r.key,
                    "label": r.label,
                    "status": r.status,
                    "wall_s": r.wall_s,
                    "attempts": r.attempts,
                    "cache_hit": r.cache_hit,
                    "error": r.error,
                    "sanitizer": r.sanitizer,
                    "metrics": r.metrics,
                    "trace_file": r.trace_file,
                }
                for r in self.records
            ],
        }

    def write_manifest(self, store: ResultStore) -> Path:
        """Atomically write the manifest under ``<store root>/runs/``.

        The document is serialized to a temp file in the same directory,
        flushed and fsynced, then ``os.replace``d over the target — a
        killed run can leave a stray ``.tmp`` behind but never a
        truncated ``<run_id>.json``.
        """
        store.runs_dir.mkdir(parents=True, exist_ok=True)
        path = store.runs_dir / f"{self.run_id}.json"
        fd, tmp_name = tempfile.mkstemp(
            dir=str(store.runs_dir), prefix=f".{self.run_id}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(self.as_manifest(), handle, indent=1)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path


__all__ = ["JobRecord", "RunTelemetry"]
