"""Run telemetry: per-job counters and the on-disk run manifest.

Every pool run aggregates one :class:`RunTelemetry`. It answers the
operational questions (how long, how parallel, how warm was the cache,
what failed and why) and serializes to a JSON manifest under
``<store root>/runs/`` so a run's provenance survives the process.
"""

from __future__ import annotations

import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lab.jobs import JobResult, JobStatus
from repro.lab.store import CODE_SALT, ResultStore, payload_digest
from repro.obs.metrics import merge_snapshots
from repro.resilience.atomic import (
    atomic_write_bytes,
    atomic_write_json,
    canonical_json_bytes,
)


@dataclass
class JobRecord:
    """Manifest row for one job."""

    key: str
    label: str
    status: str
    wall_s: float
    attempts: int
    cache_hit: bool
    error: Optional[str] = None
    sanitizer: Optional[Dict[str, Any]] = None
    metrics: Optional[Dict[str, Any]] = None
    trace_file: Optional[str] = None
    #: Content digest of the stored payload (None for failures); the
    #: field the byte-identical merged manifest is built from.
    payload_sha256: Optional[str] = None

    @classmethod
    def from_result(cls, result: JobResult) -> "JobRecord":
        return cls(
            key=result.key,
            label=result.label,
            status=result.status,
            wall_s=result.wall_s,
            attempts=result.attempts,
            cache_hit=result.cache_hit,
            error=result.error,
            sanitizer=result.sanitizer,
            metrics=result.metrics,
            trace_file=result.trace_file,
            payload_sha256=(
                payload_digest(result.payload)
                if result.payload is not None
                else None
            ),
        )

    @property
    def sanitizer_violations(self) -> int:
        if not self.sanitizer:
            return 0
        return len(self.sanitizer.get("violations", []))


@dataclass
class RunTelemetry:
    """Counters and job records for one lab run."""

    run_id: str = field(default_factory=lambda: uuid.uuid4().hex[:12])
    workers: int = 1
    started_at: float = field(default_factory=time.time)
    finished_at: Optional[float] = None
    records: List[JobRecord] = field(default_factory=list)
    #: True when the run drained early on SIGINT/SIGTERM; the manifest
    #: then advertises ``repro lab run --resume <run_id>``.
    interrupted: bool = False
    #: Metrics recorded in the coordinating process itself (fault
    #: injections, pool degradations, quarantines) — merged into
    #: :meth:`merged_metrics` alongside the per-job worker snapshots.
    parent_metrics: Optional[Dict[str, Any]] = None

    def record(self, result: JobResult) -> None:
        self.records.append(JobRecord.from_result(result))

    def finish(self) -> None:
        self.finished_at = time.time()

    # -- derived counters -------------------------------------------------

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def ok(self) -> int:
        return sum(1 for r in self.records if r.status == JobStatus.OK)

    @property
    def cached(self) -> int:
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.records if r.status == JobStatus.FAILED)

    @property
    def resumed(self) -> int:
        """Jobs completed by an earlier run and replayed from the store."""
        return sum(1 for r in self.records if r.status == JobStatus.RESUMED)

    @property
    def interrupted_jobs(self) -> int:
        """Jobs left unfinished when the run drained on a signal."""
        return sum(
            1 for r in self.records if r.status == JobStatus.INTERRUPTED
        )

    @property
    def retries(self) -> int:
        return sum(max(0, r.attempts - 1) for r in self.records)

    @property
    def job_wall_s(self) -> float:
        """Summed per-job wall time (> elapsed when running parallel)."""
        return sum(r.wall_s for r in self.records)

    @property
    def sanitized(self) -> int:
        """Jobs that ran with the invariant sanitizer active."""
        return sum(1 for r in self.records if r.sanitizer is not None)

    @property
    def sanitizer_violations(self) -> int:
        """Total invariant violations across all sanitized jobs."""
        return sum(r.sanitizer_violations for r in self.records)

    @property
    def with_metrics(self) -> int:
        """Jobs that ran with the metrics registry active."""
        return sum(1 for r in self.records if r.metrics is not None)

    def merged_metrics(self) -> Optional[Dict[str, Any]]:
        """All workers' metric snapshots folded into one, or None.

        Counters sum, gauges take the max, fixed-edge histograms sum
        elementwise — so the merged snapshot is what a single-process
        run of the same jobs would have recorded, independent of worker
        count and scheduling order.
        """
        snapshots = [r.metrics for r in self.records if r.metrics is not None]
        if self.parent_metrics is not None:
            snapshots.append(self.parent_metrics)
        if not snapshots:
            return None
        return merge_snapshots(snapshots)

    @property
    def elapsed_s(self) -> float:
        end = self.finished_at if self.finished_at is not None else time.time()
        return end - self.started_at

    def failures(self) -> List[JobRecord]:
        return [r for r in self.records if r.status == JobStatus.FAILED]

    # -- rendering / persistence ------------------------------------------

    def summary(self) -> str:
        """One-line operator summary (the CLI prints this)."""
        text = (
            f"run {self.run_id}: {self.total} jobs "
            f"({self.ok} ran, {self.cached} cache hits, "
            f"{self.failed} failed, {self.retries} retries) "
            f"in {self.elapsed_s:.2f}s wall "
            f"({self.job_wall_s:.2f}s of job time, "
            f"workers={self.workers})"
        )
        if self.resumed:
            text += f"; resumed: {self.resumed} job(s) replayed from store"
        if self.interrupted:
            text += (
                f"; INTERRUPTED with {self.interrupted_jobs} job(s) "
                f"unfinished — rerun with --resume {self.run_id}"
            )
        if self.sanitized:
            text += (
                f"; sanitizer: {self.sanitized} job(s) checked, "
                f"{self.sanitizer_violations} violation(s)"
            )
        return text

    def as_manifest(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "salt": CODE_SALT,
            "workers": self.workers,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_s": self.elapsed_s,
            "interrupted": self.interrupted,
            "counters": {
                "total": self.total,
                "ok": self.ok,
                "cached": self.cached,
                "resumed": self.resumed,
                "failed": self.failed,
                "interrupted": self.interrupted_jobs,
                "retries": self.retries,
                "job_wall_s": self.job_wall_s,
                "sanitized": self.sanitized,
                "sanitizer_violations": self.sanitizer_violations,
                "with_metrics": self.with_metrics,
            },
            "metrics": self.merged_metrics(),
            "jobs": [
                {
                    "key": r.key,
                    "label": r.label,
                    "status": r.status,
                    "wall_s": r.wall_s,
                    "attempts": r.attempts,
                    "cache_hit": r.cache_hit,
                    "error": r.error,
                    "sanitizer": r.sanitizer,
                    "metrics": r.metrics,
                    "trace_file": r.trace_file,
                    "payload_sha256": r.payload_sha256,
                }
                for r in self.records
            ],
        }

    def merged_manifest(self) -> Dict[str, Any]:
        """The run's *stable* outcome: what was computed, not how.

        Strips everything volatile — run id, timestamps, wall times,
        attempt counts, tracebacks, worker count — and keeps only the
        content-addressed facts: per-job key, label, payload digest and
        a normalized status (``ok``/``cached``/``resumed`` all collapse
        to ``ok`` because they denote the same payload). Jobs are sorted
        by key. An interrupted run that is later ``--resume``d therefore
        produces a merged manifest *byte-identical* to the uninterrupted
        run's — the resilience suite's core guarantee.
        """
        jobs = []
        for r in sorted(self.records, key=lambda rec: rec.key):
            status = (
                "ok"
                if r.status
                in (JobStatus.OK, JobStatus.CACHED, JobStatus.RESUMED)
                else r.status
            )
            jobs.append(
                {
                    "key": r.key,
                    "label": r.label,
                    "status": status,
                    "payload_sha256": r.payload_sha256,
                }
            )
        return {"salt": CODE_SALT, "jobs": jobs}

    def merged_manifest_bytes(self) -> bytes:
        """Canonical (sorted-keys, compact) encoding of the merged manifest."""
        return canonical_json_bytes(self.merged_manifest())

    def write_manifest(self, store: ResultStore) -> Path:
        """Atomically write the manifest under ``<store root>/runs/``.

        Goes through :func:`repro.resilience.atomic.atomic_write_json`
        (tmp + fsync + ``os.replace``) — a killed run can leave a stray
        ``.tmp-*`` behind (``repro lab fsck`` sweeps those) but never a
        truncated ``<run_id>.json``.
        """
        store.runs_dir.mkdir(parents=True, exist_ok=True)
        path = store.runs_dir / f"{self.run_id}.json"
        atomic_write_json(path, self.as_manifest(), indent=1)
        return path

    def write_merged(self, store: ResultStore) -> Path:
        """Write ``runs/<run_id>.merged.json`` (canonical bytes, atomic)."""
        store.runs_dir.mkdir(parents=True, exist_ok=True)
        path = store.runs_dir / f"{self.run_id}.merged.json"
        atomic_write_bytes(path, self.merged_manifest_bytes())
        return path


__all__ = ["JobRecord", "RunTelemetry"]
