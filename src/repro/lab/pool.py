"""The worker pool: fan independent jobs out across cores.

Independent simulations are embarrassingly parallel; the pool is a
``ProcessPoolExecutor`` front end over :func:`repro.lab.jobs.execute_job`
with the operational behaviors a long characterization run needs:

- **cache short-circuit** — the parent consults the store before
  dispatching, so warm jobs never pay a process round-trip;
- **chunked dispatch** — jobs without individual timeouts are grouped
  into chunks to amortize pickling/IPC overhead;
- **per-job timeouts** — jobs with ``timeout_s`` are dispatched
  individually and a timeout degrades to a recorded failure;
- **graceful fallback** — ``workers=1``, a single-core box, or a
  platform where process pools cannot start all run the same jobs
  serially in-process with identical results.

Workers re-open the store read/write by root path; object writes are
atomic, so concurrent puts of the same key are benign.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.lab.jobs import (
    ExperimentJob,
    JobResult,
    JobSpec,
    JobStatus,
    execute_job,
)
from repro.lab.store import ResultStore, caching_disabled, default_store_root
from repro.lab.telemetry import RunTelemetry
from repro.obs import runtime as _obs

#: Chunks per worker when batching timeout-free jobs; small enough to
#: load-balance, large enough to amortize process round-trips.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Worker count: explicit value, else all available cores."""
    if workers is None:
        return os.cpu_count() or 1
    return max(1, int(workers))


def _execute_chunk(
    specs: List[JobSpec], store_root: Optional[str], use_cache: bool
) -> List[JobResult]:
    """Worker-side entry point: run one chunk of jobs sequentially."""
    return [execute_job(spec, store_root, use_cache) for spec in specs]


def _chunked(items: List[Any], chunk_count: int) -> List[List[Any]]:
    if not items:
        return []
    size = max(1, (len(items) + chunk_count - 1) // chunk_count)
    return [items[i : i + size] for i in range(0, len(items), size)]


def _timeout_failure(spec: JobSpec, key: str) -> JobResult:
    return JobResult(
        key=key,
        label=spec.label,
        status=JobStatus.FAILED,
        error=(
            f"TimeoutError: job exceeded its {spec.timeout_s}s budget; "
            "recorded as a failure and the run continued"
        ),
        attempts=1,
    )


def _obs_setup(
    collect_metrics: bool,
    trace: bool,
    telemetry: RunTelemetry,
    store: Optional[ResultStore],
):
    """Enable obs pillars for one run; returns a restore callback.

    The pillars are exported through the environment so pool workers
    inherit them; per-job JSONL traces land under
    ``<store root>/runs/<run_id>-traces/``. The restore callback puts
    the ambient state back so library callers and tests see no leakage.
    """
    if not (collect_metrics or trace):
        return lambda: None
    watched = (_obs.ENV_METRICS, _obs.ENV_TRACE, _obs.ENV_PROFILE, _obs.ENV_TRACE_DIR)
    previous = {key: os.environ.get(key) for key in watched}
    _obs.enable_metrics()
    if trace:
        _obs.enable_tracing()
        if store is not None:
            os.environ[_obs.ENV_TRACE_DIR] = str(
                store.runs_dir / f"{telemetry.run_id}-traces"
            )

    def restore() -> None:
        _obs.reset()
        for key, value in previous.items():
            if value is not None:
                os.environ[key] = value

    return restore


def run_jobs(
    jobs: Sequence[JobSpec],
    workers: Optional[int] = None,
    store_root: Optional[Union[str, os.PathLike]] = None,
    use_cache: bool = True,
    telemetry: Optional[RunTelemetry] = None,
    write_manifest: bool = True,
    collect_metrics: bool = False,
    trace: bool = False,
) -> Tuple[List[JobResult], RunTelemetry]:
    """Run every job; returns results in job order plus the telemetry.

    A failing or timed-out job becomes a ``failed`` :class:`JobResult`;
    the batch always completes. When caching is active (the default;
    disable with ``use_cache=False`` or ``REPRO_NO_CACHE=1``) results
    are served from and written to the content-addressed store, and a
    run manifest is written under ``<store root>/runs/``.

    ``collect_metrics=True`` turns the metrics registry on in every
    worker; each freshly-run job's snapshot is recorded on its manifest
    row and the merged snapshot on the manifest itself (cache hits carry
    no metrics — rerun with caching off for a complete snapshot).
    ``trace=True`` additionally records per-job JSONL traces under the
    run's trace directory.
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    if use_cache and caching_disabled():
        use_cache = False
    if use_cache and store_root is None:
        store_root = default_store_root()
    store = ResultStore(root=store_root) if use_cache else None
    root_arg = str(store_root) if use_cache else None

    if telemetry is None:
        telemetry = RunTelemetry()
    telemetry.workers = workers

    restore_obs = _obs_setup(collect_metrics, trace, telemetry, store)

    results: Dict[int, JobResult] = {}

    # Cache short-circuit in the parent: warm keys never hit the pool.
    pending: List[Tuple[int, JobSpec]] = []
    for index, spec in enumerate(jobs):
        if store is not None:
            payload = store.get(spec.key())
            if payload is not None:
                results[index] = JobResult(
                    key=spec.key(),
                    label=spec.label,
                    status=JobStatus.CACHED,
                    payload=payload,
                    cache_hit=True,
                )
                continue
        pending.append((index, spec))

    try:
        if pending:
            if workers <= 1:
                for index, spec in pending:
                    results[index] = execute_job(spec, root_arg, use_cache)
            else:
                try:
                    _run_parallel(pending, workers, root_arg, use_cache, results)
                except (OSError, ValueError, RuntimeError, NotImplementedError):
                    # Process pools can be unavailable (no /dev/shm, seccomp,
                    # missing semaphores); the jobs still run, just serially.
                    for index, spec in pending:
                        if index not in results:
                            results[index] = execute_job(spec, root_arg, use_cache)
    finally:
        restore_obs()

    ordered = [results[i] for i in range(len(jobs))]
    for result in ordered:
        telemetry.record(result)
    telemetry.finish()
    if store is not None and write_manifest:
        telemetry.write_manifest(store)
    return ordered, telemetry


def _run_parallel(
    pending: List[Tuple[int, JobSpec]],
    workers: int,
    store_root: Optional[str],
    use_cache: bool,
    results: Dict[int, JobResult],
) -> None:
    """Dispatch pending jobs across a process pool, filling ``results``."""
    with_timeout = [(i, s) for i, s in pending if s.timeout_s is not None]
    without_timeout = [(i, s) for i, s in pending if s.timeout_s is None]
    max_workers = min(workers, max(1, len(pending)))
    with ProcessPoolExecutor(max_workers=max_workers) as executor:
        chunk_futures = []
        for chunk in _chunked(without_timeout, max_workers * _CHUNKS_PER_WORKER):
            specs = [spec for _, spec in chunk]
            indices = [index for index, _ in chunk]
            chunk_futures.append(
                (indices, executor.submit(_execute_chunk, specs, store_root, use_cache))
            )
        timed_futures = [
            (index, spec, executor.submit(execute_job, spec, store_root, use_cache))
            for index, spec in with_timeout
        ]
        for indices, future in chunk_futures:
            for index, result in zip(indices, future.result()):
                results[index] = result
        for index, spec, future in timed_futures:
            try:
                results[index] = future.result(timeout=spec.timeout_s)
            except FutureTimeout:
                results[index] = _timeout_failure(spec, spec.key())
            except Exception as exc:  # worker died (e.g. OOM-killed)
                results[index] = JobResult(
                    key=spec.key(),
                    label=spec.label,
                    status=JobStatus.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    attempts=1,
                )


def run_experiments(
    experiment_ids: Sequence[str],
    workers: Optional[int] = None,
    store_root: Optional[Union[str, os.PathLike]] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    collect_metrics: bool = False,
    trace: bool = False,
) -> Tuple[List[Optional[Any]], RunTelemetry]:
    """Run registered experiments through the lab.

    Returns one decoded
    :class:`~repro.harness.experiment.ExperimentResult` per id (None
    for a failed experiment — inspect ``telemetry.failures()``), plus
    the run telemetry.
    """
    jobs = [
        ExperimentJob(
            experiment_id=experiment_id, timeout_s=timeout_s, retries=retries
        )
        for experiment_id in experiment_ids
    ]
    job_results, telemetry = run_jobs(
        jobs,
        workers=workers,
        store_root=store_root,
        use_cache=use_cache,
        collect_metrics=collect_metrics,
        trace=trace,
    )
    decoded: List[Optional[Any]] = []
    for spec, result in zip(jobs, job_results):
        decoded.append(result.value(spec) if result.ok else None)
    return decoded, telemetry


__all__ = ["resolve_workers", "run_experiments", "run_jobs"]
