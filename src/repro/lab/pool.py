"""The worker pool: fan independent jobs out across cores, survivably.

Independent simulations are embarrassingly parallel; the pool is a
``ProcessPoolExecutor`` front end over :func:`repro.lab.jobs.execute_job`
with the operational behaviors a long characterization run needs:

- **cache short-circuit** — the parent consults the store before
  dispatching, so warm jobs never pay a process round-trip;
- **chunked dispatch** — jobs without individual timeouts are grouped
  into chunks to amortize pickling/IPC overhead;
- **per-job timeouts with retry** — jobs with ``timeout_s`` are
  dispatched individually; the timeout clock starts when the job is
  first observed *executing*, so time spent queued behind a busy pool
  never counts against the budget; a timeout consumes one attempt from
  the spec's retry budget (resubmitted after seeded jittered backoff)
  and only degrades to a recorded failure once the budget is spent;
- **write-ahead journal** — every store-backed run appends per-job
  state transitions to ``runs/<run_id>.journal.jsonl`` *before* acting,
  so ``repro lab run --resume <run_id>`` can skip completed jobs and
  re-queue in-flight ones after a crash;
- **graceful drain** — the first SIGINT/SIGTERM stops dispatching new
  work, lets running jobs finish, journals the interruption, and still
  writes the manifest; a second signal aborts hard;
- **heartbeat watchdog** — workers beat at every job boundary *and*
  from a background pulse thread while a job runs, so a legitimately
  long job never looks hung; when both completions and heartbeats go
  silent past the policy's ``hang_s`` the parent kills the stale
  workers and degrades;
- **graceful fallback** — ``workers=1``, a single-core box, a platform
  where process pools cannot start, a worker death
  (``BrokenProcessPool``), or a declared hang all degrade to serial
  in-process execution (after seeded jittered backoff) with identical
  results.

Workers re-open the store read/write by root path; object writes are
atomic, so concurrent puts of the same key are benign.
"""

from __future__ import annotations

import os
import shutil
import signal
import tempfile
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    CancelledError,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.lab.jobs import (
    ExperimentJob,
    JobResult,
    JobSpec,
    JobStatus,
    execute_job,
)
from repro.lab.store import (
    CODE_SALT,
    ResultStore,
    caching_disabled,
    default_store_root,
    payload_digest,
)
from repro.lab.telemetry import RunTelemetry
from repro.obs import runtime as _obs
from repro.resilience.journal import RunJournal, load_journal
from repro.resilience.watchdog import (
    HeartbeatDir,
    Watchdog,
    WatchdogPolicy,
    mark_worker_process,
)
from repro.util.rng import jittered_backoff_s

#: Chunks per worker when batching timeout-free jobs; small enough to
#: load-balance, large enough to amortize process round-trips.
_CHUNKS_PER_WORKER = 4


def resolve_workers(workers: Optional[int]) -> int:
    """Worker count: explicit value, else all available cores."""
    if workers is None:
        return os.cpu_count() or 1
    return max(1, int(workers))


def _execute_chunk(
    specs: List[JobSpec], store_root: Optional[str], use_cache: bool
) -> List[JobResult]:
    """Worker-side entry point: run one chunk of jobs sequentially."""
    return [execute_job(spec, store_root, use_cache) for spec in specs]


def _chunked(items: List[Any], chunk_count: int) -> List[List[Any]]:
    if not items:
        return []
    size = max(1, (len(items) + chunk_count - 1) // chunk_count)
    return [items[i : i + size] for i in range(0, len(items), size)]


def _count(name: str, amount: int = 1) -> None:
    """Bump a parent-side resilience counter when metrics are active."""
    metrics = _obs.current_metrics()
    if metrics is not None:
        metrics.counter(name).inc(amount)


def _timeout_failure(spec: JobSpec, key: str, attempts: int) -> JobResult:
    return JobResult(
        key=key,
        label=spec.label,
        status=JobStatus.FAILED,
        error=(
            f"TimeoutError: job exceeded its {spec.timeout_s}s budget "
            f"{attempts} time(s) (retries={spec.retries}); recorded as "
            "a failure and the run continued"
        ),
        attempts=attempts,
    )


def _interrupted_result(spec: JobSpec, key: str) -> JobResult:
    return JobResult(
        key=key,
        label=spec.label,
        status=JobStatus.INTERRUPTED,
        error=(
            "interrupted: the run drained on SIGINT/SIGTERM before this "
            "job finished; re-run with --resume to pick it up"
        ),
        attempts=0,
    )


class _PoolDegraded(Exception):
    """Internal: the pool can't continue; re-run unfinished jobs serially."""


class _GracefulDrain:
    """First SIGINT/SIGTERM drains the run; a second aborts hard.

    Installed only in the main thread (Python restricts signal handlers
    to it); elsewhere it degrades to an inert flag. ``restore`` puts the
    previous handlers back so library callers and tests see no leakage.
    """

    def __init__(self) -> None:
        self.stopped = False
        self._previous: Dict[int, Any] = {}

    def install(self) -> "_GracefulDrain":
        if threading.current_thread() is not threading.main_thread():
            return self
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):
                continue
        return self

    def _handle(self, signum, frame) -> None:
        if self.stopped:
            raise KeyboardInterrupt
        self.stopped = True

    def restore(self) -> None:
        for signum, handler in self._previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                continue
        self._previous.clear()


def _journal_result(
    journal: Optional[RunJournal], index: int, result: JobResult
) -> None:
    """Append a job's terminal journal record (no-op when unjournaled)."""
    if journal is None:
        return
    if result.status == JobStatus.FAILED:
        journal.failed(index, result.key, result.error or "", result.attempts)
    elif result.status != JobStatus.INTERRUPTED:
        journal.done(
            index,
            result.key,
            result.status,
            payload_digest(result.payload) if result.payload is not None else None,
            result.attempts,
        )


def _obs_setup(
    collect_metrics: bool,
    trace: bool,
    telemetry: RunTelemetry,
    store: Optional[ResultStore],
):
    """Enable obs pillars for one run; returns a restore callback.

    The pillars are exported through the environment so pool workers
    inherit them; per-job JSONL traces land under
    ``<store root>/runs/<run_id>-traces/``. The restore callback puts
    the ambient state back so library callers and tests see no leakage.
    """
    if not (collect_metrics or trace):
        return lambda: None
    watched = (_obs.ENV_METRICS, _obs.ENV_TRACE, _obs.ENV_PROFILE, _obs.ENV_TRACE_DIR)
    previous = {key: os.environ.get(key) for key in watched}
    _obs.enable_metrics()
    if trace:
        _obs.enable_tracing()
        if store is not None:
            os.environ[_obs.ENV_TRACE_DIR] = str(
                store.runs_dir / f"{telemetry.run_id}-traces"
            )

    def restore() -> None:
        _obs.reset()
        for key, value in previous.items():
            if value is not None:
                os.environ[key] = value

    return restore


def run_jobs(
    jobs: Sequence[JobSpec],
    workers: Optional[int] = None,
    store_root: Optional[Union[str, os.PathLike]] = None,
    use_cache: bool = True,
    telemetry: Optional[RunTelemetry] = None,
    write_manifest: bool = True,
    collect_metrics: bool = False,
    trace: bool = False,
    run_id: Optional[str] = None,
    resume: bool = False,
    watchdog_policy: Optional[WatchdogPolicy] = None,
) -> Tuple[List[JobResult], RunTelemetry]:
    """Run every job; returns results in job order plus the telemetry.

    A failing or timed-out job becomes a ``failed`` :class:`JobResult`;
    the batch always completes. When caching is active (the default;
    disable with ``use_cache=False`` or ``REPRO_NO_CACHE=1``) results
    are served from and written to the content-addressed store, a
    write-ahead journal and a run manifest are written under
    ``<store root>/runs/``, and the run is resumable.

    ``run_id`` pins the run's identity (otherwise random);
    ``resume=True`` replays the journal of the interrupted/crashed run
    ``run_id``: jobs journaled ``done`` are replayed from the store
    (status ``resumed``, checksum-verified), everything else re-runs.
    The merged manifest (``runs/<run_id>.merged.json``) of a resumed
    run is byte-identical to an uninterrupted run's.

    ``collect_metrics=True`` turns the metrics registry on in every
    worker; each freshly-run job's snapshot is recorded on its manifest
    row and the merged snapshot on the manifest itself (cache hits carry
    no metrics — rerun with caching off for a complete snapshot).
    Parent-side resilience counters (faults injected, quarantines,
    degradations) merge in as ``telemetry.parent_metrics``.
    ``trace=True`` additionally records per-job JSONL traces under the
    run's trace directory.
    """
    jobs = list(jobs)
    workers = resolve_workers(workers)
    if use_cache and caching_disabled():
        use_cache = False
    if use_cache and store_root is None:
        store_root = default_store_root()
    store = ResultStore(root=store_root) if use_cache else None
    root_arg = str(store_root) if use_cache else None

    if resume:
        if store is None:
            raise ValueError(
                "resume needs the content-addressed store; "
                "run with caching enabled"
            )
        if run_id is None:
            raise ValueError("resume requires the interrupted run's run_id")

    if telemetry is None:
        telemetry = RunTelemetry()
    if run_id is not None:
        telemetry.run_id = run_id
    telemetry.workers = workers

    prior = None
    if resume:
        _, prior = load_journal(store.runs_dir, run_id)

    restore_obs = _obs_setup(collect_metrics, trace, telemetry, store)
    drain = _GracefulDrain().install()
    journal: Optional[RunJournal] = None
    if store is not None:
        store.runs_dir.mkdir(parents=True, exist_ok=True)
        journal = RunJournal(store.runs_dir, telemetry.run_id)
        journal.run_start(len(jobs), CODE_SALT, resumed=resume)

    results: Dict[int, JobResult] = {}
    pending: List[Tuple[int, JobSpec]] = []
    try:
        # Triage in the parent: resumed jobs replay from the store,
        # warm keys never hit the pool, the rest is journaled as queued.
        for index, spec in enumerate(jobs):
            key = spec.key()
            if prior is not None and prior.classify(key) == "complete":
                payload = store.get(key)
                if payload is not None:
                    results[index] = JobResult(
                        key=key,
                        label=spec.label,
                        status=JobStatus.RESUMED,
                        payload=payload,
                        attempts=0,
                    )
                    _count("resilience.jobs_resumed_total")
                    _journal_result(journal, index, results[index])
                    continue
                # The journaled object vanished or failed verification
                # (and was quarantined): fall through and re-run it.
            if store is not None:
                payload = store.get(key)
                if payload is not None:
                    results[index] = JobResult(
                        key=key,
                        label=spec.label,
                        status=JobStatus.CACHED,
                        payload=payload,
                        cache_hit=True,
                    )
                    _journal_result(journal, index, results[index])
                    continue
            pending.append((index, spec))
            if journal is not None:
                journal.queued(index, key, spec.label)

        if pending and not drain.stopped:
            if workers <= 1:
                _run_serial(pending, root_arg, use_cache, results, drain, journal)
            else:
                try:
                    _run_parallel(
                        pending,
                        workers,
                        root_arg,
                        use_cache,
                        results,
                        drain,
                        journal,
                        watchdog_policy or WatchdogPolicy(),
                    )
                except _PoolDegraded:
                    _count("resilience.pool_degradations_total")
                    time.sleep(
                        jittered_backoff_s(0.05, 0, telemetry.run_id, "degrade")
                    )
                    leftovers = [
                        (i, s) for i, s in pending if i not in results
                    ]
                    _run_serial(
                        leftovers, root_arg, use_cache, results, drain, journal
                    )
                except (OSError, ValueError, RuntimeError, NotImplementedError):
                    # Process pools can be unavailable (no /dev/shm, seccomp,
                    # missing semaphores); the jobs still run, just serially.
                    leftovers = [
                        (i, s) for i, s in pending if i not in results
                    ]
                    _run_serial(
                        leftovers, root_arg, use_cache, results, drain, journal
                    )

        for index, spec in pending:
            if index not in results:
                results[index] = _interrupted_result(spec, spec.key())
        if drain.stopped:
            telemetry.interrupted = True
            _count("resilience.runs_interrupted_total")
            if journal is not None:
                journal.interrupted()
    finally:
        telemetry.parent_metrics = _obs.drain_metrics()
        restore_obs()
        drain.restore()

    ordered = [results[i] for i in range(len(jobs))]
    for result in ordered:
        telemetry.record(result)
    telemetry.finish()
    if journal is not None:
        journal.run_end(ok=telemetry.ok + telemetry.resumed + telemetry.cached,
                        failed=telemetry.failed)
        journal.close()
    if store is not None and write_manifest:
        telemetry.write_manifest(store)
        telemetry.write_merged(store)
    return ordered, telemetry


def _run_serial(
    pending: List[Tuple[int, JobSpec]],
    store_root: Optional[str],
    use_cache: bool,
    results: Dict[int, JobResult],
    drain: _GracefulDrain,
    journal: Optional[RunJournal],
) -> None:
    """Run jobs in-process, honoring the drain flag between jobs."""
    for index, spec in pending:
        if drain.stopped:
            return
        if index in results:
            continue
        if journal is not None:
            journal.started(index, spec.key())
        result = execute_job(spec, store_root, use_cache)
        results[index] = result
        _journal_result(journal, index, result)


@dataclass
class _Flight:
    """One in-flight future: which jobs it carries and its clocks."""

    indices: List[int]
    specs: List[JobSpec]
    timed: bool = False
    #: Parent-side timeout count for timed flights (consumes retries).
    timeouts: int = 0
    #: Wall-clock start of the current attempt, read from the worker's
    #: start stamp; None until the worker reports the job executing, so
    #: queue wait behind a busy pool never counts against ``timeout_s``
    #: (with default retries=0, a submit-time clock would cancel queued
    #: jobs that never got to execute at all). ``Future.running()``
    #: cannot stand in for the stamp — the executor flips futures to
    #: running when they enter the IPC call queue, ahead of execution.
    started_at: Optional[float] = None


def _run_parallel(
    pending: List[Tuple[int, JobSpec]],
    workers: int,
    store_root: Optional[str],
    use_cache: bool,
    results: Dict[int, JobResult],
    drain: _GracefulDrain,
    journal: Optional[RunJournal],
    policy: WatchdogPolicy,
) -> None:
    """Dispatch pending jobs across a process pool, filling ``results``.

    Raises :class:`_PoolDegraded` when the pool cannot make progress
    (worker death, declared hang) — the caller re-runs whatever is
    missing from ``results`` serially.
    """
    with_timeout = [(i, s) for i, s in pending if s.timeout_s is not None]
    without_timeout = [(i, s) for i, s in pending if s.timeout_s is None]
    max_workers = min(workers, max(1, len(pending)))
    hb_root = Path(tempfile.mkdtemp(prefix="repro-heartbeats-"))
    heartbeats = HeartbeatDir(hb_root)
    watchdog = Watchdog(heartbeats, policy)
    executor = ProcessPoolExecutor(
        max_workers=max_workers,
        initializer=mark_worker_process,
        initargs=(str(hb_root), policy.worker_pulse_s),
    )
    #: True once a future was abandoned (stuck job) — shutdown must not
    #: block waiting for it.
    tainted = False
    flights: Dict[Any, _Flight] = {}
    try:
        for chunk in _chunked(without_timeout, max_workers * _CHUNKS_PER_WORKER):
            specs = [spec for _, spec in chunk]
            indices = [index for index, _ in chunk]
            if journal is not None:
                for index, spec in chunk:
                    journal.started(index, spec.key())
            future = executor.submit(_execute_chunk, specs, store_root, use_cache)
            flights[future] = _Flight(indices=indices, specs=specs)
        for index, spec in with_timeout:
            if journal is not None:
                journal.started(index, spec.key())
            future = executor.submit(execute_job, spec, store_root, use_cache)
            flights[future] = _Flight(indices=[index], specs=[spec], timed=True)

        drained = False
        while flights:
            done_set, _ = wait(
                set(flights), timeout=policy.poll_s, return_when=FIRST_COMPLETED
            )
            for future in done_set:
                flight = flights.pop(future)
                watchdog.note_progress()
                try:
                    outcome = future.result()
                except CancelledError:
                    continue  # drained before start; swept as interrupted
                except BrokenProcessPool:
                    raise
                except Exception as exc:
                    # execute_job never raises; this future came back
                    # broken (worker died mid-task, unpicklable result).
                    raise _PoolDegraded(
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                if flight.timed:
                    result = outcome
                    result.attempts += flight.timeouts
                    results[flight.indices[0]] = result
                    _journal_result(journal, flight.indices[0], result)
                else:
                    for index, result in zip(flight.indices, outcome):
                        results[index] = result
                        _journal_result(journal, index, result)

            if drain.stopped and not drained:
                drained = True
                for future in list(flights):
                    if future.cancel():
                        # Never started; the caller sweeps its jobs up
                        # as interrupted.
                        flights.pop(future)

            for future, flight in list(flights.items()):
                if not flight.timed:
                    continue
                if future.done():
                    # Completed between the wait() sweep and this check;
                    # the next wait() returns it immediately and its
                    # result is harvested, never discarded as a timeout.
                    continue
                spec = flight.specs[0]
                index = flight.indices[0]
                if flight.started_at is None:
                    flight.started_at = heartbeats.job_started_at(spec.key())
                    if flight.started_at is None:
                        continue  # still queued; the clock starts with execution
                if time.time() - flight.started_at < (spec.timeout_s or 0.0):
                    continue
                flights.pop(future)
                if not future.cancel():
                    # Already running: abandon it. The worker is killed
                    # at teardown instead of blocking shutdown.
                    tainted = True
                _count("resilience.job_timeouts_total")
                flight.timeouts += 1
                if flight.timeouts <= spec.retries and not drain.stopped:
                    # The timeout consumed one attempt from the retry
                    # budget; resubmit after seeded jittered backoff.
                    _count("resilience.timeout_retries_total")
                    time.sleep(
                        jittered_backoff_s(
                            spec.backoff_s, flight.timeouts - 1,
                            spec.key(), "timeout",
                        )
                    )
                    if journal is not None:
                        journal.started(index, spec.key())
                    # Drop the abandoned attempt's stamp so the retry's
                    # clock arms from *its* execution start, not this one's.
                    heartbeats.clear_start(spec.key())
                    retry = executor.submit(
                        execute_job, spec, store_root, use_cache
                    )
                    flights[retry] = _Flight(
                        indices=[index],
                        specs=[spec],
                        timed=True,
                        timeouts=flight.timeouts,
                    )
                else:
                    result = _timeout_failure(spec, spec.key(), flight.timeouts)
                    results[index] = result
                    _journal_result(journal, index, result)

            if flights and watchdog.hung():
                killed = watchdog.declare_hang()
                _count("resilience.hung_workers_total", max(1, len(killed)))
                tainted = True
                raise _PoolDegraded(
                    f"pool hung for {policy.hang_s}s; "
                    f"killed stale workers {killed}"
                )
    except BrokenProcessPool as exc:
        _count("resilience.worker_deaths_total")
        tainted = True
        raise _PoolDegraded(f"worker process died: {exc}") from exc
    finally:
        _teardown_pool(executor, heartbeats, tainted)
        shutil.rmtree(hb_root, ignore_errors=True)


def _teardown_pool(
    executor: ProcessPoolExecutor, heartbeats: HeartbeatDir, tainted: bool
) -> None:
    """Shut the pool down; never block on a worker stuck in a job."""
    if not tainted:
        executor.shutdown(wait=True)
        return
    executor.shutdown(wait=False, cancel_futures=True)
    for record in heartbeats.beats():
        pid = record.get("pid")
        if not isinstance(pid, int) or pid == os.getpid():
            continue
        try:
            os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
        except (OSError, ProcessLookupError):
            continue


def run_experiments(
    experiment_ids: Sequence[str],
    workers: Optional[int] = None,
    store_root: Optional[Union[str, os.PathLike]] = None,
    use_cache: bool = True,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    collect_metrics: bool = False,
    trace: bool = False,
    run_id: Optional[str] = None,
    resume: bool = False,
    watchdog_policy: Optional[WatchdogPolicy] = None,
) -> Tuple[List[Optional[Any]], RunTelemetry]:
    """Run registered experiments through the lab.

    Returns one decoded
    :class:`~repro.harness.experiment.ExperimentResult` per id (None
    for a failed or interrupted experiment — inspect
    ``telemetry.failures()``), plus the run telemetry. ``run_id``,
    ``resume``, and ``watchdog_policy`` thread straight through to
    :func:`run_jobs`.
    """
    jobs = [
        ExperimentJob(
            experiment_id=experiment_id, timeout_s=timeout_s, retries=retries
        )
        for experiment_id in experiment_ids
    ]
    job_results, telemetry = run_jobs(
        jobs,
        workers=workers,
        store_root=store_root,
        use_cache=use_cache,
        collect_metrics=collect_metrics,
        trace=trace,
        run_id=run_id,
        resume=resume,
        watchdog_policy=watchdog_policy,
    )
    decoded: List[Optional[Any]] = []
    for spec, result in zip(jobs, job_results):
        decoded.append(result.value(spec) if result.ok else None)
    return decoded, telemetry


__all__ = ["resolve_workers", "run_experiments", "run_jobs"]
