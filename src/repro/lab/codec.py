"""JSON codecs for the objects the lab stores.

The store holds plain JSON so results survive process boundaries and
code reloads. Round-tripping must be faithful: the interval-analysis
layer consumes events and per-instruction timelines from a decoded
:class:`~repro.pipeline.result.SimulationResult` exactly as it would
from a fresh simulation (tests assert this bit-for-bit).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEvent,
)
from repro.pipeline.result import SimulationResult

_EVENT_KINDS = {
    "bpred": BranchMispredictEvent,
    "icache": ICacheMissEvent,
    "long_dmiss": LongDMissEvent,
}


def _event_to_payload(event: MissEvent) -> Dict[str, Any]:
    if isinstance(event, BranchMispredictEvent):
        return {
            "k": "bpred",
            "seq": event.seq,
            "cycle": event.cycle,
            "resolve_cycle": event.resolve_cycle,
            "refill_cycles": event.refill_cycles,
            "window_occupancy": event.window_occupancy,
        }
    if isinstance(event, ICacheMissEvent):
        return {
            "k": "icache",
            "seq": event.seq,
            "cycle": event.cycle,
            "latency": event.latency,
            "long_miss": event.long_miss,
        }
    if isinstance(event, LongDMissEvent):
        return {
            "k": "long_dmiss",
            "seq": event.seq,
            "cycle": event.cycle,
            "complete_cycle": event.complete_cycle,
        }
    raise TypeError(f"unknown event type {type(event).__name__}")


def _event_from_payload(payload: Dict[str, Any]) -> MissEvent:
    data = dict(payload)
    kind = data.pop("k")
    try:
        cls = _EVENT_KINDS[kind]
    except KeyError:
        raise ValueError(f"unknown event kind {kind!r}") from None
    return cls(**data)


def result_to_payload(result: SimulationResult) -> Dict[str, Any]:
    """JSON-ready form of a simulation result."""
    return {
        "type": "simulation_result",
        "instructions": result.instructions,
        "cycles": result.cycles,
        "events": [_event_to_payload(e) for e in result.events],
        "dispatch_cycle": result.dispatch_cycle,
        "issue_cycle": result.issue_cycle,
        "complete_cycle": result.complete_cycle,
        "commit_cycle": result.commit_cycle,
        "fu_issue_counts": dict(result.fu_issue_counts),
        "rob_peak_occupancy": result.rob_peak_occupancy,
        "squashed_ghosts": result.squashed_ghosts,
    }


def result_from_payload(payload: Dict[str, Any]) -> SimulationResult:
    """Inverse of :func:`result_to_payload`."""
    if payload.get("type") != "simulation_result":
        raise ValueError(f"not a simulation result: {payload.get('type')!r}")
    return SimulationResult(
        instructions=payload["instructions"],
        cycles=payload["cycles"],
        events=[_event_from_payload(e) for e in payload["events"]],
        dispatch_cycle=payload["dispatch_cycle"],
        issue_cycle=payload["issue_cycle"],
        complete_cycle=payload["complete_cycle"],
        commit_cycle=payload["commit_cycle"],
        fu_issue_counts=dict(payload["fu_issue_counts"]),
        rob_peak_occupancy=payload["rob_peak_occupancy"],
        squashed_ghosts=payload["squashed_ghosts"],
    )


def experiment_to_payload(result: "Any") -> Dict[str, Any]:
    """JSON-ready form of an experiment result (tables survive as-is)."""
    return {
        "type": "experiment_result",
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headers": list(result.headers),
        "rows": [list(row) for row in result.rows],
        "series": {k: list(v) for k, v in result.series.items()},
        "notes": result.notes,
    }


def experiment_from_payload(payload: Dict[str, Any]) -> "Any":
    """Inverse of :func:`experiment_to_payload`."""
    # Imported here, not at module top: the harness itself imports the
    # lab (runner caching), and a top-level import would be circular.
    from repro.harness.experiment import ExperimentResult

    if payload.get("type") != "experiment_result":
        raise ValueError(f"not an experiment result: {payload.get('type')!r}")
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        headers=list(payload["headers"]),
        rows=[list(row) for row in payload["rows"]],
        series={k: list(v) for k, v in payload["series"].items()},
        notes=payload["notes"],
    )


def batch_to_payload(results: "Any") -> Dict[str, Any]:
    """JSON-ready form of one lockstep batch (a list of results).

    The batch rides the store as a single payload so a
    ``BatchSimJob``'s N lockstep points stay one cache entry — the
    whole point of batching is that they were produced together.
    """
    return {
        "type": "simulation_batch",
        "results": [result_to_payload(r) for r in results],
    }


def batch_from_payload(payload: Dict[str, Any]) -> "Any":
    """Inverse of :func:`batch_to_payload`."""
    if payload.get("type") != "simulation_batch":
        raise ValueError(f"not a simulation batch: {payload.get('type')!r}")
    return [result_from_payload(p) for p in payload["results"]]


def shard_to_payload(shard: "Any") -> Dict[str, Any]:
    """JSON-ready form of one checkpoint shard's relative-time result."""
    return {
        "type": "simulation_shard",
        "start": shard.start,
        "stop": shard.stop,
        "resume_cycle": shard.resume_cycle,
        "clean": shard.clean,
        "result": result_to_payload(shard.result),
    }


def shard_from_payload(payload: Dict[str, Any]) -> "Any":
    """Inverse of :func:`shard_to_payload`."""
    # Lazy for the same reason as the experiment codec: perf.checkpoint
    # reaches back into lab-adjacent modules.
    from repro.perf.checkpoint import ShardResult

    if payload.get("type") != "simulation_shard":
        raise ValueError(f"not a simulation shard: {payload.get('type')!r}")
    return ShardResult(
        start=payload["start"],
        stop=payload["stop"],
        result=result_from_payload(payload["result"]),
        resume_cycle=payload["resume_cycle"],
        clean=payload["clean"],
    )


def payload_from_value(value: Any) -> Dict[str, Any]:
    """Encode any supported job return value."""
    from repro.harness.experiment import ExperimentResult
    from repro.perf.checkpoint import ShardResult

    if isinstance(value, SimulationResult):
        return result_to_payload(value)
    if isinstance(value, ExperimentResult):
        return experiment_to_payload(value)
    if isinstance(value, ShardResult):
        return shard_to_payload(value)
    if isinstance(value, (list, tuple)) and value and all(
        isinstance(item, SimulationResult) for item in value
    ):
        return batch_to_payload(value)
    raise TypeError(
        f"no codec for job value of type {type(value).__name__}"
    )


def value_from_payload(payload: Dict[str, Any]) -> Any:
    """Decode any supported stored payload."""
    kind = payload.get("type")
    if kind == "simulation_result":
        return result_from_payload(payload)
    if kind == "experiment_result":
        return experiment_from_payload(payload)
    if kind == "simulation_batch":
        return batch_from_payload(payload)
    if kind == "simulation_shard":
        return shard_from_payload(payload)
    raise ValueError(f"no codec for stored payload type {kind!r}")


__all__: List[str] = [
    "batch_from_payload",
    "batch_to_payload",
    "experiment_from_payload",
    "experiment_to_payload",
    "payload_from_value",
    "result_from_payload",
    "result_to_payload",
    "shard_from_payload",
    "shard_to_payload",
    "value_from_payload",
]
