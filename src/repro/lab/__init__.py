"""repro.lab — parallel experiment execution with a persistent result store.

The lab is the execution layer every experiment and sweep runs through:

- :mod:`repro.lab.store` — a content-addressed on-disk result store
  (JSON objects under ``.repro-cache/``) keyed by a stable hash of the
  machine configuration, the workload identity, and a code-version
  salt, with hit/miss/eviction accounting.
- :mod:`repro.lab.jobs` — declarative :class:`SimJob` /
  :class:`ExperimentJob` / :class:`SweepJob` specs with per-job
  timeout, bounded retry with backoff, and error capture.
- :mod:`repro.lab.pool` — a ``multiprocessing``-based worker pool that
  fans independent jobs across cores, with a write-ahead run journal
  (``--resume``), graceful SIGINT/SIGTERM draining, a heartbeat
  watchdog, and degradation to serial execution when ``workers=1``,
  the platform cannot fork, or workers die/hang.
- :mod:`repro.lab.telemetry` — per-job wall-time / cache-hit / retry
  counters, the run manifest written next to the results, and the
  canonical merged manifest behind the byte-identical resume guarantee.

Store objects are checksummed on write and verified on read; corrupt
objects are quarantined (see :mod:`repro.resilience` and
``repro lab fsck``). Degradation paths are testable via deterministic
fault injection (``REPRO_FAULTS=...``).

Typical use::

    from repro.lab import run_experiments
    results, telemetry = run_experiments(["f2", "f3"], workers=4)
"""

from repro.lab.codec import (
    experiment_from_payload,
    experiment_to_payload,
    result_from_payload,
    result_to_payload,
)
from repro.lab.jobs import (
    ExperimentJob,
    JobResult,
    JobSpec,
    JobStatus,
    SimJob,
    SweepJob,
    execute_job,
)
from repro.lab.pool import run_experiments, run_jobs
from repro.lab.store import (
    CODE_SALT,
    ResultStore,
    StoreStats,
    canonical_config,
    config_digest,
    default_store_root,
    job_key,
    payload_digest,
    verify_object_bytes,
)
from repro.lab.telemetry import JobRecord, RunTelemetry

__all__ = [
    "CODE_SALT",
    "ExperimentJob",
    "JobRecord",
    "JobResult",
    "JobSpec",
    "JobStatus",
    "ResultStore",
    "RunTelemetry",
    "SimJob",
    "StoreStats",
    "SweepJob",
    "canonical_config",
    "config_digest",
    "default_store_root",
    "execute_job",
    "experiment_from_payload",
    "experiment_to_payload",
    "job_key",
    "payload_digest",
    "result_from_payload",
    "result_to_payload",
    "run_experiments",
    "run_jobs",
    "verify_object_bytes",
]
