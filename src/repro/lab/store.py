"""Persistent content-addressed result store.

Every simulation and experiment result the lab produces is addressed by
a SHA-256 digest of *what produced it*: the canonical form of the
:class:`~repro.pipeline.config.CoreConfig`, the workload identity
(name, length, seed), the job kind, and a code-version salt. Two
configurations that differ in any field hash differently; the same
configuration built with its fields in a different order hashes
identically (the canonical form sorts everything). Bumping
:data:`SCHEMA_VERSION` — or releasing a new ``repro`` version —
invalidates every stored object at once, which is the only safe answer
to "the simulator's semantics changed".

Layout on disk (default root ``.repro-cache/``, overridable with the
``REPRO_CACHE_DIR`` environment variable)::

    .repro-cache/
      objects/<digest[:2]>/<digest>.json   # one result per object
      runs/<run_id>.json                   # manifests (telemetry.py)

Objects are written atomically (temp file + fsync + ``os.replace`` via
:mod:`repro.resilience.atomic`) so concurrent worker processes never
observe torn writes; last writer wins, which is harmless because the
content is a pure function of the key.

Integrity: every object embeds a SHA-256 of its payload, verified on
**every** read. An object that fails verification — torn by a crash
the atomic write could not cover (bad disk, external truncation) or
damaged by an injected ``store.read``/``store.write`` fault — is moved
to ``<root>/quarantine/`` and reported as a miss, so the caller simply
recomputes; ``repro lab fsck`` scans the whole store offline (see
:mod:`repro.resilience.fsck`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro import __version__
from repro.pipeline.config import CoreConfig
from repro.resilience import faults
from repro.resilience.atomic import AppendOnlyWriter, atomic_write_bytes

#: Bump when simulator or payload semantics change in a way that makes
#: previously stored results stale. Combined with the package version
#: into :data:`CODE_SALT`, which is folded into every job key.
#: (2: objects embed a payload sha256, verified on every read.)
SCHEMA_VERSION = 2

CODE_SALT = f"repro-{__version__}/lab-schema-{SCHEMA_VERSION}"

_ENV_ROOT = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"


def default_store_root() -> Path:
    """Store root honouring ``REPRO_CACHE_DIR`` (default .repro-cache)."""
    return Path(os.environ.get(_ENV_ROOT, ".repro-cache"))


def caching_disabled() -> bool:
    """True when ``REPRO_NO_CACHE`` requests a store-free run."""
    return os.environ.get(_ENV_DISABLE, "") not in ("", "0")


def canonical_config(config: CoreConfig) -> Dict[str, Any]:
    """Order-independent, JSON-ready form of a configuration.

    Fields are emitted in sorted name order and ``fu_specs`` is
    flattened to ``{op-class value: [count, latency, issue_interval]}``
    in sorted op-class order, so dict insertion order can never leak
    into the digest.
    """
    out: Dict[str, Any] = {}
    for f in sorted(dataclasses.fields(config), key=lambda f: f.name):
        value = getattr(config, f.name)
        if f.name == "fu_specs":
            value = {
                op.value: [spec.count, spec.latency, spec.issue_interval]
                for op, spec in sorted(
                    value.items(), key=lambda kv: kv[0].value
                )
            }
        out[f.name] = value
    return out


def payload_digest(payload: Any) -> str:
    """SHA-256 of a JSON-serializable payload's canonical encoding.

    The one hashing primitive every content address in the repo is
    built from; ``repro.perf.cache`` reuses it so compiled-trace keys
    and result-store keys come out of the same canonical form.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_digest = payload_digest


def config_digest(config: CoreConfig) -> str:
    """Stable SHA-256 digest of a configuration's canonical form."""
    return _digest(canonical_config(config))


def job_key(
    kind: str,
    workload: str,
    length: int,
    seed: int,
    config: CoreConfig,
    salt: str = CODE_SALT,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Content address of one unit of work.

    ``kind`` separates job families ("sim", "sim-inorder",
    "experiment", ...); ``extra`` carries any job-specific parameters
    that must participate in the address.
    """
    return _digest(
        {
            "kind": kind,
            "workload": workload,
            "length": length,
            "seed": seed,
            "config": canonical_config(config),
            "salt": salt,
            "extra": extra or {},
        }
    )


def verify_object_bytes(
    raw: bytes, expected_key: Optional[str] = None
) -> Tuple[str, Optional[Dict[str, Any]]]:
    """Classify one serialized store object.

    Returns ``(status, obj)`` with status one of ``"ok"``,
    ``"unreadable"`` (not parseable as a store object), ``"stale-salt"``
    (written by another code version — unreachable, not corrupt),
    ``"checksum-mismatch"`` (payload does not hash to its recorded
    sha256), or ``"key-mismatch"`` (content address does not match
    ``expected_key``). Shared by :meth:`ResultStore.get` and
    ``repro lab fsck`` so online and offline verification can never
    disagree.
    """
    try:
        obj = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        return "unreadable", None
    if not isinstance(obj, dict) or "payload" not in obj:
        return "unreadable", None
    if obj.get("salt") != CODE_SALT:
        return "stale-salt", obj
    recorded = obj.get("sha256")
    if recorded is None or payload_digest(obj["payload"]) != recorded:
        return "checksum-mismatch", obj
    if expected_key is not None and obj.get("key") != expected_key:
        return "key-mismatch", obj
    return "ok", obj


def quarantine_file(
    root: Union[str, os.PathLike], path: Union[str, os.PathLike], reason: str
) -> Optional[Path]:
    """Move a damaged file into ``<root>/quarantine/`` (keep evidence).

    The move is logged (path, reason, timestamp) to
    ``quarantine/quarantine.jsonl`` and counted through the obs metrics
    registry. Returns the new path, or None when the move failed (e.g.
    the file vanished — another process already quarantined it).
    """
    source = Path(path)
    quarantine_dir = Path(root) / "quarantine"
    quarantine_dir.mkdir(parents=True, exist_ok=True)
    target = quarantine_dir / source.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine_dir / f"{source.name}.{suffix}"
    try:
        os.replace(source, target)
    except OSError:
        return None
    AppendOnlyWriter(quarantine_dir / "quarantine.jsonl").append(
        {
            "path": str(source),
            "quarantined_as": str(target),
            "reason": reason,
            "at": time.time(),
        }
    )
    _count_metric("resilience.quarantined_objects_total")
    return target


def _count_metric(name: str) -> None:
    from repro.obs import runtime as _obs

    metrics = _obs.current_metrics()
    if metrics is not None:
        metrics.counter(name).inc()


def _stat_size(path: Path) -> Optional[int]:
    """File size, or None when the file vanished mid-scan (another
    process quarantined or gc'd it between glob and stat)."""
    try:
        return path.stat().st_size
    except OSError:
        return None


def _stat_mtime(path: Path) -> Optional[float]:
    """File mtime, or None when the file vanished mid-scan."""
    try:
        return path.stat().st_mtime
    except OSError:
        return None


@dataclass
class StoreStats:
    """Hit/miss/eviction accounting for one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    #: Reads that failed integrity verification (object quarantined).
    corrupt: int = 0
    #: Reads lost to injected/real I/O failures (counted as misses too).
    read_errors: int = 0
    #: Objects moved to ``quarantine/`` by this store instance.
    quarantined: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class ResultStore:
    """Content-addressed JSON object store under ``root``.

    ``max_entries`` (optional) turns :meth:`put` into an evicting
    write: once the object count exceeds the bound, the oldest objects
    (by modification time) are removed and counted in
    :attr:`stats.evictions <StoreStats.evictions>`.
    """

    root: Path = field(default_factory=default_store_root)
    max_entries: Optional[int] = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self._object_path(key).is_file()

    def quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Move one damaged object aside; see :func:`quarantine_file`."""
        target = quarantine_file(self.root, path, reason)
        if target is not None:
            self.stats.quarantined += 1
        return target

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Verified payload stored under ``key``, or None (a miss).

        Every read is integrity-checked (payload sha256 + content
        address + code salt). A corrupt object is quarantined and
        reported as a miss so the caller recomputes; an unreadable file
        or an injected ``store.read`` fault is just a miss.
        """
        path = self._object_path(key)
        try:
            raw = path.read_bytes()
            raw = faults.fault_point("store.read", raw)
        except OSError:
            self.stats.misses += 1
            return None
        except faults.InjectedFault:
            self.stats.misses += 1
            self.stats.read_errors += 1
            return None
        status, obj = verify_object_bytes(raw, expected_key=key)
        if status == "ok":
            self.stats.hits += 1
            return obj.get("payload")
        self.stats.misses += 1
        if status != "stale-salt":
            self.stats.corrupt += 1
            _count_metric("resilience.store_corruptions_total")
            self.quarantine(path, reason=f"get({key[:12]}...): {status}")
        return None

    def put(
        self,
        key: str,
        payload: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically store ``payload`` under ``key`` (checksummed)."""
        path = self._object_path(key)
        obj = {
            "key": key,
            "salt": CODE_SALT,
            "sha256": payload_digest(payload),
            "stored_at": time.time(),
            "meta": meta or {},
            "payload": payload,
        }
        blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
        blob = faults.fault_point("store.write", blob)
        atomic_write_bytes(path, blob)
        self.stats.puts += 1
        if self.max_entries is not None:
            self.stats.evictions += self.gc(max_entries=self.max_entries)
        return path

    def iter_objects(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            yield path

    def count(self) -> int:
        return sum(1 for _ in self.iter_objects())

    def size_bytes(self) -> int:
        """Total object bytes, tolerating concurrent readers/writers.

        Another process may quarantine (or gc) an object between the
        directory scan and the ``stat`` — a torn scan must degrade to
        "that object no longer counts", never to an exception.
        """
        total = 0
        for path in self.iter_objects():
            size = _stat_size(path)
            if size is not None:
                total += size
        return total

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_s: Optional[float] = None,
        clear: bool = False,
    ) -> int:
        """Remove objects; returns the number removed.

        ``clear`` drops everything; ``max_age_s`` drops objects older
        than that many seconds; ``max_entries`` keeps only the newest N
        by modification time.
        """
        # mtimes are snapshotted once up front; an object quarantined or
        # removed by a concurrent process mid-scan simply drops out of
        # the candidate set instead of raising from a late ``stat``.
        stamped = [
            (p, mtime)
            for p in self.iter_objects()
            for mtime in (_stat_mtime(p),)
            if mtime is not None
        ]
        doomed: List[Path] = []
        if clear:
            doomed = [p for p, _ in stamped]
        else:
            if max_age_s is not None:
                cutoff = time.time() - max_age_s
                doomed.extend(p for p, mtime in stamped if mtime < cutoff)
            if max_entries is not None and len(stamped) > max_entries:
                survivors = [
                    (p, mtime) for p, mtime in stamped if p not in set(doomed)
                ]
                survivors.sort(key=lambda pair: pair[1])
                doomed.extend(
                    p for p, _ in survivors[: len(survivors) - max_entries]
                )
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def manifests(self) -> List[Path]:
        """Run manifests, newest first (merged manifests excluded)."""
        if not self.runs_dir.is_dir():
            return []
        stamped = [
            (p, mtime)
            for p in self.runs_dir.glob("*.json")
            if not p.name.endswith(".merged.json")
            for mtime in (_stat_mtime(p),)
            if mtime is not None
        ]
        stamped.sort(key=lambda pair: pair[1], reverse=True)
        return [p for p, _ in stamped]

    def quarantined_files(self) -> List[Path]:
        """Quarantined objects on disk (the log itself excluded)."""
        if not self.quarantine_dir.is_dir():
            return []
        return sorted(
            p for p in self.quarantine_dir.iterdir()
            if p.is_file() and p.name != "quarantine.jsonl"
        )

    def describe(self) -> Dict[str, Any]:
        """Status summary for ``repro lab status``."""
        return {
            "root": str(self.root),
            "objects": self.count(),
            "size_bytes": self.size_bytes(),
            "manifests": len(self.manifests()),
            "quarantined": len(self.quarantined_files()),
            "salt": CODE_SALT,
            "stats": self.stats.as_dict(),
        }
