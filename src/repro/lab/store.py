"""Persistent content-addressed result store.

Every simulation and experiment result the lab produces is addressed by
a SHA-256 digest of *what produced it*: the canonical form of the
:class:`~repro.pipeline.config.CoreConfig`, the workload identity
(name, length, seed), the job kind, and a code-version salt. Two
configurations that differ in any field hash differently; the same
configuration built with its fields in a different order hashes
identically (the canonical form sorts everything). Bumping
:data:`SCHEMA_VERSION` — or releasing a new ``repro`` version —
invalidates every stored object at once, which is the only safe answer
to "the simulator's semantics changed".

Layout on disk (default root ``.repro-cache/``, overridable with the
``REPRO_CACHE_DIR`` environment variable)::

    .repro-cache/
      objects/<digest[:2]>/<digest>.json   # one result per object
      runs/<run_id>.json                   # manifests (telemetry.py)

Objects are written atomically (temp file + ``os.replace``) so
concurrent worker processes never observe torn writes; last writer
wins, which is harmless because the content is a pure function of the
key.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro import __version__
from repro.pipeline.config import CoreConfig

#: Bump when simulator or payload semantics change in a way that makes
#: previously stored results stale. Combined with the package version
#: into :data:`CODE_SALT`, which is folded into every job key.
SCHEMA_VERSION = 1

CODE_SALT = f"repro-{__version__}/lab-schema-{SCHEMA_VERSION}"

_ENV_ROOT = "REPRO_CACHE_DIR"
_ENV_DISABLE = "REPRO_NO_CACHE"


def default_store_root() -> Path:
    """Store root honouring ``REPRO_CACHE_DIR`` (default .repro-cache)."""
    return Path(os.environ.get(_ENV_ROOT, ".repro-cache"))


def caching_disabled() -> bool:
    """True when ``REPRO_NO_CACHE`` requests a store-free run."""
    return os.environ.get(_ENV_DISABLE, "") not in ("", "0")


def canonical_config(config: CoreConfig) -> Dict[str, Any]:
    """Order-independent, JSON-ready form of a configuration.

    Fields are emitted in sorted name order and ``fu_specs`` is
    flattened to ``{op-class value: [count, latency, issue_interval]}``
    in sorted op-class order, so dict insertion order can never leak
    into the digest.
    """
    out: Dict[str, Any] = {}
    for f in sorted(dataclasses.fields(config), key=lambda f: f.name):
        value = getattr(config, f.name)
        if f.name == "fu_specs":
            value = {
                op.value: [spec.count, spec.latency, spec.issue_interval]
                for op, spec in sorted(
                    value.items(), key=lambda kv: kv[0].value
                )
            }
        out[f.name] = value
    return out


def payload_digest(payload: Any) -> str:
    """SHA-256 of a JSON-serializable payload's canonical encoding.

    The one hashing primitive every content address in the repo is
    built from; ``repro.perf.cache`` reuses it so compiled-trace keys
    and result-store keys come out of the same canonical form.
    """
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


_digest = payload_digest


def config_digest(config: CoreConfig) -> str:
    """Stable SHA-256 digest of a configuration's canonical form."""
    return _digest(canonical_config(config))


def job_key(
    kind: str,
    workload: str,
    length: int,
    seed: int,
    config: CoreConfig,
    salt: str = CODE_SALT,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """Content address of one unit of work.

    ``kind`` separates job families ("sim", "sim-inorder",
    "experiment", ...); ``extra`` carries any job-specific parameters
    that must participate in the address.
    """
    return _digest(
        {
            "kind": kind,
            "workload": workload,
            "length": length,
            "seed": seed,
            "config": canonical_config(config),
            "salt": salt,
            "extra": extra or {},
        }
    )


@dataclass
class StoreStats:
    """Hit/miss/eviction accounting for one :class:`ResultStore`."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return dataclasses.asdict(self)


@dataclass
class ResultStore:
    """Content-addressed JSON object store under ``root``.

    ``max_entries`` (optional) turns :meth:`put` into an evicting
    write: once the object count exceeds the bound, the oldest objects
    (by modification time) are removed and counted in
    :attr:`stats.evictions <StoreStats.evictions>`.
    """

    root: Path = field(default_factory=default_store_root)
    max_entries: Optional[int] = None
    stats: StoreStats = field(default_factory=StoreStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    @property
    def objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def _object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def contains(self, key: str) -> bool:
        return self._object_path(key).is_file()

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Payload stored under ``key``, or None (counted as a miss)."""
        path = self._object_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                obj = json.load(handle)
        except (OSError, json.JSONDecodeError):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return obj.get("payload")

    def put(
        self,
        key: str,
        payload: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> Path:
        """Atomically store ``payload`` under ``key``."""
        path = self._object_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        obj = {
            "key": key,
            "salt": CODE_SALT,
            "stored_at": time.time(),
            "meta": meta or {},
            "payload": payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(obj, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.puts += 1
        if self.max_entries is not None:
            self.stats.evictions += self.gc(max_entries=self.max_entries)
        return path

    def iter_objects(self) -> Iterator[Path]:
        if not self.objects_dir.is_dir():
            return
        for path in sorted(self.objects_dir.glob("*/*.json")):
            yield path

    def count(self) -> int:
        return sum(1 for _ in self.iter_objects())

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.iter_objects())

    def gc(
        self,
        max_entries: Optional[int] = None,
        max_age_s: Optional[float] = None,
        clear: bool = False,
    ) -> int:
        """Remove objects; returns the number removed.

        ``clear`` drops everything; ``max_age_s`` drops objects older
        than that many seconds; ``max_entries`` keeps only the newest N
        by modification time.
        """
        objects = list(self.iter_objects())
        doomed: List[Path] = []
        if clear:
            doomed = objects
        else:
            if max_age_s is not None:
                cutoff = time.time() - max_age_s
                doomed.extend(p for p in objects if p.stat().st_mtime < cutoff)
            if max_entries is not None and len(objects) > max_entries:
                survivors = [p for p in objects if p not in set(doomed)]
                survivors.sort(key=lambda p: p.stat().st_mtime)
                doomed.extend(survivors[: len(survivors) - max_entries])
        removed = 0
        for path in doomed:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def manifests(self) -> List[Path]:
        """Run manifests, newest first."""
        if not self.runs_dir.is_dir():
            return []
        return sorted(
            self.runs_dir.glob("*.json"),
            key=lambda p: p.stat().st_mtime,
            reverse=True,
        )

    def describe(self) -> Dict[str, Any]:
        """Status summary for ``repro lab status``."""
        return {
            "root": str(self.root),
            "objects": self.count(),
            "size_bytes": self.size_bytes(),
            "manifests": len(self.manifests()),
            "salt": CODE_SALT,
            "stats": self.stats.as_dict(),
        }
