"""Reorder buffer: in-order dispatch and commit bookkeeping."""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

if TYPE_CHECKING:
    from repro.analysis.sanitizer import Sanitizer


class ReorderBuffer:
    """Tracks in-flight dynamic instructions in program order.

    Entries are dynamic sequence numbers. Completion is marked out of
    order; commit removes completed entries strictly in order.

    When a :class:`~repro.analysis.sanitizer.Sanitizer` is attached,
    structural misuse (overflowing dispatch, out-of-order dispatch) is
    recorded as a structured violation instead of raising, so a buggy
    sweep point reports instead of killing the whole run.
    """

    def __init__(self, capacity: int, sanitizer: "Optional[Sanitizer]" = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.sanitizer = sanitizer
        self._entries: Deque[int] = deque()
        self._completed: set = set()
        self.peak_occupancy = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def head(self) -> Optional[int]:
        return self._entries[0] if self._entries else None

    def dispatch(self, seq: int) -> None:
        """Insert a newly dispatched instruction (program order)."""
        if self.is_full:
            if self.sanitizer is None:
                raise RuntimeError("dispatch into a full ROB")
            self.sanitizer.record(
                "rob-overflow",
                f"dispatch of {seq} into a full ROB "
                f"(occupancy {len(self._entries)}/{self.capacity})",
                seq=seq,
            )
        if self._entries and seq <= self._entries[-1]:
            if self.sanitizer is None:
                raise ValueError(
                    f"dispatch out of order: {seq} after {self._entries[-1]}"
                )
            self.sanitizer.record(
                "rob-order",
                f"dispatch out of order: {seq} after {self._entries[-1]}",
                seq=seq,
            )
        self._entries.append(seq)
        self.peak_occupancy = max(self.peak_occupancy, len(self._entries))

    def complete(self, seq: int) -> None:
        """Mark an in-flight instruction as executed."""
        self._completed.add(seq)

    def head_completed(self) -> bool:
        return bool(self._entries) and self._entries[0] in self._completed

    def commit_head(self) -> int:
        """Remove and return the completed head entry."""
        if not self.head_completed():
            raise RuntimeError("commit of an incomplete head")
        seq = self._entries.popleft()
        self._completed.discard(seq)
        return seq

    def squash_younger_than(self, seq: int) -> list:
        """Remove every entry younger than ``seq``; return them.

        Used by wrong-path mode to flush ghost instructions when the
        mispredicted branch resolves.
        """
        squashed = []
        while self._entries and self._entries[-1] > seq:
            victim = self._entries.pop()
            self._completed.discard(victim)
            squashed.append(victim)
        return squashed
