"""Processor configuration (the paper's Table-1 equivalent)."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

from repro.isa.opcodes import OpClass
from repro.util.validation import check_positive


@dataclass(frozen=True)
class FUSpec:
    """One functional-unit pool: unit count, latency, issue interval.

    ``issue_interval`` is 1 for fully pipelined units; equal to
    ``latency`` for unpipelined units such as dividers.
    """

    count: int
    latency: int
    issue_interval: int = 1

    def __post_init__(self) -> None:
        check_positive("count", self.count)
        check_positive("latency", self.latency)
        check_positive("issue_interval", self.issue_interval)
        if self.issue_interval > self.latency:
            raise ValueError(
                f"issue_interval {self.issue_interval} exceeds latency "
                f"{self.latency}"
            )

    def scaled(self, factor: float) -> "FUSpec":
        """Return a copy with the latency scaled (for the F7 sweep)."""
        latency = max(1, round(self.latency * factor))
        interval = min(self.issue_interval, latency)
        if self.issue_interval == self.latency:
            interval = latency  # keep unpipelined units unpipelined
        return FUSpec(count=self.count, latency=latency, issue_interval=interval)


DEFAULT_FU_SPECS: Dict[OpClass, FUSpec] = {
    OpClass.IALU: FUSpec(count=4, latency=1),
    OpClass.IMUL: FUSpec(count=1, latency=3),
    OpClass.IDIV: FUSpec(count=1, latency=20, issue_interval=20),
    OpClass.FADD: FUSpec(count=2, latency=4),
    OpClass.FMUL: FUSpec(count=1, latency=4),
    OpClass.FDIV: FUSpec(count=1, latency=12, issue_interval=12),
    OpClass.LOAD: FUSpec(count=2, latency=1),  # address generation; cache adds
    OpClass.STORE: FUSpec(count=2, latency=1),
    OpClass.BRANCH: FUSpec(count=2, latency=1),
    OpClass.JUMP: FUSpec(count=2, latency=1),
    OpClass.NOP: FUSpec(count=4, latency=1),
}


@dataclass(frozen=True)
class CoreConfig:
    """Baseline machine configuration (Table T1 in DESIGN.md).

    The frontend pipeline depth is the number of cycles from a fetch
    redirect to the first dispatch of the refetched path — the quantity
    folk wisdom equates with the misprediction penalty and which the
    paper shows is only one of five contributors.
    """

    dispatch_width: int = 4
    issue_width: int = 4
    commit_width: int = 4
    rob_size: int = 128
    frontend_depth: int = 5
    fu_specs: Dict[OpClass, FUSpec] = field(
        default_factory=lambda: dict(DEFAULT_FU_SPECS)
    )
    l1_latency: int = 2
    l2_latency: int = 10
    memory_latency: int = 250
    dispatch_wrong_path: bool = False
    record_timeline: bool = True
    issue_policy: str = "oldest"
    seed: int = 0

    def __post_init__(self) -> None:
        if self.issue_policy not in ("oldest", "random"):
            raise ValueError(
                f"issue_policy must be 'oldest' or 'random', "
                f"got {self.issue_policy!r}"
            )
        check_positive("dispatch_width", self.dispatch_width)
        check_positive("issue_width", self.issue_width)
        check_positive("commit_width", self.commit_width)
        check_positive("rob_size", self.rob_size)
        check_positive("frontend_depth", self.frontend_depth)
        check_positive("l1_latency", self.l1_latency)
        check_positive("l2_latency", self.l2_latency)
        check_positive("memory_latency", self.memory_latency)
        if self.rob_size < self.dispatch_width:
            raise ValueError("rob_size must be at least dispatch_width")
        missing = [c for c in OpClass if c not in self.fu_specs]
        if missing:
            raise ValueError(f"fu_specs missing op classes: {missing}")

    def with_overrides(self, **kwargs) -> "CoreConfig":
        """Return a copy with fields replaced (sweeps use this)."""
        return replace(self, **kwargs)

    def with_scaled_fu_latencies(self, factor: float) -> "CoreConfig":
        """Scale all non-memory FU latencies by ``factor`` (F7 sweep)."""
        scaled = {
            op_class: spec.scaled(factor)
            for op_class, spec in self.fu_specs.items()
        }
        return self.with_overrides(fu_specs=scaled)

    def load_latency(self, miss_class: str) -> int:
        """Total cache latency of a load by miss class name."""
        if miss_class == "l1_hit":
            return self.l1_latency
        if miss_class == "short":
            return self.l2_latency
        if miss_class == "long":
            return self.memory_latency
        raise ValueError(f"unknown miss class {miss_class!r}")

    def describe(self) -> List[Tuple[str, str]]:
        """Rows for the configuration table (bench T1)."""
        rows = [
            ("dispatch/issue/commit width", f"{self.dispatch_width}/"
             f"{self.issue_width}/{self.commit_width}"),
            ("ROB / issue window", str(self.rob_size)),
            ("frontend pipeline depth", f"{self.frontend_depth} cycles"),
            ("L1 D-cache latency", f"{self.l1_latency} cycles"),
            ("L2 latency (short miss)", f"{self.l2_latency} cycles"),
            ("memory latency (long miss)", f"{self.memory_latency} cycles"),
        ]
        for op_class in OpClass:
            spec = self.fu_specs[op_class]
            if op_class is OpClass.NOP:
                continue
            pipelining = (
                "unpipelined" if spec.issue_interval == spec.latency > 1
                else "pipelined"
            )
            rows.append(
                (
                    f"{op_class.value} units",
                    f"{spec.count} x {spec.latency} cycles ({pipelining})",
                )
            )
        return rows
