"""A scoreboarded in-order core, for contrast with the OoO machine.

The paper's large misprediction penalties are a consequence of the
out-of-order window: the branch waits behind a drain of up to ROB-many
instructions. On an in-order machine the branch issues as soon as its
operands are ready and everything older has issued, so the resolution
time collapses to roughly its operands' latency — and the folk-wisdom
approximation ``penalty ≈ frontend depth`` becomes almost true.
Experiment F20 quantifies that contrast.

The model: instructions issue strictly in program order, up to
``issue_width`` per cycle, when (a) their producers have completed
(full bypass), (b) a functional unit is free, (c) the frontend has
delivered them, and (d) a scoreboard entry is free — at most
``rob_size`` instructions may be in flight (issued but not yet retired
in order), so outstanding long misses buffer exactly as much work as
the out-of-order machine's window, not infinitely. Miss events are
logged with the same types as the OoO core, so the entire
interval-analysis layer works unchanged.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis import sanitizer as _sanitizer
from repro.memory.hierarchy import MissClass
from repro.obs import runtime as _obs
from repro.obs.tracer import KIND_BPRED, KIND_ICACHE, KIND_LONG_DMISS, MissSpan
from repro.pipeline.annotate import Annotator, OracleAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
)
from repro.pipeline.functional_units import FunctionalUnits
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace


class InOrderCore:
    """Width-``issue_width`` in-order pipeline with full bypassing."""

    def __init__(self, config: CoreConfig = CoreConfig()):
        self.config = config

    def run(
        self, trace: Trace, annotator: Optional[Annotator] = None
    ) -> SimulationResult:
        """Simulate the trace; returns the same result type as the
        out-of-order core (ROB fields read as the in-flight count)."""
        config = self.config
        records = trace.records
        n = len(records)
        if annotator is None:
            annotator = OracleAnnotator(config)
        if n == 0:
            return SimulationResult(instructions=0, cycles=0)

        san = _sanitizer.current()
        if san is not None:
            san.begin_run()
        tracer = _obs.current_tracer()
        metrics = _obs.current_metrics()
        prof = _obs.current_profiler()
        t_start = prof.clock() if prof is not None else 0.0
        if metrics is not None:
            m_mispredicts = metrics.counter("core.mispredicts_total")
            m_resolution = metrics.histogram("core.resolution_cycles")
            m_penalty = metrics.histogram("core.penalty_cycles")
            m_icache = metrics.counter("core.icache_misses_total")
            m_long_dmiss = metrics.counter("core.long_dmisses_total")
        fus = FunctionalUnits(config.fu_specs)
        comp: List[int] = [0] * n
        retire: List[int] = [0] * n  # in-order retirement times
        record_timeline = config.record_timeline
        dispatch_cycle = [0] * n
        issue_cycle = [0] * n if record_timeline else None
        commit_cycle = [0] * n if record_timeline else None

        events = []
        frontend_ready = config.frontend_depth
        issue_time = frontend_ready  # earliest issue for the next instr
        issued_this_cycle = 0
        last_commit = 0

        for seq, record in enumerate(records):
            annotation = annotator.annotate(record)

            # Frontend: I-cache misses stall delivery.
            if annotation.icache_latency is not None:
                stall_from = max(issue_time, frontend_ready)
                frontend_ready = stall_from + annotation.icache_latency
                events.append(
                    ICacheMissEvent(
                        seq=seq,
                        cycle=stall_from,
                        latency=annotation.icache_latency,
                        long_miss=annotation.icache_long,
                    )
                )
                if tracer is not None:
                    tracer.miss_span(
                        MissSpan(
                            kind=KIND_ICACHE,
                            seq=seq,
                            dispatch_cycle=stall_from,
                            resolve_cycle=frontend_ready,
                        )
                    )
                if metrics is not None:
                    m_icache.inc()

            earliest = max(issue_time, frontend_ready)
            dispatch_cycle[seq] = earliest

            # Operand readiness (full bypass: ready at producer completion).
            ready = earliest
            # Scoreboard capacity: at most rob_size in flight, so the
            # oldest-but-rob_size instruction must have retired.
            if seq >= config.rob_size:
                ready = max(ready, retire[seq - config.rob_size])
            for dist in record.deps:
                producer = seq - dist
                if producer >= 0:
                    ready = max(ready, comp[producer])

            # Structural: a unit of the class must be free.
            start = ready
            while not fus.can_issue(record.op_class, start):
                start += 1
            done = fus.issue(record.op_class, start)
            if record.is_load and annotation.dcache_class is not None:
                done += annotation.dcache_latency
            comp[seq] = done
            retire[seq] = done if seq == 0 else max(retire[seq - 1], done)
            if san is not None:
                # Retirement is the in-order commit point; the window of
                # issued-but-unretired instructions is bounded by rob_size.
                san.check_commit(retire[seq], seq=seq)

            # In-order issue bandwidth: width per cycle, no younger
            # instruction issues earlier.
            if start == issue_time:
                issued_this_cycle += 1
                if issued_this_cycle >= config.issue_width:
                    issue_time = start + 1
                    issued_this_cycle = 0
            else:
                issue_time = start
                issued_this_cycle = 1

            if record_timeline:
                issue_cycle[seq] = start
                commit_cycle[seq] = done
            last_commit = max(last_commit, done)

            # Miss events.
            if record.is_load and annotation.dcache_class is MissClass.LONG:
                events.append(
                    LongDMissEvent(
                        seq=seq, cycle=dispatch_cycle[seq], complete_cycle=done
                    )
                )
                if tracer is not None:
                    tracer.miss_span(
                        MissSpan(
                            kind=KIND_LONG_DMISS,
                            seq=seq,
                            dispatch_cycle=dispatch_cycle[seq],
                            resolve_cycle=done,
                        )
                    )
                if metrics is not None:
                    m_long_dmiss.inc()
            if record.is_control and annotation.mispredicted:
                events.append(
                    BranchMispredictEvent(
                        seq=seq,
                        cycle=dispatch_cycle[seq],
                        resolve_cycle=done,
                        refill_cycles=config.frontend_depth,
                        window_occupancy=0,
                    )
                )
                if tracer is not None:
                    tracer.miss_span(
                        MissSpan(
                            kind=KIND_BPRED,
                            seq=seq,
                            dispatch_cycle=dispatch_cycle[seq],
                            resolve_cycle=done,
                            refill_cycles=config.frontend_depth,
                        )
                    )
                if metrics is not None:
                    m_mispredicts.inc()
                    m_resolution.add(done - dispatch_cycle[seq])
                    m_penalty.add(
                        done - dispatch_cycle[seq] + config.frontend_depth
                    )
                frontend_ready = done + config.frontend_depth

        result = SimulationResult(
            instructions=n,
            cycles=last_commit + 1,
            events=events,
            dispatch_cycle=dispatch_cycle,
            issue_cycle=issue_cycle,
            complete_cycle=list(comp) if record_timeline else None,
            commit_cycle=commit_cycle,
            fu_issue_counts=fus.issue_counts(),
            rob_peak_occupancy=0,
        )
        if metrics is not None:
            metrics.counter("core.instructions_total").inc(n)
            metrics.counter("core.cycles_total").inc(last_commit + 1)
        if prof is not None:
            prof.add("core.inorder_loop", prof.clock() - t_start)
        if san is not None:
            san.seal_run(result, config)
        return result


def simulate_inorder(
    trace: Trace,
    config: CoreConfig = CoreConfig(),
    annotator: Optional[Annotator] = None,
) -> SimulationResult:
    """Convenience wrapper: run ``trace`` on a fresh in-order core."""
    return InOrderCore(config).run(trace, annotator=annotator)
