"""Miss-event records emitted by the timing simulator.

These are the raw material of interval analysis: each event carries the
dynamic instruction index (``seq``) and the cycles needed to segment
execution into inter-miss intervals and to decompose penalties.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class MissEventKind(enum.Enum):
    """The paper's three miss-event types."""

    BRANCH_MISPREDICT = "branch_mispredict"
    ICACHE_MISS = "icache_miss"
    LONG_DCACHE_MISS = "long_dcache_miss"


@dataclass(frozen=True)
class MissEvent:
    """Base fields shared by all miss events."""

    seq: int
    cycle: int  # cycle the event's instruction entered the window

    @property
    def kind(self) -> MissEventKind:
        raise NotImplementedError


@dataclass(frozen=True)
class BranchMispredictEvent(MissEvent):
    """A mispredicted conditional branch (or jump target miss).

    ``resolve_cycle`` is when the branch executed; the resolution time
    (``resolve_cycle - cycle``) plus the frontend refill is the paper's
    misprediction penalty. ``window_occupancy`` is the number of
    instructions in the ROB when the branch dispatched — the quantity
    contributor C2 (instructions since last miss event) controls.
    """

    resolve_cycle: int = 0
    refill_cycles: int = 0
    window_occupancy: int = 0

    @property
    def kind(self) -> MissEventKind:
        return MissEventKind.BRANCH_MISPREDICT

    @property
    def resolution(self) -> int:
        """Branch resolution time in cycles (dispatch -> execute)."""
        return self.resolve_cycle - self.cycle

    @property
    def penalty(self) -> int:
        """Total misprediction penalty: resolution + frontend refill."""
        return self.resolution + self.refill_cycles


@dataclass(frozen=True)
class ICacheMissEvent(MissEvent):
    """An instruction-cache miss stalling the frontend."""

    latency: int = 0
    long_miss: bool = False  # True when the line came from memory

    @property
    def kind(self) -> MissEventKind:
        return MissEventKind.ICACHE_MISS


@dataclass(frozen=True)
class LongDMissEvent(MissEvent):
    """A load that missed in L2 (served by main memory)."""

    complete_cycle: int = 0

    @property
    def kind(self) -> MissEventKind:
        return MissEventKind.LONG_DCACHE_MISS

    @property
    def latency(self) -> int:
        return self.complete_cycle - self.cycle
