"""Out-of-order superscalar timing simulator.

The :class:`SuperscalarCore` is a dependence-driven, cycle-accurate
model of the machine the paper characterizes: a configurable frontend
pipeline (fetch through dispatch), a unified issue window/ROB, width-
limited dispatch/issue/commit, functional-unit pools with per-class
latencies, and a memory hierarchy reached by loads and stores.

Miss events — branch mispredictions, I-cache misses and long D-cache
misses — are logged with full timing (dispatch cycle, resolve cycle,
window occupancy) so that :mod:`repro.interval` can segment execution
into inter-miss intervals and decompose every branch misprediction
penalty.

Two annotation sources are supported: :class:`OracleAnnotator` honours
the miss flags carried by synthetic traces, while
:class:`StructuralAnnotator` derives them from the branch-predictor and
cache substrates.
"""

from repro.pipeline.config import CoreConfig, FUSpec, DEFAULT_FU_SPECS
from repro.pipeline.functional_units import FunctionalUnitPool, FunctionalUnits
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEvent,
    MissEventKind,
)
from repro.pipeline.annotate import (
    Annotation,
    Annotator,
    OracleAnnotator,
    StructuralAnnotator,
)
from repro.pipeline.rob import ReorderBuffer
from repro.pipeline.result import SimulationResult
from repro.pipeline.core import SuperscalarCore, simulate
from repro.pipeline.inorder import InOrderCore, simulate_inorder

__all__ = [
    "CoreConfig",
    "FUSpec",
    "DEFAULT_FU_SPECS",
    "FunctionalUnitPool",
    "FunctionalUnits",
    "MissEvent",
    "MissEventKind",
    "BranchMispredictEvent",
    "ICacheMissEvent",
    "LongDMissEvent",
    "Annotation",
    "Annotator",
    "OracleAnnotator",
    "StructuralAnnotator",
    "ReorderBuffer",
    "SimulationResult",
    "SuperscalarCore",
    "simulate",
    "InOrderCore",
    "simulate_inorder",
]
