"""Simulation results: cycle counts, per-instruction timing, miss events."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEvent,
)


@dataclass
class SimulationResult:
    """Everything the interval-analysis layer needs from one run.

    The per-instruction timing lists are indexed by dynamic sequence
    number and are only populated when ``CoreConfig.record_timeline``
    is set (the default). ``events`` holds the three miss-event types
    in the order their instructions dispatched.
    """

    instructions: int
    cycles: int
    events: List[MissEvent] = field(default_factory=list)
    dispatch_cycle: Optional[List[int]] = None
    issue_cycle: Optional[List[int]] = None
    complete_cycle: Optional[List[int]] = None
    commit_cycle: Optional[List[int]] = None
    fu_issue_counts: Dict[str, int] = field(default_factory=dict)
    rob_peak_occupancy: int = 0
    squashed_ghosts: int = 0

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    @property
    def mispredict_events(self) -> List[BranchMispredictEvent]:
        return [e for e in self.events if isinstance(e, BranchMispredictEvent)]

    @property
    def icache_events(self) -> List[ICacheMissEvent]:
        return [e for e in self.events if isinstance(e, ICacheMissEvent)]

    @property
    def long_dmiss_events(self) -> List[LongDMissEvent]:
        return [e for e in self.events if isinstance(e, LongDMissEvent)]

    @property
    def mean_mispredict_penalty(self) -> float:
        events = self.mispredict_events
        if not events:
            return 0.0
        return sum(e.penalty for e in events) / len(events)

    @property
    def mean_branch_resolution(self) -> float:
        events = self.mispredict_events
        if not events:
            return 0.0
        return sum(e.resolution for e in events) / len(events)

    def summary(self) -> Dict[str, float]:
        """Headline numbers for table rendering."""
        return {
            "instructions": float(self.instructions),
            "cycles": float(self.cycles),
            "ipc": self.ipc,
            "cpi": self.cpi,
            "mispredictions": float(len(self.mispredict_events)),
            "icache_misses": float(len(self.icache_events)),
            "long_dmisses": float(len(self.long_dmiss_events)),
            "mean_penalty": self.mean_mispredict_penalty,
            "mean_resolution": self.mean_branch_resolution,
        }
