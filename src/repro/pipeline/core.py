"""The out-of-order superscalar timing simulator.

The model is dependence-driven and cycle-accurate at the granularity
interval analysis needs:

* **Dispatch** — up to ``dispatch_width`` instructions per cycle enter
  the unified window/ROB, gated by ROB space, the frontend-ready cycle
  (redirects and I-cache misses push it out), and — after a mispredicted
  control instruction — the resolve-and-refill sequence.
* **Issue** — an instruction issues once all producers have known
  completion times that have passed, subject to ``issue_width`` and
  functional-unit availability; selection is oldest-first.
* **Execute** — latency comes from the op class's FU spec; loads add
  the data-cache latency of their miss class (hit / short / long).
* **Commit** — in order, up to ``commit_width`` per cycle.

Branch mispredictions stop dispatch at the branch; when the branch
executes, the frontend refills for ``frontend_depth`` cycles and the
event log records the resolution time and the window occupancy — the
exact quantities the paper's penalty decomposition is built from. The
optional wrong-path mode instead keeps dispatching ghost instructions
that occupy window and issue slots until the flush.

The main loop skips idle cycles (e.g. during a long memory stall), so
simulated time is O(events), not O(cycles).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.isa.opcodes import OpClass
from repro.obs import runtime as _obs
from repro.obs.tracer import KIND_BPRED, KIND_ICACHE, KIND_LONG_DMISS, MissSpan
from repro.memory.hierarchy import MissClass
from repro.pipeline.annotate import Annotation, Annotator, OracleAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
)
from repro.pipeline.functional_units import FunctionalUnits
from repro.pipeline.result import SimulationResult
from repro.pipeline.rob import ReorderBuffer
from repro.trace.stream import Trace
from repro.util.rng import SplitMix, derive_seed

_GHOST = -1  # seq marker for wrong-path ghost instructions

_oracle_annotations = None


def _oracle_annotations_fn():
    """Lazy cached import of the columnar oracle annotator.

    repro.perf sits above the pipeline layer, so the import cannot be
    top-level; caching the resolved function keeps the per-run cost to
    one global read instead of import machinery on every ``run``.
    """
    global _oracle_annotations
    if _oracle_annotations is None:
        from repro.perf.annotate_fast import oracle_annotations

        _oracle_annotations = oracle_annotations
    return _oracle_annotations


class SuperscalarCore:
    """One simulated core; construct per run."""

    def __init__(self, config: Optional[CoreConfig] = None):
        self.config = config if config is not None else CoreConfig()

    def run(
        self, trace: Trace, annotator: Optional[Annotator] = None
    ) -> SimulationResult:
        """Simulate the trace to completion and return the result."""
        config = self.config
        records = trace.records
        n = len(records)
        oracle_fast = annotator is None
        if oracle_fast:
            annotator = OracleAnnotator(config)
        if n == 0:
            return SimulationResult(instructions=0, cycles=0)

        san = _sanitizer.current()
        if san is not None:
            san.begin_run()
        tracer = _obs.current_tracer()
        metrics = _obs.current_metrics()
        prof = _obs.current_profiler()
        clock = prof.clock if prof is not None else None
        if metrics is not None:
            # Hoist the handles so the hot loop never touches the registry.
            m_mispredicts = metrics.counter("core.mispredicts_total")
            m_resolution = metrics.histogram("core.resolution_cycles")
            m_penalty = metrics.histogram("core.penalty_cycles")
            m_icache = metrics.counter("core.icache_misses_total")
            m_long_dmiss = metrics.counter("core.long_dmisses_total")
        fus = FunctionalUnits(config.fu_specs)
        rob = ReorderBuffer(config.rob_size, sanitizer=san)
        issue_rng = (
            SplitMix(derive_seed(config.seed, "issue"))
            if config.issue_policy == "random"
            else None
        )

        # Per real instruction (indexed by seq).
        comp: List[Optional[int]] = [None] * n  # known completion cycle
        base_ready: List[int] = [0] * n
        pending: List[int] = [0] * n
        dependents: Dict[int, List[int]] = {}
        if oracle_fast:
            # Oracle annotations are a pure column function of the trace:
            # precompute them all through the packed arrays instead of
            # building one Annotation object per dispatched record.
            annotations: List[Optional[Annotation]] = _oracle_annotations_fn()(
                trace, config
            )
        else:
            annotations = [None] * n
        icache_consumed: List[bool] = [False] * n

        record_timeline = config.record_timeline
        dispatch_cycle = [0] * n if record_timeline else None
        issue_cycle = [0] * n if record_timeline else None
        complete_cycle = [0] * n if record_timeline else None
        commit_cycle = [0] * n if record_timeline else None
        dispatch_of: List[int] = [0] * n  # always needed for events

        # Scheduling structures.
        ready_events: List[Tuple[int, int, int]] = []  # (cycle, ticket, seq)
        ready_now: List[Tuple[int, int]] = []  # (ticket, seq)
        completions: List[Tuple[int, int, int]] = []  # (cycle, ticket, seq)
        squash_at: List[Tuple[int, int]] = []  # (cycle, branch_ticket)
        squashed_tickets: Set[int] = set()
        ghost_class: Dict[int, OpClass] = {}

        events = []
        next_dispatch = 0  # next real seq to dispatch
        next_ticket = 0
        ticket_of: List[int] = [0] * n
        ticket_seq: Dict[int, int] = {}  # ticket -> real seq (ghosts absent)
        window_occ_at: Dict[int, int] = {}
        frontend_ready = config.frontend_depth  # initial fill
        stall_branch: Optional[int] = None  # seq of blocking mispredict
        ghost_cursor = 0
        committed = 0
        cycle = frontend_ready
        last_commit_cycle = 0
        squashed_ghost_count = 0
        ghosts_since_stall = 0  # wrong-path dispatches under the live stall

        def annotation_for(seq: int) -> Annotation:
            ann = annotations[seq]
            if ann is None:
                ann = annotator.annotate(records[seq])
                annotations[seq] = ann
            return ann

        def make_ready(seq: int, ready_at: int) -> None:
            heapq.heappush(ready_events, (ready_at, ticket_of[seq], seq))

        def resolve_dependents(producer: int, done: int) -> None:
            for consumer in dependents.pop(producer, ()):  # dispatched waiters
                base_ready[consumer] = max(base_ready[consumer], done)
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    make_ready(consumer, base_ready[consumer])

        def issue_one(ticket: int, seq: int) -> None:
            nonlocal stall_branch, frontend_ready
            record = records[seq] if seq != _GHOST else None
            op_class = record.op_class if record else ghost_class[ticket]
            done = fus.issue(op_class, cycle)
            if record is not None:
                ann = annotations[seq]
                if record.is_load and ann.dcache_class is not None:
                    done += ann.dcache_latency
                comp[seq] = done
                if record_timeline:
                    issue_cycle[seq] = cycle
                    complete_cycle[seq] = done
                resolve_dependents(seq, done)
                if record.is_load and ann.dcache_class is MissClass.LONG:
                    events.append(
                        LongDMissEvent(
                            seq=seq, cycle=dispatch_of[seq], complete_cycle=done
                        )
                    )
                    if tracer is not None:
                        tracer.miss_span(
                            MissSpan(
                                kind=KIND_LONG_DMISS,
                                seq=seq,
                                dispatch_cycle=dispatch_of[seq],
                                resolve_cycle=done,
                            )
                        )
                    if metrics is not None:
                        m_long_dmiss.inc()
                if stall_branch == seq:
                    # The mispredicted control instruction resolves at
                    # ``done``: log the event, start the refill.
                    events.append(
                        BranchMispredictEvent(
                            seq=seq,
                            cycle=dispatch_of[seq],
                            resolve_cycle=done,
                            refill_cycles=config.frontend_depth,
                            window_occupancy=window_occ_at[seq],
                        )
                    )
                    if tracer is not None:
                        tracer.miss_span(
                            MissSpan(
                                kind=KIND_BPRED,
                                seq=seq,
                                dispatch_cycle=dispatch_of[seq],
                                resolve_cycle=done,
                                refill_cycles=config.frontend_depth,
                                window_occupancy=window_occ_at[seq],
                                wrong_path_instructions=ghosts_since_stall,
                            )
                        )
                    if metrics is not None:
                        m_mispredicts.inc()
                        m_resolution.add(done - dispatch_of[seq])
                        m_penalty.add(
                            done - dispatch_of[seq] + config.frontend_depth
                        )
                    frontend_ready = done + config.frontend_depth
                    stall_branch = None
                    if config.dispatch_wrong_path:
                        heapq.heappush(squash_at, (done, ticket))
            heapq.heappush(completions, (done, ticket, seq))

        while committed < n:
            if clock is not None:
                t_mark = clock()
            # --- completions ---------------------------------------------
            while completions and completions[0][0] <= cycle:
                _, ticket, seq = heapq.heappop(completions)
                if ticket not in squashed_tickets:
                    rob.complete(ticket)

            # --- wrong-path squash ---------------------------------------
            while squash_at and squash_at[0][0] <= cycle:
                _, branch_ticket = heapq.heappop(squash_at)
                for victim in rob.squash_younger_than(branch_ticket):
                    squashed_tickets.add(victim)
                    squashed_ghost_count += 1

            if clock is not None:
                t_now = clock()
                prof.add("core.complete", t_now - t_mark)
                t_mark = t_now
            # --- commit ---------------------------------------------------
            commits = 0
            while commits < config.commit_width and rob.head_completed():
                head_ticket = rob.commit_head()
                commits += 1
                if head_ticket in squashed_tickets:
                    continue
                # Map ticket back: ghosts never reach here (squashed).
                seq = ticket_seq.get(head_ticket, _GHOST)
                if seq == _GHOST:
                    continue
                committed += 1
                last_commit_cycle = cycle
                if san is not None:
                    san.check_commit(cycle, seq=seq)
                if record_timeline:
                    commit_cycle[seq] = cycle

            if clock is not None:
                t_now = clock()
                prof.add("core.commit", t_now - t_mark)
                t_mark = t_now
            # --- dispatch -------------------------------------------------
            dispatched = 0
            while (
                dispatched < config.dispatch_width
                and not rob.is_full
                and next_dispatch < n
                and frontend_ready <= cycle
                and stall_branch is None
            ):
                seq = next_dispatch
                ann = annotation_for(seq)
                if ann.icache_latency is not None and not icache_consumed[seq]:
                    icache_consumed[seq] = True
                    frontend_ready = cycle + ann.icache_latency
                    events.append(
                        ICacheMissEvent(
                            seq=seq,
                            cycle=cycle,
                            latency=ann.icache_latency,
                            long_miss=ann.icache_long,
                        )
                    )
                    if tracer is not None:
                        tracer.miss_span(
                            MissSpan(
                                kind=KIND_ICACHE,
                                seq=seq,
                                dispatch_cycle=cycle,
                                resolve_cycle=cycle + ann.icache_latency,
                            )
                        )
                    if metrics is not None:
                        m_icache.inc()
                    break
                record = records[seq]
                occupancy_before = len(rob)
                ticket = next_ticket
                next_ticket += 1
                ticket_of[seq] = ticket
                ticket_seq[ticket] = seq
                rob.dispatch(ticket)
                if san is not None:
                    san.check_occupancy(cycle, len(rob), config.rob_size)
                dispatch_of[seq] = cycle
                if record_timeline:
                    dispatch_cycle[seq] = cycle
                # Dependence resolution.
                unresolved = 0
                ready_at = cycle + 1
                for dist in record.deps:
                    producer = seq - dist
                    if producer < 0:
                        continue
                    producer_done = comp[producer]
                    if producer_done is None:
                        dependents.setdefault(producer, []).append(seq)
                        unresolved += 1
                    else:
                        ready_at = max(ready_at, producer_done)
                base_ready[seq] = ready_at
                pending[seq] = unresolved
                if unresolved == 0:
                    make_ready(seq, ready_at)
                next_dispatch += 1
                dispatched += 1
                if record.is_control and ann.mispredicted:
                    stall_branch = seq
                    window_occ_at[seq] = occupancy_before
                    ghosts_since_stall = 0
                    break

            # --- wrong-path ghost dispatch --------------------------------
            if (
                config.dispatch_wrong_path
                and stall_branch is not None
                and n > 0
            ):
                while dispatched < config.dispatch_width and not rob.is_full:
                    source = records[ghost_cursor % n]
                    ghost_cursor += 1
                    ticket = next_ticket
                    next_ticket += 1
                    ghost_class[ticket] = source.op_class
                    rob.dispatch(ticket)
                    if san is not None:
                        san.check_occupancy(cycle, len(rob), config.rob_size)
                    heapq.heappush(ready_events, (cycle + 1, ticket, _GHOST))
                    dispatched += 1
                    ghosts_since_stall += 1

            if clock is not None:
                t_now = clock()
                prof.add("core.dispatch", t_now - t_mark)
                t_mark = t_now
            # --- wakeup ----------------------------------------------------
            while ready_events and ready_events[0][0] <= cycle:
                _, ticket, seq = heapq.heappop(ready_events)
                if ticket in squashed_tickets:
                    continue
                heapq.heappush(ready_now, (ticket, seq))

            # --- issue -----------------------------------------------------
            issued = 0
            deferred: List[Tuple[int, int]] = []
            if issue_rng is not None and ready_now:
                # Random-ready ablation: shuffle the whole ready pool
                # instead of selecting oldest-first.
                pool = [
                    item for item in ready_now if item[0] not in squashed_tickets
                ]
                ready_now.clear()
                issue_rng.shuffle(pool)
                for ticket, seq in pool:
                    op_class = (
                        records[seq].op_class
                        if seq != _GHOST
                        else ghost_class[ticket]
                    )
                    if issued < config.issue_width and fus.can_issue(
                        op_class, cycle
                    ):
                        issue_one(ticket, seq)
                        issued += 1
                    else:
                        deferred.append((ticket, seq))
            else:
                while ready_now and issued < config.issue_width:
                    ticket, seq = heapq.heappop(ready_now)
                    if ticket in squashed_tickets:
                        continue
                    op_class = (
                        records[seq].op_class
                        if seq != _GHOST
                        else ghost_class[ticket]
                    )
                    if fus.can_issue(op_class, cycle):
                        issue_one(ticket, seq)
                        issued += 1
                    else:
                        deferred.append((ticket, seq))
            for item in deferred:
                heapq.heappush(ready_now, item)
            if clock is not None:
                prof.add("core.issue", clock() - t_mark)

            # --- advance time ----------------------------------------------
            next_cycles = []
            if completions:
                next_cycles.append(completions[0][0])
            if ready_events:
                next_cycles.append(ready_events[0][0])
            if squash_at:
                next_cycles.append(squash_at[0][0])
            if ready_now:
                next_cycles.append(cycle + 1)
            if rob.head_completed():
                next_cycles.append(cycle + 1)
            can_dispatch_more = (
                next_dispatch < n and stall_branch is None and not rob.is_full
            )
            if can_dispatch_more:
                next_cycles.append(max(cycle + 1, frontend_ready))
            if (
                config.dispatch_wrong_path
                and stall_branch is not None
                and not rob.is_full
            ):
                next_cycles.append(cycle + 1)
            if not next_cycles:
                if committed < n:
                    raise RuntimeError(
                        f"simulator deadlock at cycle {cycle}: "
                        f"{committed}/{n} committed"
                    )
                break
            cycle = max(cycle + 1, min(next_cycles))

        total_cycles = last_commit_cycle + 1
        result = SimulationResult(
            instructions=n,
            cycles=total_cycles,
            events=events,
            dispatch_cycle=dispatch_cycle,
            issue_cycle=issue_cycle,
            complete_cycle=complete_cycle,
            commit_cycle=commit_cycle,
            fu_issue_counts=fus.issue_counts(),
            rob_peak_occupancy=rob.peak_occupancy,
            squashed_ghosts=squashed_ghost_count,
        )
        if metrics is not None:
            metrics.counter("core.instructions_total").inc(n)
            metrics.counter("core.cycles_total").inc(total_cycles)
            metrics.counter("core.wrongpath_squashed_total").inc(
                squashed_ghost_count
            )
            metrics.gauge("core.rob_occupancy_peak").set_max(rob.peak_occupancy)
        if san is not None:
            san.seal_run(result, config)
        return result


def simulate(
    trace: Trace,
    config: Optional[CoreConfig] = None,
    annotator: Optional[Annotator] = None,
) -> SimulationResult:
    """Convenience wrapper: run ``trace`` on a fresh core."""
    return SuperscalarCore(config).run(trace, annotator=annotator)
