"""Functional-unit pools with per-class latency and occupancy."""

from __future__ import annotations

import heapq
from typing import Dict, List

from repro.isa.opcodes import OpClass
from repro.pipeline.config import FUSpec


class FunctionalUnitPool:
    """A pool of identical units for one op class.

    Each unit is represented by the cycle at which it can next accept
    an operation; a min-heap yields the earliest-free unit. Fully
    pipelined units (issue_interval == 1) accept one op per cycle per
    unit; unpipelined units block for the full latency.
    """

    def __init__(self, spec: FUSpec):
        self.spec = spec
        self._free_at: List[int] = [0] * spec.count
        heapq.heapify(self._free_at)
        self.issued = 0
        self.busy_cycles = 0

    def can_issue(self, cycle: int) -> bool:
        """True when some unit can accept an op at ``cycle``."""
        return self._free_at[0] <= cycle

    def issue(self, cycle: int) -> int:
        """Reserve a unit at ``cycle``; return the completion cycle.

        Caller must have checked :meth:`can_issue`.
        """
        earliest = heapq.heappop(self._free_at)
        if earliest > cycle:
            heapq.heappush(self._free_at, earliest)
            raise RuntimeError(
                f"no {self.spec} unit free at cycle {cycle} (next {earliest})"
            )
        heapq.heappush(self._free_at, cycle + self.spec.issue_interval)
        self.issued += 1
        self.busy_cycles += self.spec.issue_interval
        return cycle + self.spec.latency

    @property
    def utilization_cycles(self) -> int:
        return self.busy_cycles


class FunctionalUnits:
    """All pools of the machine, indexed by op class."""

    def __init__(self, specs: Dict[OpClass, FUSpec]):
        self.pools: Dict[OpClass, FunctionalUnitPool] = {
            op_class: FunctionalUnitPool(spec) for op_class, spec in specs.items()
        }

    def can_issue(self, op_class: OpClass, cycle: int) -> bool:
        return self.pools[op_class].can_issue(cycle)

    def issue(self, op_class: OpClass, cycle: int) -> int:
        """Reserve a unit; returns the op's completion cycle."""
        return self.pools[op_class].issue(cycle)

    def latency(self, op_class: OpClass) -> int:
        return self.pools[op_class].spec.latency

    def issue_counts(self) -> Dict[str, int]:
        return {
            op_class.value: pool.issued for op_class, pool in self.pools.items()
        }
