"""Annotation sources: where miss outcomes come from.

The core consults an :class:`Annotator` once per dispatched record to
learn (a) whether a control instruction mispredicted, (b) whether the
fetch of this instruction missed the I-cache and for how long, and
(c) the data-cache outcome of a load or store.

``OracleAnnotator`` reads the flags already carried by synthetic
(annotated) traces; ``StructuralAnnotator`` drives the real branch
predictor and cache hierarchy substrates.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.frontend.base import BranchUnit
from repro.memory.hierarchy import CacheHierarchy, MissClass
from repro.pipeline.config import CoreConfig
from repro.trace.record import TraceRecord


@dataclass(frozen=True)
class Annotation:
    """Resolved miss outcomes for one dynamic instruction.

    ``icache_latency`` is None when the fetch hit; ``dcache_class`` is
    None for non-memory instructions.
    """

    mispredicted: bool = False
    icache_latency: Optional[int] = None
    icache_long: bool = False
    dcache_class: Optional[MissClass] = None
    dcache_latency: int = 0


class Annotator(abc.ABC):
    """Produces an :class:`Annotation` per dispatched record."""

    @abc.abstractmethod
    def annotate(self, record: TraceRecord) -> Annotation:
        """Resolve miss outcomes for ``record``."""


class OracleAnnotator(Annotator):
    """Honours the oracle flags carried by annotated (synthetic) traces.

    Records without flags (None) are treated as hits / correct
    predictions — an un-annotated trace run through this annotator
    executes with a perfect frontend and memory system.
    """

    def __init__(self, config: CoreConfig):
        self.config = config

    def annotate(self, record: TraceRecord) -> Annotation:
        config = self.config
        icache_latency = None
        if record.il1_miss:
            icache_latency = config.l2_latency
        dcache_class: Optional[MissClass] = None
        dcache_latency = 0
        if record.is_memory:
            if record.dl2_miss:
                dcache_class = MissClass.LONG
            elif record.dl1_miss:
                dcache_class = MissClass.SHORT
            else:
                dcache_class = MissClass.L1_HIT
            dcache_latency = config.load_latency(dcache_class.value)
        # Any control instruction can mispredict: conditional branches
        # on direction, jumps on target (BTB miss) — both flush.
        mispredicted = bool(record.mispredict) and record.op_class.is_control
        return Annotation(
            mispredicted=mispredicted,
            icache_latency=icache_latency,
            icache_long=False,
            dcache_class=dcache_class,
            dcache_latency=dcache_latency,
        )


class StructuralAnnotator(Annotator):
    """Derives miss outcomes from predictor and cache substrates.

    The I-cache is consulted once per fetched cache line (consecutive
    records on the same line share the fetch). Conditional branches go
    through the branch unit (direction predictor + BTB); unconditional
    jumps only check the BTB.
    """

    def __init__(
        self,
        config: CoreConfig,
        branch_unit: BranchUnit,
        hierarchy: CacheHierarchy,
    ):
        self.config = config
        self.branch_unit = branch_unit
        self.hierarchy = hierarchy
        self._last_fetch_line: Optional[int] = None

    def annotate(self, record: TraceRecord) -> Annotation:
        line_bytes = self.hierarchy.config.line_bytes
        fetch_line = record.pc // line_bytes
        icache_latency = None
        icache_long = False
        if fetch_line != self._last_fetch_line:
            outcome = self.hierarchy.access_instruction(record.pc)
            self._last_fetch_line = fetch_line
            if outcome.miss_class is not MissClass.L1_HIT:
                icache_latency = outcome.latency
                icache_long = outcome.miss_class is MissClass.LONG

        mispredicted = False
        if record.is_branch:
            mispredicted = self.branch_unit.resolve_branch(
                record.pc, record.taken, record.target
            )
        elif record.op_class.is_control:
            mispredicted = self.branch_unit.resolve_jump(record.pc, record.target)

        dcache_class: Optional[MissClass] = None
        dcache_latency = 0
        if record.is_memory:
            outcome = self.hierarchy.access_data(
                record.mem_addr, is_write=record.is_store, pc=record.pc
            )
            dcache_class = outcome.miss_class
            dcache_latency = outcome.latency
        return Annotation(
            mispredicted=mispredicted,
            icache_latency=icache_latency,
            icache_long=icache_long,
            dcache_class=dcache_class,
            dcache_latency=dcache_latency,
        )
