"""A small RISC-style ISA used to write microbenchmark kernels.

The ISA exists so that the simulator can be driven by *real* dynamic
instruction streams (produced by :mod:`repro.trace.functional`) in
addition to the statistical synthetic streams used for the SPEC-like
characterizations. It is deliberately minimal: a flat 32+32 register
file, word-granularity loads/stores, and a handful of integer, floating
point, branch and jump operations — enough to express loops, pointer
chases, reductions and branchy control flow.
"""

from repro.isa.registers import (
    FP_REGISTER_COUNT,
    INT_REGISTER_COUNT,
    REG_ZERO,
    Register,
    RegisterFile,
    fp_reg,
    int_reg,
)
from repro.isa.opcodes import Opcode, OpClass, OPCODE_INFO, OpcodeInfo
from repro.isa.instruction import Instruction
from repro.isa.program import Program
from repro.isa.assembler import AssemblyError, assemble, disassemble
from repro.isa.encoding import DecodeError, decode_instruction, encode_instruction

__all__ = [
    "FP_REGISTER_COUNT",
    "INT_REGISTER_COUNT",
    "REG_ZERO",
    "Register",
    "RegisterFile",
    "fp_reg",
    "int_reg",
    "Opcode",
    "OpClass",
    "OPCODE_INFO",
    "OpcodeInfo",
    "Instruction",
    "Program",
    "AssemblyError",
    "assemble",
    "disassemble",
    "DecodeError",
    "decode_instruction",
    "encode_instruction",
]
