"""Fixed-width binary encoding of instructions.

Each instruction encodes to 12 bytes (little-endian):

==========  =====  ==========================================
bytes       field  meaning
==========  =====  ==========================================
0           op     opcode ordinal (enum definition order)
1           dest   dest register index + 1 (0 means none)
2           src1   first source register index + 1 (0 = none)
3           src2   second source register index + 1 (0 = none)
4..7        imm    signed 32-bit immediate / displacement
8..11       tgt    signed 32-bit branch target index (-1 = none)
==========  =====  ==========================================

Label names are not preserved — targets are resolved indices, which is
all the simulator needs. Round-tripping a resolved program is lossless
modulo label names.
"""

from __future__ import annotations

import struct
from typing import List

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode
from repro.isa.program import Program
from repro.isa.registers import Register

ENCODED_SIZE = 12
_STRUCT = struct.Struct("<BBBBii")
_OPCODES = list(Opcode)
_ORDINAL = {opcode: i for i, opcode in enumerate(_OPCODES)}


class DecodeError(ValueError):
    """Raised when a byte string is not a valid encoded instruction."""


def encode_instruction(inst: Instruction) -> bytes:
    """Encode one instruction to its 12-byte form."""
    if len(inst.sources) > 2:
        raise ValueError(f"cannot encode {len(inst.sources)} sources")
    dest = inst.dest.index + 1 if inst.dest is not None else 0
    src1 = inst.sources[0].index + 1 if len(inst.sources) >= 1 else 0
    src2 = inst.sources[1].index + 1 if len(inst.sources) >= 2 else 0
    target = inst.target if inst.target is not None else -1
    return _STRUCT.pack(_ORDINAL[inst.opcode], dest, src1, src2, inst.imm, target)


def decode_instruction(data: bytes) -> Instruction:
    """Decode a 12-byte form back into an :class:`Instruction`."""
    if len(data) != ENCODED_SIZE:
        raise DecodeError(f"expected {ENCODED_SIZE} bytes, got {len(data)}")
    op_ord, dest, src1, src2, imm, target = _STRUCT.unpack(data)
    if op_ord >= len(_OPCODES):
        raise DecodeError(f"bad opcode ordinal: {op_ord}")
    try:
        sources = tuple(
            Register(code - 1) for code in (src1, src2) if code
        )
        dest_reg = Register(dest - 1) if dest else None
    except ValueError as exc:
        raise DecodeError(str(exc)) from None
    return Instruction(
        opcode=_OPCODES[op_ord],
        dest=dest_reg,
        sources=sources,
        imm=imm,
        target=target if target >= 0 else None,
    )


def encode_program(program: Program) -> bytes:
    """Encode a resolved program to a flat byte string."""
    return b"".join(encode_instruction(inst) for inst in program.instructions)


def decode_program(data: bytes, name: str = "program") -> Program:
    """Decode a flat byte string back into a program (labels are lost)."""
    if len(data) % ENCODED_SIZE:
        raise DecodeError(
            f"byte length {len(data)} is not a multiple of {ENCODED_SIZE}"
        )
    instructions: List[Instruction] = [
        decode_instruction(data[i : i + ENCODED_SIZE])
        for i in range(0, len(data), ENCODED_SIZE)
    ]
    program = Program(instructions=instructions, name=name)
    program.validate()
    return program
