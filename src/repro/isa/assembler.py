"""Two-pass assembler and disassembler for the kernel ISA.

Syntax, one instruction per line::

    loop:                     ; labels end with a colon
        ld   r3, 8(r2)        # comments start with '#' or ';'
        addi r2, r2, 8
        add  r4, r4, r3
        bne  r2, r5, loop
        halt

The first pass collects labels; the second parses operands and resolves
branch targets to instruction indices.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode, lookup_mnemonic
from repro.isa.program import Program
from repro.isa.registers import Register, int_reg

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")
_LABEL_DEF = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*):$")


class AssemblyError(ValueError):
    """Raised for any syntax or semantic error, with line information."""

    def __init__(self, line_no: int, message: str):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def _strip(line: str) -> str:
    for marker in ("#", ";"):
        pos = line.find(marker)
        if pos >= 0:
            line = line[:pos]
    return line.strip()


def _parse_imm(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblyError(line_no, f"bad immediate: {token!r}") from None


def _parse_reg(token: str, line_no: int) -> Register:
    try:
        return Register.parse(token)
    except ValueError as exc:
        raise AssemblyError(line_no, str(exc)) from None


def _split_operands(rest: str) -> List[str]:
    return [tok.strip() for tok in rest.split(",") if tok.strip()]


def _parse_line(
    mnemonic: str, operands: List[str], line_no: int
) -> Instruction:
    try:
        info = lookup_mnemonic(mnemonic)
    except KeyError:
        raise AssemblyError(line_no, f"unknown mnemonic: {mnemonic!r}") from None
    fmt = info.fmt

    def need(n: int) -> None:
        if len(operands) != n:
            raise AssemblyError(
                line_no,
                f"{mnemonic} expects {n} operand(s), got {len(operands)}",
            )

    if fmt == "rrr":
        need(3)
        return Instruction(
            opcode=info.opcode,
            dest=_parse_reg(operands[0], line_no),
            sources=(
                _parse_reg(operands[1], line_no),
                _parse_reg(operands[2], line_no),
            ),
        )
    if fmt == "rri":
        need(3)
        return Instruction(
            opcode=info.opcode,
            dest=_parse_reg(operands[0], line_no),
            sources=(_parse_reg(operands[1], line_no),),
            imm=_parse_imm(operands[2], line_no),
        )
    if fmt == "ri":
        need(2)
        imm: float
        if info.opcode is Opcode.FMOV:
            try:
                imm = int(float(operands[1]))
            except ValueError:
                raise AssemblyError(
                    line_no, f"bad fp immediate: {operands[1]!r}"
                ) from None
        else:
            imm = _parse_imm(operands[1], line_no)
        return Instruction(
            opcode=info.opcode,
            dest=_parse_reg(operands[0], line_no),
            imm=int(imm),
        )
    if fmt == "mem":
        need(2)
        match = _MEM_OPERAND.match(operands[1].replace(" ", ""))
        if not match:
            raise AssemblyError(
                line_no, f"bad memory operand: {operands[1]!r} (want imm(reg))"
            )
        disp = _parse_imm(match.group(1), line_no)
        base = _parse_reg(match.group(2), line_no)
        value_reg = _parse_reg(operands[0], line_no)
        if info.is_store:
            return Instruction(
                opcode=info.opcode, sources=(base, value_reg), imm=disp
            )
        return Instruction(opcode=info.opcode, dest=value_reg, sources=(base,), imm=disp)
    if fmt == "brr":
        need(3)
        return Instruction(
            opcode=info.opcode,
            sources=(
                _parse_reg(operands[0], line_no),
                _parse_reg(operands[1], line_no),
            ),
            label=operands[2],
        )
    if fmt == "br":
        need(2)
        return Instruction(
            opcode=info.opcode,
            sources=(_parse_reg(operands[0], line_no),),
            label=operands[1],
        )
    if fmt == "j":
        need(1)
        dest = int_reg(1) if info.opcode is Opcode.JAL else None
        return Instruction(opcode=info.opcode, dest=dest, label=operands[0])
    if fmt == "jr":
        need(1)
        return Instruction(
            opcode=info.opcode, sources=(_parse_reg(operands[0], line_no),)
        )
    if fmt == "none":
        need(0)
        return Instruction(opcode=info.opcode)
    raise AssemblyError(line_no, f"unhandled format {fmt!r}")


def assemble(text: str, name: str = "program", base_address: int = 0x1000) -> Program:
    """Assemble source text into a validated :class:`Program`."""
    lines = text.splitlines()
    labels = {}
    parsed: List[Tuple[int, str, List[str]]] = []
    # Pass 1: collect labels, record instruction lines.
    for line_no, raw in enumerate(lines, start=1):
        line = _strip(raw)
        if not line:
            continue
        # Allow "label: instr" on one line.
        while True:
            match = re.match(r"^([A-Za-z_][A-Za-z0-9_]*):\s*(.*)$", line)
            if not match:
                break
            label = match.group(1)
            if label in labels:
                raise AssemblyError(line_no, f"duplicate label: {label!r}")
            labels[label] = len(parsed)
            line = match.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        parsed.append((line_no, mnemonic, operands))

    # Pass 2: parse operands.
    program = Program(labels=labels, base_address=base_address, name=name)
    for line_no, mnemonic, operands in parsed:
        program.instructions.append(_parse_line(mnemonic, operands, line_no))
    try:
        program.resolve_labels()
    except KeyError as exc:
        raise AssemblyError(0, str(exc.args[0])) from None
    program.validate()
    return program


def disassemble(inst: Instruction, target_label: Optional[str] = None) -> str:
    """Render one instruction back to assembly text."""
    info = inst.info
    mnemonic = info.mnemonic
    fmt = info.fmt
    label = target_label or inst.label or (
        f"@{inst.target}" if inst.target is not None else "?"
    )
    if fmt == "rrr":
        return f"{mnemonic} {inst.dest}, {inst.sources[0]}, {inst.sources[1]}"
    if fmt == "rri":
        return f"{mnemonic} {inst.dest}, {inst.sources[0]}, {inst.imm}"
    if fmt == "ri":
        return f"{mnemonic} {inst.dest}, {inst.imm}"
    if fmt == "mem":
        if info.is_store:
            base, value = inst.sources
            return f"{mnemonic} {value}, {inst.imm}({base})"
        return f"{mnemonic} {inst.dest}, {inst.imm}({inst.sources[0]})"
    if fmt == "brr":
        return f"{mnemonic} {inst.sources[0]}, {inst.sources[1]}, {label}"
    if fmt == "br":
        return f"{mnemonic} {inst.sources[0]}, {label}"
    if fmt == "j":
        return f"{mnemonic} {label}"
    if fmt == "jr":
        return f"{mnemonic} {inst.sources[0]}"
    return mnemonic


def disassemble_program(program: Program) -> str:
    """Render a whole program, reconstructing label definitions."""
    labels_by_index = {}
    for label, index in program.labels.items():
        labels_by_index.setdefault(index, []).append(label)
    index_to_label = {
        index: names[0] for index, names in labels_by_index.items()
    }
    lines = []
    for i, inst in enumerate(program.instructions):
        for label in labels_by_index.get(i, []):
            lines.append(f"{label}:")
        target_label = (
            index_to_label.get(inst.target) if inst.target is not None else None
        )
        lines.append("    " + disassemble(inst, target_label=target_label))
    return "\n".join(lines)
