"""Program container: an ordered list of instructions plus label table."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Opcode


@dataclass
class Program:
    """An assembled program.

    Instruction addresses are byte addresses: instruction ``i`` lives at
    ``base_address + 4 * i``. Labels map to instruction indices.
    """

    instructions: List[Instruction] = field(default_factory=list)
    labels: Dict[str, int] = field(default_factory=dict)
    base_address: int = 0x1000
    name: str = "program"

    INSTRUCTION_BYTES = 4

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    def address_of(self, index: int) -> int:
        """Byte address of instruction ``index``."""
        if not 0 <= index < len(self.instructions):
            raise IndexError(f"instruction index out of range: {index}")
        return self.base_address + self.INSTRUCTION_BYTES * index

    def index_of_address(self, address: int) -> int:
        """Instruction index for a byte address."""
        offset = address - self.base_address
        if offset % self.INSTRUCTION_BYTES:
            raise ValueError(f"misaligned instruction address: {address:#x}")
        index = offset // self.INSTRUCTION_BYTES
        if not 0 <= index < len(self.instructions):
            raise ValueError(f"address outside program: {address:#x}")
        return index

    def label_address(self, label: str) -> int:
        """Byte address of a label."""
        return self.address_of(self.labels[label])

    def resolve_labels(self) -> None:
        """Fill in ``target`` indices for label-bearing control flow."""
        resolved: List[Instruction] = []
        for inst in self.instructions:
            if inst.label is not None and inst.target is None:
                if inst.label not in self.labels:
                    raise KeyError(f"undefined label: {inst.label!r}")
                resolved.append(
                    Instruction(
                        opcode=inst.opcode,
                        dest=inst.dest,
                        sources=inst.sources,
                        imm=inst.imm,
                        target=self.labels[inst.label],
                        label=inst.label,
                    )
                )
            else:
                resolved.append(inst)
        self.instructions = resolved

    def validate(self) -> None:
        """Validate every instruction and every control-flow target."""
        for i, inst in enumerate(self.instructions):
            try:
                inst.validate()
            except ValueError as exc:
                raise ValueError(f"instruction {i}: {exc}") from exc
            if inst.target is not None and not 0 <= inst.target < len(
                self.instructions
            ):
                raise ValueError(
                    f"instruction {i}: branch target {inst.target} out of range"
                )

    def static_mix(self) -> Dict[str, int]:
        """Static instruction mix by op class (for reporting)."""
        mix: Dict[str, int] = {}
        for inst in self.instructions:
            key = inst.op_class.value
            mix[key] = mix.get(key, 0) + 1
        return mix

    def find_halt(self) -> Optional[int]:
        """Return the index of the first HALT, if any."""
        for i, inst in enumerate(self.instructions):
            if inst.opcode is Opcode.HALT:
                return i
        return None
