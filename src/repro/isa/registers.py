"""Register model: 32 integer registers and 32 floating-point registers.

Registers are identified by small integers: 0..31 are the integer
registers ``r0``..``r31`` (``r0`` is hardwired to zero, as in MIPS and
RISC-V), and 32..63 are the floating point registers ``f0``..``f31``.
A thin :class:`Register` wrapper keeps the integer/FP distinction
explicit in instruction operands.
"""

from __future__ import annotations

from dataclasses import dataclass

INT_REGISTER_COUNT = 32
FP_REGISTER_COUNT = 32

_ALIASES = {"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4}
_ALIAS_BY_INDEX = {index: name for name, index in _ALIASES.items()}


@dataclass(frozen=True, order=True)
class Register:
    """A register operand; ``index`` spans both banks (0..63)."""

    index: int

    def __post_init__(self) -> None:
        if not 0 <= self.index < INT_REGISTER_COUNT + FP_REGISTER_COUNT:
            raise ValueError(f"register index out of range: {self.index}")

    @property
    def is_fp(self) -> bool:
        return self.index >= INT_REGISTER_COUNT

    @property
    def bank_index(self) -> int:
        """Index within the register's own bank (0..31)."""
        if self.is_fp:
            return self.index - INT_REGISTER_COUNT
        return self.index

    @property
    def name(self) -> str:
        if self.is_fp:
            return f"f{self.bank_index}"
        return f"r{self.bank_index}"

    def __str__(self) -> str:
        return self.name

    @classmethod
    def parse(cls, text: str) -> "Register":
        """Parse ``r<k>``, ``f<k>`` or an alias such as ``zero``."""
        token = text.strip().lower()
        if token in _ALIASES:
            return cls(_ALIASES[token])
        if len(token) >= 2 and token[0] in ("r", "f") and token[1:].isdigit():
            bank_index = int(token[1:])
            if bank_index >= INT_REGISTER_COUNT:
                raise ValueError(f"register number out of range: {text!r}")
            if token[0] == "f":
                return cls(INT_REGISTER_COUNT + bank_index)
            return cls(bank_index)
        raise ValueError(f"not a register: {text!r}")


REG_ZERO = Register(0)


def int_reg(bank_index: int) -> Register:
    """Integer register ``r<bank_index>``."""
    if not 0 <= bank_index < INT_REGISTER_COUNT:
        raise ValueError(f"integer register out of range: {bank_index}")
    return Register(bank_index)


def fp_reg(bank_index: int) -> Register:
    """Floating point register ``f<bank_index>``."""
    if not 0 <= bank_index < FP_REGISTER_COUNT:
        raise ValueError(f"fp register out of range: {bank_index}")
    return Register(INT_REGISTER_COUNT + bank_index)


class RegisterFile:
    """Architectural register state for the functional executor.

    Integer registers hold Python ints (wrapped to 64-bit two's
    complement on write); FP registers hold floats. Reads of ``r0``
    always return zero and writes to it are discarded.
    """

    _INT_MASK = (1 << 64) - 1

    def __init__(self) -> None:
        self._int = [0] * INT_REGISTER_COUNT
        self._fp = [0.0] * FP_REGISTER_COUNT

    @staticmethod
    def _wrap(value: int) -> int:
        value &= RegisterFile._INT_MASK
        if value >= 1 << 63:
            value -= 1 << 64
        return value

    def read(self, reg: Register) -> float:
        if reg.is_fp:
            return self._fp[reg.bank_index]
        if reg.index == 0:
            return 0
        return self._int[reg.bank_index]

    def write(self, reg: Register, value: float) -> None:
        if reg.is_fp:
            self._fp[reg.bank_index] = float(value)
        elif reg.index != 0:
            self._int[reg.bank_index] = self._wrap(int(value))

    def snapshot(self) -> dict:
        """Return a name->value dict of all non-zero registers."""
        state = {}
        for i, value in enumerate(self._int):
            if value and i != 0:
                state[f"r{i}"] = value
        for i, value in enumerate(self._fp):
            if value:
                state[f"f{i}"] = value
        return state
