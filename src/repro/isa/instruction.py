"""Static instruction representation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.isa.opcodes import Opcode, OpcodeInfo, OpClass, OPCODE_INFO
from repro.isa.registers import Register


@dataclass(frozen=True)
class Instruction:
    """One static instruction.

    ``dest`` is the written register (None for stores, branches, jumps
    without link and NOPs). ``sources`` are the read registers in operand
    order — for memory operations the base register; for stores also the
    value register. ``imm`` holds the immediate (or memory displacement)
    and ``target`` the resolved branch/jump target as an instruction
    index within the program (filled in by the assembler).
    """

    opcode: Opcode
    dest: Optional[Register] = None
    sources: Tuple[Register, ...] = ()
    imm: int = 0
    target: Optional[int] = None
    label: Optional[str] = None

    @property
    def info(self) -> OpcodeInfo:
        return OPCODE_INFO[self.opcode]

    @property
    def op_class(self) -> OpClass:
        return self.info.op_class

    @property
    def is_branch(self) -> bool:
        return self.info.is_branch

    @property
    def is_control(self) -> bool:
        return self.info.is_control

    @property
    def is_load(self) -> bool:
        return self.info.is_load

    @property
    def is_store(self) -> bool:
        return self.info.is_store

    def __str__(self) -> str:
        from repro.isa.assembler import disassemble

        return disassemble(self)

    def validate(self) -> None:
        """Check operand shape against the opcode's format.

        Raises ValueError when the operand count does not match, a dest
        is missing where one is required, or a branch lacks a target.
        """
        fmt = self.info.fmt
        expected_sources = {
            "rrr": 2,
            "rri": 1,
            "ri": 0,
            "brr": 2,
            "br": 1,
            "j": 0,
            "jr": 1,
            "none": 0,
        }
        if fmt == "mem":
            expected = 2 if self.info.is_store else 1
        else:
            expected = expected_sources[fmt]
        if len(self.sources) != expected:
            raise ValueError(
                f"{self.opcode.value}: expected {expected} source registers, "
                f"got {len(self.sources)}"
            )
        needs_dest = fmt in ("rrr", "rri", "ri") or (
            fmt == "mem" and self.info.is_load
        )
        if needs_dest and self.dest is None:
            raise ValueError(f"{self.opcode.value}: missing destination register")
        if not needs_dest and self.dest is not None and self.opcode is not Opcode.JAL:
            raise ValueError(f"{self.opcode.value}: unexpected destination register")
        if self.is_control and self.info.fmt in ("brr", "br", "j"):
            if self.target is None and self.label is None:
                raise ValueError(f"{self.opcode.value}: branch without target")
