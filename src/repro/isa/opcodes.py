"""Opcode definitions and per-opcode metadata.

Each opcode carries an :class:`OpClass` that the timing simulator maps to
a functional-unit pool and an execution latency, plus an operand *format*
string the assembler uses to parse and print instructions.

Formats
-------
``rrr``   three registers: ``op rd, rs1, rs2``
``rri``   two registers + immediate: ``op rd, rs1, imm``
``ri``    register + immediate: ``op rd, imm``
``mem``   memory form: ``op rd, imm(rs1)`` (rd is the value register)
``brr``   branch on two registers: ``op rs1, rs2, label``
``br``    branch on one register: ``op rs1, label``
``j``     unconditional jump: ``op label``
``jr``    indirect jump: ``op rs1``
``none``  no operands
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Functional classes; the timing model assigns latencies per class."""

    IALU = "ialu"
    IMUL = "imul"
    IDIV = "idiv"
    FADD = "fadd"
    FMUL = "fmul"
    FDIV = "fdiv"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    JUMP = "jump"
    NOP = "nop"

    @property
    def is_memory(self) -> bool:
        return self in (OpClass.LOAD, OpClass.STORE)

    @property
    def is_control(self) -> bool:
        return self in (OpClass.BRANCH, OpClass.JUMP)


class Opcode(enum.Enum):
    """All opcodes in the ISA."""

    # Integer ALU, register-register.
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SLL = "sll"
    SRL = "srl"
    SLT = "slt"
    # Integer ALU, register-immediate.
    ADDI = "addi"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    SLTI = "slti"
    LI = "li"
    # Long-latency integer.
    MUL = "mul"
    DIV = "div"
    REM = "rem"
    # Floating point.
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FMOV = "fmov"
    # Memory.
    LD = "ld"
    ST = "st"
    FLD = "fld"
    FST = "fst"
    # Control.
    BEQ = "beq"
    BNE = "bne"
    BLT = "blt"
    BGE = "bge"
    BEQZ = "beqz"
    BNEZ = "bnez"
    J = "j"
    JAL = "jal"
    JR = "jr"
    # Misc.
    NOP = "nop"
    HALT = "halt"


@dataclass(frozen=True)
class OpcodeInfo:
    """Static metadata for one opcode."""

    opcode: Opcode
    op_class: OpClass
    fmt: str

    @property
    def mnemonic(self) -> str:
        return self.opcode.value

    @property
    def writes_dest(self) -> bool:
        return self.fmt in ("rrr", "rri", "ri", "mem") and self.op_class not in (
            OpClass.STORE,
        )

    @property
    def is_branch(self) -> bool:
        return self.op_class is OpClass.BRANCH

    @property
    def is_jump(self) -> bool:
        return self.op_class is OpClass.JUMP

    @property
    def is_control(self) -> bool:
        return self.op_class.is_control

    @property
    def is_load(self) -> bool:
        return self.op_class is OpClass.LOAD

    @property
    def is_store(self) -> bool:
        return self.op_class is OpClass.STORE


def _info(opcode: Opcode, op_class: OpClass, fmt: str) -> OpcodeInfo:
    return OpcodeInfo(opcode=opcode, op_class=op_class, fmt=fmt)


OPCODE_INFO = {
    Opcode.ADD: _info(Opcode.ADD, OpClass.IALU, "rrr"),
    Opcode.SUB: _info(Opcode.SUB, OpClass.IALU, "rrr"),
    Opcode.AND: _info(Opcode.AND, OpClass.IALU, "rrr"),
    Opcode.OR: _info(Opcode.OR, OpClass.IALU, "rrr"),
    Opcode.XOR: _info(Opcode.XOR, OpClass.IALU, "rrr"),
    Opcode.SLL: _info(Opcode.SLL, OpClass.IALU, "rrr"),
    Opcode.SRL: _info(Opcode.SRL, OpClass.IALU, "rrr"),
    Opcode.SLT: _info(Opcode.SLT, OpClass.IALU, "rrr"),
    Opcode.ADDI: _info(Opcode.ADDI, OpClass.IALU, "rri"),
    Opcode.ANDI: _info(Opcode.ANDI, OpClass.IALU, "rri"),
    Opcode.ORI: _info(Opcode.ORI, OpClass.IALU, "rri"),
    Opcode.XORI: _info(Opcode.XORI, OpClass.IALU, "rri"),
    Opcode.SLTI: _info(Opcode.SLTI, OpClass.IALU, "rri"),
    Opcode.LI: _info(Opcode.LI, OpClass.IALU, "ri"),
    Opcode.MUL: _info(Opcode.MUL, OpClass.IMUL, "rrr"),
    Opcode.DIV: _info(Opcode.DIV, OpClass.IDIV, "rrr"),
    Opcode.REM: _info(Opcode.REM, OpClass.IDIV, "rrr"),
    Opcode.FADD: _info(Opcode.FADD, OpClass.FADD, "rrr"),
    Opcode.FSUB: _info(Opcode.FSUB, OpClass.FADD, "rrr"),
    Opcode.FMUL: _info(Opcode.FMUL, OpClass.FMUL, "rrr"),
    Opcode.FDIV: _info(Opcode.FDIV, OpClass.FDIV, "rrr"),
    Opcode.FMOV: _info(Opcode.FMOV, OpClass.FADD, "ri"),
    Opcode.LD: _info(Opcode.LD, OpClass.LOAD, "mem"),
    Opcode.ST: _info(Opcode.ST, OpClass.STORE, "mem"),
    Opcode.FLD: _info(Opcode.FLD, OpClass.LOAD, "mem"),
    Opcode.FST: _info(Opcode.FST, OpClass.STORE, "mem"),
    Opcode.BEQ: _info(Opcode.BEQ, OpClass.BRANCH, "brr"),
    Opcode.BNE: _info(Opcode.BNE, OpClass.BRANCH, "brr"),
    Opcode.BLT: _info(Opcode.BLT, OpClass.BRANCH, "brr"),
    Opcode.BGE: _info(Opcode.BGE, OpClass.BRANCH, "brr"),
    Opcode.BEQZ: _info(Opcode.BEQZ, OpClass.BRANCH, "br"),
    Opcode.BNEZ: _info(Opcode.BNEZ, OpClass.BRANCH, "br"),
    Opcode.J: _info(Opcode.J, OpClass.JUMP, "j"),
    Opcode.JAL: _info(Opcode.JAL, OpClass.JUMP, "j"),
    Opcode.JR: _info(Opcode.JR, OpClass.JUMP, "jr"),
    Opcode.NOP: _info(Opcode.NOP, OpClass.NOP, "none"),
    Opcode.HALT: _info(Opcode.HALT, OpClass.NOP, "none"),
}

_BY_MNEMONIC = {info.mnemonic: info for info in OPCODE_INFO.values()}


def lookup_mnemonic(mnemonic: str) -> OpcodeInfo:
    """Return metadata for a mnemonic; raise KeyError for unknown ones."""
    return _BY_MNEMONIC[mnemonic.lower()]
