"""Command-line interface.

Examples::

    python -m repro experiment f2          # reproduce one table/figure
    python -m repro suite --length 20000   # characterize the suite
    python -m repro simulate --workload twolf --rob 256
    python -m repro simulate --kernel branchy_search --structural
    python -m repro decompose --workload mcf
    python -m repro trace --workload gzip --length 50000 --out gzip.trc
    python -m repro trace-info gzip.trc
    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.frontend.base import BranchUnit
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.tournament import TournamentPredictor
from repro.interval.contributors import decompose_contributors
from repro.interval.cpi_stack import build_cpi_stack
from repro.interval.penalty import measure_penalties
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.pipeline.annotate import StructuralAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.io import load_trace, save_trace
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace
from repro.util.tabulate import format_table
from repro.workloads.kernels import KERNEL_BUILDERS, build_kernel
from repro.workloads.spec_profiles import ALL_PROFILES, SPEC_FP_PROFILES, SPEC_PROFILES


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=4,
                        help="dispatch/issue/commit width (default 4)")
    parser.add_argument("--rob", type=int, default=128,
                        help="ROB / window size (default 128)")
    parser.add_argument("--frontend-depth", type=int, default=5,
                        help="frontend pipeline depth in cycles (default 5)")
    parser.add_argument("--memory-latency", type=int, default=250,
                        help="long-miss latency in cycles (default 250)")


def _config_from(args: argparse.Namespace) -> CoreConfig:
    return CoreConfig(
        dispatch_width=args.width,
        issue_width=args.width,
        commit_width=args.width,
        rob_size=args.rob,
        frontend_depth=args.frontend_depth,
        memory_latency=args.memory_latency,
    )


def _trace_from(args: argparse.Namespace) -> Trace:
    chosen = [
        bool(getattr(args, "workload", None)),
        bool(getattr(args, "kernel", None)),
        bool(getattr(args, "trace", None)),
    ]
    if sum(chosen) != 1:
        raise SystemExit(
            "choose exactly one of --workload, --kernel, --trace"
        )
    if args.workload:
        if args.workload not in ALL_PROFILES:
            raise SystemExit(
                f"unknown workload {args.workload!r}; "
                f"see `python -m repro list`"
            )
        return generate_trace(
            ALL_PROFILES[args.workload], args.length, seed=args.seed
        )
    if args.kernel:
        if args.kernel not in KERNEL_BUILDERS:
            raise SystemExit(
                f"unknown kernel {args.kernel!r}; see `python -m repro list`"
            )
        return build_kernel(args.kernel).run()
    return load_trace(args.trace)


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_experiment

    try:
        result = run_experiment(args.experiment_id)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.markdown:
        print(result.render_markdown())
    else:
        print(result.render())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    config = _config_from(args)
    rows = []
    for name, profile in SPEC_PROFILES.items():
        trace = generate_trace(profile, args.length, seed=args.seed)
        result = simulate(trace, config)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                result.ipc,
                1000.0 * report.count / result.instructions,
                report.mean_resolution,
                report.mean_penalty,
                report.penalty_over_refill,
            ]
        )
    print(
        format_table(
            ["workload", "IPC", "mispred/ki", "resolution", "penalty",
             "penalty/frontend"],
            rows,
            float_fmt=".2f",
            title=f"suite @ width={config.dispatch_width} rob="
            f"{config.rob_size} frontend={config.frontend_depth}",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    config = _config_from(args)
    trace = _trace_from(args)
    annotator = None
    if args.structural:
        annotator = StructuralAnnotator(
            config,
            BranchUnit(direction=TournamentPredictor(),
                       btb=BranchTargetBuffer()),
            CacheHierarchy(HierarchyConfig(
                memory_latency=config.memory_latency)),
        )
    if args.inorder:
        from repro.pipeline.inorder import simulate_inorder

        result = simulate_inorder(trace, config, annotator=annotator)
    else:
        result = simulate(trace, config, annotator=annotator)
    report = measure_penalties(result)
    stack = build_cpi_stack(result, config.dispatch_width)
    print(f"instructions      : {result.instructions}")
    print(f"cycles            : {result.cycles}")
    print(f"IPC               : {result.ipc:.3f}")
    print(f"mispredictions    : {report.count}")
    print(f"I-cache misses    : {len(result.icache_events)}")
    print(f"long D-misses     : {len(result.long_dmiss_events)}")
    if report.count:
        print(f"mean resolution   : {report.mean_resolution:.1f} cycles")
        print(f"mean penalty      : {report.mean_penalty:.1f} cycles "
              f"({report.penalty_over_refill:.1f}x frontend)")
    print("CPI stack         : "
          + "  ".join(f"{k}={v:.3f}" for k, v in stack.component_cpi().items()))
    return 0


def cmd_decompose(args: argparse.Namespace) -> int:
    config = _config_from(args)
    trace = _trace_from(args)
    result = simulate(trace, config)
    breakdown = decompose_contributors(
        trace, result, config, max_events=args.max_events
    )
    if not breakdown.count:
        print("no mispredictions to decompose")
        return 0
    print(f"mispredictions sliced: {breakdown.count}")
    for name, value in breakdown.rows():
        print(f"  {name:<45} {value:8.2f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    if args.workload not in ALL_PROFILES:
        raise SystemExit(f"unknown workload {args.workload!r}")
    trace = generate_trace(
        ALL_PROFILES[args.workload], args.length, seed=args.seed
    )
    save_trace(trace, args.out)
    print(f"wrote {len(trace)} records to {args.out}")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    trace = load_trace(args.trace_file)
    stats = trace.statistics()
    print(f"name                : {trace.name}")
    print(f"instructions        : {stats.instruction_count}")
    print("mix                 : "
          + "  ".join(f"{k}={v:.3f}" for k, v in sorted(stats.mix.items())))
    print(f"branches            : {stats.branch_count} "
          f"(taken {stats.taken_fraction:.2f})")
    print(f"mispredictions/ki   : {stats.mispredictions_per_ki:.2f}")
    print(f"IL1 misses/ki       : {stats.il1_misses_per_ki:.2f}")
    print(f"DL1/DL2 miss rates  : {stats.dl1_miss_rate:.3f} / "
          f"{stats.dl2_miss_rate:.3f}")
    print(f"mean dep distance   : {stats.mean_dependence_distance:.2f}")
    print(f"dataflow IPC        : {trace.dataflow_ipc():.2f}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run experiments and write a consolidated markdown report."""
    from repro.harness.experiments import EXPERIMENTS, run_experiment

    ids = args.experiments or list(EXPERIMENTS)
    sections = [
        "# Reproduction report",
        "",
        "Generated by `repro report`. One section per experiment; see",
        "EXPERIMENTS.md for the paper-vs-measured interpretation.",
        "",
    ]
    for experiment_id in ids:
        print(f"running {experiment_id} ...", flush=True)
        result = run_experiment(experiment_id)
        sections.append(result.render_markdown())
        sections.append("")
    text = "\n".join(sections)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def cmd_list(args: argparse.Namespace) -> int:
    from repro.harness.experiments import EXPERIMENTS

    print("workloads :", "  ".join(SPEC_PROFILES))
    print("fp workloads:", "  ".join(SPEC_FP_PROFILES))
    print("kernels   :", "  ".join(KERNEL_BUILDERS))
    print("experiments:", "  ".join(EXPERIMENTS))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Characterizing the branch misprediction penalty "
        "(ISPASS 2006) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiment", help="run one table/figure experiment")
    p.add_argument("experiment_id", help="t1-t3, f1-f16")
    p.add_argument("--markdown", action="store_true")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("suite", help="characterize the SPEC-like suite")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    _add_config_flags(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("simulate", help="simulate one trace")
    p.add_argument("--workload", help="SPEC-like workload name")
    p.add_argument("--kernel", help="microbenchmark kernel name")
    p.add_argument("--trace", help="trace file path")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--structural", action="store_true",
                   help="use real predictor/cache substrates")
    p.add_argument("--inorder", action="store_true",
                   help="use the scoreboarded in-order core")
    _add_config_flags(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("decompose",
                       help="five-contributor penalty decomposition")
    p.add_argument("--workload")
    p.add_argument("--kernel")
    p.add_argument("--trace")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--max-events", type=int, default=150)
    _add_config_flags(p)
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser("trace", help="generate and save a synthetic trace")
    p.add_argument("--workload", required=True)
    p.add_argument("--length", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("trace-info", help="describe a saved trace")
    p.add_argument("trace_file")
    p.set_defaults(func=cmd_trace_info)

    p = sub.add_parser("report",
                       help="run experiments, write a markdown report")
    p.add_argument("experiments", nargs="*",
                   help="experiment ids (default: all)")
    p.add_argument("--out", help="output path (default: stdout)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser("list", help="list workloads, kernels, experiments")
    p.set_defaults(func=cmd_list)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
