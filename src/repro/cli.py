"""Command-line interface.

Examples::

    python -m repro experiment f2          # reproduce one table/figure
    python -m repro suite --length 20000   # characterize the suite
    python -m repro simulate --workload twolf --rob 256
    python -m repro simulate --kernel branchy_search --structural
    python -m repro simulate --workload mcf --trace-out mcf.json
    python -m repro decompose --workload mcf
    python -m repro trace --workload gzip --length 50000 --out gzip.trc
    python -m repro trace-info gzip.trc
    python -m repro list
    python -m repro sweep --workload gzip --parameter rob_size \\
        --values 32,64,128,256 --batch         # lockstep batched sweep
    python -m repro lab run --workers 4        # parallel, store-cached
    python -m repro lab run f2 f3 --no-cache
    python -m repro lab run f2 --metrics       # merged metrics manifest
    python -m repro lab status
    python -m repro lab gc --max-age-days 30
    python -m repro serve run --shards 4     # long-lived query service
    python -m repro serve status
    python -m repro lint src/                  # AST rule pack, CI gate
    python -m repro lint src/ --format=json
    python -m repro simulate --workload mcf --sanitize
    python -m repro analyze <run-id>           # sanitizer results of a run
    python -m repro obs trace --workload gzip --out gzip-trace.json
    python -m repro obs metrics <run-id>       # merged metrics of a run
    python -m repro profile --workload mcf     # where does wall time go

Every subcommand accepts ``-q/--quiet`` to suppress progress output;
the command's actual results still print.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.frontend.base import BranchUnit
from repro.frontend.btb import BranchTargetBuffer
from repro.frontend.tournament import TournamentPredictor
from repro.interval.contributors import decompose_contributors
from repro.interval.cpi_stack import build_cpi_stack
from repro.interval.penalty import measure_penalties
from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
from repro.pipeline.annotate import StructuralAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.io import load_trace, save_trace
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace
from repro.util.tabulate import format_table
from repro.workloads.kernels import KERNEL_BUILDERS, build_kernel
from repro.workloads.spec_profiles import ALL_PROFILES, SPEC_FP_PROFILES, SPEC_PROFILES


class Console:
    """The one output doorway for the CLI (the PRT001-exempt module).

    ``result`` lines are what the command was run for and always print;
    ``info`` lines are progress/operational chatter that ``-q/--quiet``
    suppresses.
    """

    def __init__(self, quiet: bool = False) -> None:
        self.quiet = quiet

    def result(self, text: str = "") -> None:
        print(text)

    def info(self, text: str = "", flush: bool = False) -> None:
        if not self.quiet:
            print(text, flush=flush)


def _console(args: argparse.Namespace) -> Console:
    console = getattr(args, "console", None)
    if console is None:
        console = Console(quiet=bool(getattr(args, "quiet", False)))
    return console


def _add_config_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--width", type=int, default=4,
                        help="dispatch/issue/commit width (default 4)")
    parser.add_argument("--rob", type=int, default=128,
                        help="ROB / window size (default 128)")
    parser.add_argument("--frontend-depth", type=int, default=5,
                        help="frontend pipeline depth in cycles (default 5)")
    parser.add_argument("--memory-latency", type=int, default=250,
                        help="long-miss latency in cycles (default 250)")


def _config_from(args: argparse.Namespace) -> CoreConfig:
    return CoreConfig(
        dispatch_width=args.width,
        issue_width=args.width,
        commit_width=args.width,
        rob_size=args.rob,
        frontend_depth=args.frontend_depth,
        memory_latency=args.memory_latency,
    )


def _trace_from(args: argparse.Namespace) -> Trace:
    chosen = [
        bool(getattr(args, "workload", None)),
        bool(getattr(args, "kernel", None)),
        bool(getattr(args, "trace", None)),
    ]
    if sum(chosen) != 1:
        raise SystemExit(
            "choose exactly one of --workload, --kernel, --trace"
        )
    if args.workload:
        if args.workload not in ALL_PROFILES:
            raise SystemExit(
                f"unknown workload {args.workload!r}; "
                f"see `python -m repro list`"
            )
        return generate_trace(
            ALL_PROFILES[args.workload], args.length, seed=args.seed
        )
    if args.kernel:
        if args.kernel not in KERNEL_BUILDERS:
            raise SystemExit(
                f"unknown kernel {args.kernel!r}; see `python -m repro list`"
            )
        return build_kernel(args.kernel).run()
    return load_trace(args.trace)


def _trace_label(args: argparse.Namespace) -> str:
    for attr in ("workload", "kernel", "trace"):
        value = getattr(args, attr, None)
        if value:
            return f"repro-sim:{value}"
    return "repro-sim"


def _export_trace(args: argparse.Namespace, console: Console) -> None:
    """Drain the ambient tracer into the files ``args`` asked for."""
    from repro.obs import runtime as obs_runtime
    from repro.obs.export import write_chrome_trace, write_jsonl
    from repro.obs.tracer import RecordingTracer

    tracer = obs_runtime.drain_trace()
    if tracer is None:
        tracer = RecordingTracer()  # an empty run still exports validly
    counts = tracer.counts()
    summary = "  ".join(
        f"{kind}={counts.get(kind, 0)}"
        for kind in ("bpred", "icache", "long_dmiss")
    )
    console.info(
        f"trace spans: {summary}  instants={len(tracer.instants)}"
    )
    out = getattr(args, "trace_out", None)
    if out:
        written = write_chrome_trace(tracer, out, label=_trace_label(args))
        console.info(
            f"wrote {written} Chrome trace events to {out} "
            "(load in Perfetto or chrome://tracing)"
        )
    jsonl = getattr(args, "trace_jsonl", None)
    if jsonl:
        lines = write_jsonl(tracer, jsonl)
        console.info(f"wrote {lines} JSONL records to {jsonl}")


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.harness.experiments import run_experiment

    console = _console(args)
    try:
        result = run_experiment(args.experiment_id)
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.markdown:
        console.result(result.render_markdown())
    else:
        console.result(result.render())
    return 0


def cmd_suite(args: argparse.Namespace) -> int:
    console = _console(args)
    config = _config_from(args)
    rows = []
    for name, profile in SPEC_PROFILES.items():
        trace = generate_trace(profile, args.length, seed=args.seed)
        result = simulate(trace, config)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                result.ipc,
                1000.0 * report.count / result.instructions,
                report.mean_resolution,
                report.mean_penalty,
                report.penalty_over_refill,
            ]
        )
    console.result(
        format_table(
            ["workload", "IPC", "mispred/ki", "resolution", "penalty",
             "penalty/frontend"],
            rows,
            float_fmt=".2f",
            title=f"suite @ width={config.dispatch_width} rob="
            f"{config.rob_size} frontend={config.frontend_depth}",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    console = _console(args)
    config = _config_from(args)
    trace = _trace_from(args)
    if args.sanitize:
        from repro.analysis import sanitizer

        sanitizer.enable()
    tracing = bool(args.trace_out or args.trace_jsonl)
    if tracing:
        from repro.obs import runtime as obs_runtime

        obs_runtime.enable_tracing()
    annotator = None
    if args.structural:
        annotator = StructuralAnnotator(
            config,
            BranchUnit(direction=TournamentPredictor(),
                       btb=BranchTargetBuffer()),
            CacheHierarchy(HierarchyConfig(
                memory_latency=config.memory_latency)),
        )
    if args.inorder:
        from repro.pipeline.inorder import simulate_inorder

        result = simulate_inorder(trace, config, annotator=annotator)
    else:
        result = simulate(trace, config, annotator=annotator)
    report = measure_penalties(result)
    stack = build_cpi_stack(result, config.dispatch_width)
    console.result(f"instructions      : {result.instructions}")
    console.result(f"cycles            : {result.cycles}")
    console.result(f"IPC               : {result.ipc:.3f}")
    console.result(f"mispredictions    : {report.count}")
    console.result(f"I-cache misses    : {len(result.icache_events)}")
    console.result(f"long D-misses     : {len(result.long_dmiss_events)}")
    if report.count:
        console.result(
            f"mean resolution   : {report.mean_resolution:.1f} cycles")
        console.result(
            f"mean penalty      : {report.mean_penalty:.1f} cycles "
            f"({report.penalty_over_refill:.1f}x frontend)")
    console.result(
        "CPI stack         : "
        + "  ".join(f"{k}={v:.3f}" for k, v in stack.component_cpi().items()))
    if tracing:
        from repro.obs import runtime as obs_runtime

        _export_trace(args, console)
        obs_runtime.reset()
    if args.sanitize:
        from repro.analysis import sanitizer

        san_report = sanitizer.drain_report()
        if san_report is not None:
            console.result(san_report.render())
            if not san_report.ok:
                return 1
    return 0


def cmd_decompose(args: argparse.Namespace) -> int:
    console = _console(args)
    config = _config_from(args)
    trace = _trace_from(args)
    result = simulate(trace, config)
    breakdown = decompose_contributors(
        trace, result, config, max_events=args.max_events
    )
    if not breakdown.count:
        console.result("no mispredictions to decompose")
        return 0
    console.result(f"mispredictions sliced: {breakdown.count}")
    for name, value in breakdown.rows():
        console.result(f"  {name:<45} {value:8.2f}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    console = _console(args)
    if args.workload not in ALL_PROFILES:
        raise SystemExit(f"unknown workload {args.workload!r}")
    trace = generate_trace(
        ALL_PROFILES[args.workload], args.length, seed=args.seed
    )
    save_trace(trace, args.out)
    console.info(f"wrote {len(trace)} records to {args.out}")
    return 0


def cmd_trace_info(args: argparse.Namespace) -> int:
    console = _console(args)
    trace = load_trace(args.trace_file)
    stats = trace.statistics()
    console.result(f"name                : {trace.name}")
    console.result(f"instructions        : {stats.instruction_count}")
    console.result(
        "mix                 : "
        + "  ".join(f"{k}={v:.3f}" for k, v in sorted(stats.mix.items())))
    console.result(f"branches            : {stats.branch_count} "
                   f"(taken {stats.taken_fraction:.2f})")
    console.result(
        f"mispredictions/ki   : {stats.mispredictions_per_ki:.2f}")
    console.result(f"IL1 misses/ki       : {stats.il1_misses_per_ki:.2f}")
    console.result(f"DL1/DL2 miss rates  : {stats.dl1_miss_rate:.3f} / "
                   f"{stats.dl2_miss_rate:.3f}")
    console.result(
        f"mean dep distance   : {stats.mean_dependence_distance:.2f}")
    console.result(f"dataflow IPC        : {trace.dataflow_ipc():.2f}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Run experiments and write a consolidated markdown report."""
    from repro.harness.experiments import EXPERIMENTS, run_experiment

    console = _console(args)
    ids = args.experiments or list(EXPERIMENTS)
    sections = [
        "# Reproduction report",
        "",
        "Generated by `repro report`. One section per experiment; see",
        "EXPERIMENTS.md for the paper-vs-measured interpretation.",
        "",
    ]
    for experiment_id in ids:
        console.info(f"running {experiment_id} ...", flush=True)
        result = run_experiment(experiment_id)
        sections.append(result.render_markdown())
        sections.append("")
    text = "\n".join(sections)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(text)
        console.info(f"wrote {args.out}")
    else:
        console.result(text)
    return 0


def cmd_lab_run(args: argparse.Namespace) -> int:
    """Run experiments through the lab pool + persistent store."""
    from repro.harness.experiments import EXPERIMENTS
    from repro.lab import run_experiments

    console = _console(args)
    ids = args.experiments or list(EXPERIMENTS)
    unknown = [i for i in ids if i.lower() not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment(s) {unknown}; see `python -m repro list`"
        )
    if args.sanitize:
        # Exported to the environment so pool workers inherit it.
        from repro.analysis import sanitizer

        sanitizer.enable()
    if args.faults:
        from repro.resilience import faults

        faults.enable(args.faults)  # exported so workers inherit it
    watchdog_policy = None
    if args.hang_s is not None:
        from repro.resilience.watchdog import WatchdogPolicy

        watchdog_policy = WatchdogPolicy(hang_s=args.hang_s)
    run_id = args.resume or args.run_id
    results, telemetry = run_experiments(
        ids,
        workers=args.workers,
        store_root=args.cache_dir,
        use_cache=not args.no_cache,
        timeout_s=args.timeout,
        retries=args.retries,
        collect_metrics=args.metrics or args.trace,
        trace=args.trace,
        run_id=run_id,
        resume=bool(args.resume),
        watchdog_policy=watchdog_policy,
    )
    for experiment_id, result in zip(ids, results):
        if result is None:
            console.result(
                f"== {experiment_id.upper()}: FAILED (see manifest) ==")
        elif args.markdown:
            console.result(result.render_markdown())
        else:
            console.result(result.render())
        console.result()
    console.info(telemetry.summary())
    if telemetry.with_metrics:
        console.info(
            f"metrics: {telemetry.with_metrics} job snapshot(s) merged; "
            f"view with `repro obs metrics {telemetry.run_id}`"
        )
    for failure in telemetry.failures():
        last_line = (failure.error or "").strip().splitlines()
        console.result(
            f"  FAILED {failure.label}: "
            f"{last_line[-1] if last_line else '?'}")
    for record in telemetry.records:
        if record.sanitizer_violations:
            for violation in record.sanitizer["violations"]:
                console.result(
                    f"  SANITIZER {record.label}: {violation['check']}: "
                    f"{violation['message']}")
    if telemetry.interrupted:
        console.info(
            f"interrupted; resume with "
            f"`repro lab run --resume {telemetry.run_id}`"
        )
        return 130
    return 1 if telemetry.failed or telemetry.sanitizer_violations else 0


def cmd_lab_status(args: argparse.Namespace) -> int:
    """Describe the persistent result store and recent runs."""
    import json

    from repro.lab import ResultStore

    console = _console(args)
    store = ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
    info = store.describe()
    console.result(f"store root : {info['root']}")
    console.result(f"objects    : {info['objects']} "
                   f"({info['size_bytes'] / 1e6:.2f} MB)")
    console.result(f"manifests  : {info['manifests']}")
    console.result(f"code salt  : {info['salt']}")
    for path in store.manifests()[: args.limit]:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        counters = manifest.get("counters", {})
        console.result(
            f"  run {manifest.get('run_id')}: "
            f"{counters.get('total', 0)} jobs, "
            f"{counters.get('cached', 0)} cached, "
            f"{counters.get('failed', 0)} failed, "
            f"{manifest.get('elapsed_s', 0.0):.2f}s, "
            f"workers={manifest.get('workers')}"
        )
    return 0


def cmd_lab_fsck(args: argparse.Namespace) -> int:
    """Scan the store for corruption; quarantine/clean with --repair."""
    import json

    from repro.lab import ResultStore
    from repro.resilience.fsck import fsck_store

    console = _console(args)
    store = ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
    report = fsck_store(store, repair=args.repair)
    if args.format == "json":
        text = json.dumps(report.as_payload(), indent=1, sort_keys=True)
    else:
        text = report.render()
    if args.output:
        from repro.resilience.atomic import atomic_write_text

        atomic_write_text(args.output, text + "\n")
        console.info(f"wrote {args.output}")
    else:
        console.result(text)
    if report.ok:
        return 0
    console.info(
        f"{report.unrepaired} unrepaired issue(s); "
        "re-run with --repair to quarantine damaged objects"
    )
    return 1


def cmd_lab_gc(args: argparse.Namespace) -> int:
    """Evict stored results by age/count, or clear the store."""
    from repro.lab import ResultStore

    console = _console(args)
    store = ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
    max_age_s = args.max_age_days * 86_400.0 if args.max_age_days else None
    removed = store.gc(
        max_entries=args.max_entries, max_age_s=max_age_s, clear=args.all
    )
    console.result(f"removed {removed} object(s); {store.count()} remain")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the whole-program analysis; exit 1 on findings/parse errors."""
    import json as _json
    from pathlib import Path

    from repro.analysis import rule_catalogue
    from repro.analysis.program import (
        AnalysisCache,
        _NullCache,
        analyze_paths,
        apply_baseline,
        changed_files,
        load_baseline,
        to_sarif,
        write_baseline,
    )
    from repro.resilience.atomic import atomic_write_text

    console = _console(args)
    if args.list_rules:
        for row in rule_catalogue():
            console.result(f"{row['id']} ({row['name']}; scope: {row['scope']})")
            console.result(f"    {row['description']}")
        return 0

    if args.changed is not None:
        paths = changed_files(args.changed or None)
        if not paths:
            console.result("no changed python files; nothing to lint")
            return 0
    else:
        paths = args.paths or ["src"]

    if args.no_cache:
        cache = _NullCache()
    elif args.cache_dir:
        cache = AnalysisCache(root=Path(args.cache_dir) / "analysis")
    else:
        cache = AnalysisCache()
    rule_filter = (
        {name.strip() for name in args.rules.split(",") if name.strip()}
        if args.rules else None
    )
    report = analyze_paths(
        paths,
        cache=cache,
        jobs=args.jobs,
        rule_filter=rule_filter,
    )

    baseline_path = Path(args.baseline)
    if args.update_baseline:
        count = write_baseline(baseline_path, report)
        console.result(
            f"baseline updated: {count} finding(s) recorded in "
            f"{baseline_path}"
        )
        return 0
    baseline = load_baseline(baseline_path)
    if baseline is not None:
        report = apply_baseline(report, baseline)

    if args.sarif:
        document = to_sarif(report, rule_catalogue())
        atomic_write_text(
            args.sarif,
            _json.dumps(document, indent=1, sort_keys=True) + "\n",
            fsync=False,
        )
        console.info(f"wrote SARIF to {args.sarif}")

    text = (
        report.render_json() if args.format == "json"
        else report.render_human()
    )
    if args.output:
        atomic_write_text(args.output, text + "\n", fsync=False)
        console.info(f"wrote {args.output}")
    else:
        console.result(text)
    return 0 if report.ok else 1


def _find_manifest(run: str, cache_dir: Optional[str]) -> str:
    """Resolve a run id (or prefix), 'latest', or a path to a manifest."""
    from repro.lab import ResultStore

    if run.endswith(".json"):
        return run
    store = ResultStore(root=cache_dir) if cache_dir else ResultStore()
    matches = [
        p for p in store.manifests()
        if p.name.startswith(run) or run == "latest"
    ]
    if not matches:
        raise SystemExit(
            f"no run manifest matching {run!r} under {store.runs_dir}"
        )
    return str(matches[0])


def _load_manifest(path: str) -> dict:
    import json

    try:
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read manifest {path}: {exc}")


def cmd_analyze(args: argparse.Namespace) -> int:
    """Show a lab run's sanitizer results from its manifest."""
    console = _console(args)
    manifest = _load_manifest(_find_manifest(args.run, args.cache_dir))
    counters = manifest.get("counters", {})
    console.result(f"run        : {manifest.get('run_id')}")
    console.result(
        f"jobs       : {counters.get('total', 0)} "
        f"({counters.get('ok', 0)} ran, {counters.get('cached', 0)} cached, "
        f"{counters.get('failed', 0)} failed)")
    console.result(
        f"sanitized  : {counters.get('sanitized', 0)} job(s), "
        f"{counters.get('sanitizer_violations', 0)} violation(s)")
    violations = 0
    for job in manifest.get("jobs", []):
        sanitizer = job.get("sanitizer")
        if sanitizer is None:
            continue
        status = "clean" if sanitizer.get("ok") else "VIOLATIONS"
        console.result(
            f"  {job.get('label')}: {status} "
            f"({sanitizer.get('checks_run', 0)} checks, "
            f"{sanitizer.get('runs', 0)} runs)")
        for violation in sanitizer.get("violations", []):
            violations += 1
            where = []
            if violation.get("cycle") is not None:
                where.append(f"cycle {violation['cycle']}")
            if violation.get("seq") is not None:
                where.append(f"seq {violation['seq']}")
            suffix = f" [{', '.join(where)}]" if where else ""
            console.result(
                f"    {violation['check']}: {violation['message']}{suffix}")
    if counters.get("sanitized", 0) == 0:
        console.info(
            "(no sanitizer data; run with --sanitize or REPRO_SANITIZE=1)")
    return 1 if violations else 0


def cmd_obs_trace(args: argparse.Namespace) -> int:
    """Simulate with tracing on and export the penalty timeline."""
    from repro.obs import runtime as obs_runtime

    console = _console(args)
    config = _config_from(args)
    trace = _trace_from(args)
    obs_runtime.enable_tracing()
    if args.inorder:
        from repro.pipeline.inorder import simulate_inorder

        result = simulate_inorder(trace, config)
    else:
        result = simulate(trace, config)
    # Segmentation emits the interval-boundary instants.
    measure_penalties(result)
    _export_trace(args, console)
    obs_runtime.reset()
    console.result(
        f"{result.instructions} instructions, {result.cycles} cycles, "
        f"{len(result.mispredict_events)} mispredict span(s)"
    )
    return 0


def cmd_obs_metrics(args: argparse.Namespace) -> int:
    """Render a lab run's merged metrics snapshot from its manifest."""
    from repro.obs.metrics import render_snapshot

    console = _console(args)
    manifest = _load_manifest(_find_manifest(args.run, args.cache_dir))
    snapshot = manifest.get("metrics")
    if not snapshot:
        console.result(
            f"run {manifest.get('run_id')}: no metrics recorded "
            "(run with `lab run --metrics` on a cold cache)"
        )
        return 1
    console.info(f"run {manifest.get('run_id')}: merged metrics from "
                 f"{manifest.get('counters', {}).get('with_metrics', 0)} "
                 "job(s)")
    console.result(render_snapshot(snapshot).rstrip("\n"))
    return 0


def cmd_obs_flame(args: argparse.Namespace) -> int:
    """Fold a span export into collapsed flame-graph stacks."""
    import json as _json

    from repro.obs.spans import collapse_stacks, span_from_dict

    console = _console(args)
    try:
        with open(args.trace, "r", encoding="utf-8") as handle:
            payload = _json.load(handle)
    except (OSError, _json.JSONDecodeError) as exc:
        console.result(f"cannot read {args.trace}: {exc}")
        return 1
    # Accept a bare span list, a {"spans": [...]} envelope (serve
    # manifests and `trace` op responses), or a `trace` op response
    # still wrapped in its protocol frame.
    if isinstance(payload, dict) and isinstance(payload.get("result"), dict):
        payload = payload["result"]
    records = payload.get("spans") if isinstance(payload, dict) else payload
    if not isinstance(records, list):
        console.result(f"{args.trace}: no span list found")
        return 1
    spans = []
    for record in records:
        if isinstance(record, dict) and "span_id" in record:
            # Round-trip through SpanRecord: malformed records fail
            # loudly here instead of producing a nonsense fold.
            spans.append(span_from_dict(record).as_dict())
    if args.trace_id:
        spans = [s for s in spans if s["trace_id"] == args.trace_id]
    lines = collapse_stacks(spans)
    if not lines:
        console.result("(no closed spans to fold)")
        return 1
    for line in lines:
        console.result(line)
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one simulate+analyze pass and report phase wall times."""
    from repro.obs import runtime as obs_runtime

    console = _console(args)
    config = _config_from(args)
    obs_runtime.enable_profiling()
    prof = obs_runtime.current_profiler()
    with prof.phase("cli.trace_gen"):
        trace = _trace_from(args)
    with prof.phase("cli.simulate"):
        if args.inorder:
            from repro.pipeline.inorder import simulate_inorder

            result = simulate_inorder(trace, config)
        else:
            result = simulate(trace, config)
    with prof.phase("cli.analyze"):
        measure_penalties(result)
        build_cpi_stack(result, config.dispatch_width)
    if args.fast:
        from repro.interval.fast_sim import FastIntervalSimulator

        FastIntervalSimulator(config).estimate(trace)
    report = obs_runtime.drain_profile()
    obs_runtime.reset()
    if report is None:
        console.result("(no phases recorded)")
        return 0
    console.info(
        "note: cli.simulate wraps the core.* phases, so the core rows "
        "are a breakdown of it, not additional time"
    )
    console.result(report.render().rstrip("\n"))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the throughput benchmarks; optionally gate on a baseline."""
    from repro.perf import bench

    console = _console(args)
    console.info(
        "running benchmarks "
        f"({'quick' if args.quick else 'full'}; this takes a while) ...",
        flush=True,
    )
    payload = bench.run_benchmarks(quick=args.quick, repeats=args.repeats)
    console.result(bench.render(payload))
    if args.out:
        bench.write_payload(payload, args.out)
        console.info(f"wrote {args.out}")
    if args.compare:
        try:
            baseline = bench.load_baseline(args.compare)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline {args.compare}: {exc}")
        threshold = (
            args.threshold
            if args.threshold is not None
            else bench.REGRESSION_THRESHOLD
        )
        problems = bench.compare(payload, baseline, threshold=threshold)
        if problems:
            console.result("REGRESSIONS vs " + args.compare + ":")
            for problem in problems:
                console.result(f"  {problem}")
            return 1
        console.result(f"no regressions vs {args.compare}")
    return 0


def _sweep_value(text: str):
    """A sweep value from its CLI spelling (int, then float, then str)."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def cmd_sweep(args: argparse.Namespace) -> int:
    """One-dimensional CoreConfig sweep through the lab pool.

    ``--batch`` chunks the points into lockstep batches routed through
    ``repro.perf.batchcore`` — results are field-exact equal to the
    scalar path and land in the same content-addressed store entries,
    so the two modes share caches point by point.
    """
    from repro.lab.jobs import SweepJob
    from repro.lab.pool import run_jobs

    console = _console(args)
    if args.workload not in ALL_PROFILES:
        raise SystemExit(
            f"unknown workload {args.workload!r}; see `python -m repro list`"
        )
    values = [
        _sweep_value(part.strip())
        for part in args.values.split(",")
        if part.strip()
    ]
    if not values:
        raise SystemExit("--values needs at least one value")
    sweep = SweepJob(
        parameter=args.parameter,
        values=values,
        workload=args.workload,
        length=args.length,
        seed=args.seed,
        base_config=_config_from(args),
    )
    try:
        jobs = (
            sweep.expand_batched(batch_size=args.batch_size)
            if args.batch
            else sweep.expand()
        )
    except (TypeError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.batch:
        value_groups = [
            values[lo : lo + args.batch_size]
            for lo in range(0, len(values), args.batch_size)
        ]
    else:
        value_groups = [[value] for value in values]
    results, telemetry = run_jobs(
        jobs,
        workers=args.workers,
        store_root=args.cache_dir,
        use_cache=not args.no_cache,
    )
    rows = []
    exit_code = 0
    for spec, group, outcome in zip(jobs, value_groups, results):
        if not outcome.ok:
            exit_code = 1
            last = (outcome.error or "").strip().splitlines()
            console.result(
                f"  FAILED {outcome.label}: {last[-1] if last else '?'}"
            )
            continue
        decoded = spec.decode(outcome.payload)
        group_results = decoded if isinstance(decoded, list) else [decoded]
        for value, result in zip(group, group_results):
            rows.append(
                [
                    value,
                    result.ipc,
                    result.cycles,
                    len(result.events),
                    result.rob_peak_occupancy,
                ]
            )
    if rows:
        console.result(
            format_table(
                [args.parameter, "IPC", "cycles", "events", "rob_peak"],
                rows,
                float_fmt=".3f",
                title=(
                    f"sweep {args.workload} {args.parameter} "
                    f"({'batched' if args.batch else 'scalar'}, "
                    f"{len(values)} point(s))"
                ),
            )
        )
    console.info(telemetry.summary())
    return exit_code


def cmd_serve_run(args: argparse.Namespace) -> int:
    """Start the sharded async experiment service (foreground)."""
    import asyncio

    import dataclasses

    from repro.serve.admission import AdmissionPolicy
    from repro.serve.service import ExperimentService, ServeServer

    console = _console(args)
    if args.faults:
        from repro.resilience import faults

        faults.enable(args.faults)  # exported so shard workers inherit
    policy = AdmissionPolicy()
    overrides = {
        name: value
        for name, value in (
            ("max_depth", args.max_depth),
            ("max_bytes", args.max_bytes),
        )
        if value is not None
    }
    if overrides:
        policy = dataclasses.replace(policy, **overrides)
    service = ExperimentService(
        store_root=args.cache_dir,
        n_shards=args.shards,
        tier0_items=args.tier0_items,
        tier0_bytes=args.tier0_bytes,
        use_cache=not args.no_cache,
        trace_requests=True if args.trace else None,
        shard_workers=args.workers,
        admission_policy=policy,
    )
    server = ServeServer(service, host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        console.info(
            f"serve {service.service_id}: listening on "
            f"{server.host}:{server.port} with {len(service.shards)} "
            f"shard(s); store {service.store.root}"
        )
        console.info("stop with Ctrl-C or the 'shutdown' op")
        await server.serve_until_shutdown()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        console.info("interrupted; shutting down")
    manifest = service.store.runs_dir / f"{service.service_id}.serve.json"
    console.info(f"metrics manifest: {manifest}")
    return 0


def cmd_serve_status(args: argparse.Namespace) -> int:
    """Query a running service's counters, cache tiers, and shards."""
    from repro.lab import ResultStore
    from repro.obs.metrics import render_snapshot
    from repro.serve.client import ServeClient, ServeClientError

    console = _console(args)
    store = ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
    try:
        client = ServeClient.from_store(store.root, timeout_s=args.timeout)
        with client:
            response = client.status()
    except ServeClientError as exc:
        console.result(str(exc))
        return 1
    if not response.get("ok"):
        console.result(f"status failed: {response.get('error')}")
        return 1
    status = response["result"]
    console.result(f"service    : {status['service_id']} "
                   f"(pid {status['pid']}, v{status['version']})")
    console.result(f"uptime     : {status['uptime_s']:.1f}s")
    console.result(f"store root : {status['store_root']}")
    console.result(f"inflight   : {status['inflight']}")
    brownout = status.get("brownout", {})
    admission = status.get("admission", {})
    if brownout or admission:
        console.result(
            f"overload   : brownout={brownout.get('label', 'normal')} "
            f"sheds={admission.get('sheds', 0)} "
            f"(depth<={admission.get('max_depth')}, "
            f"bytes<={admission.get('max_bytes')})"
        )
    for shard in status["shards"]:
        console.result(
            f"  shard {shard['index']}: {shard['submitted']} submitted, "
            f"{shard['pending']} pending, {shard['restarts']} restart(s), "
            f"workers {shard['worker_pids']}"
        )
    for tier in status["tiers"]:
        stats = status["cache"].get(tier, {})
        hits = stats.get("hits", 0)
        misses = stats.get("misses", 0)
        console.result(f"  cache {tier}: {hits} hit(s), {misses} miss(es)")
    console.result(render_snapshot(status["metrics"]).rstrip("\n"))
    return 0


def cmd_serve_top(args: argparse.Namespace) -> int:
    """Live dashboard over the service's `stats` op (pure memory)."""
    import time as _time

    from repro.lab import ResultStore
    from repro.serve.client import ServeClient, ServeClientError

    console = _console(args)
    store = ResultStore(root=args.cache_dir) if args.cache_dir else ResultStore()
    iteration = 0
    try:
        client = ServeClient.from_store(store.root, timeout_s=args.timeout)
    except ServeClientError as exc:
        console.result(str(exc))
        return 1
    with client:
        while True:
            try:
                response = client.stats()
            except ServeClientError as exc:
                console.result(str(exc))
                return 1
            if not response.get("ok"):
                console.result(f"stats failed: {response.get('error')}")
                return 1
            stats = response["result"]
            console.result(_render_serve_top(stats))
            iteration += 1
            if args.iterations is not None and iteration >= args.iterations:
                return 0
            _time.sleep(args.interval)


def _render_serve_top(stats: dict) -> str:
    """One refresh of the `serve top` dashboard as a text block."""
    lines = [
        f"serve {stats['service_id']}  up {stats['uptime_s']:.1f}s  "
        f"tracing={'on' if stats.get('tracing') else 'off'}  "
        f"inflight={stats['inflight']}  "
        f"spans={stats.get('spans_buffered', 0)}"
    ]
    brownout = stats.get("brownout", {})
    admission = stats.get("admission", {})
    counters = stats.get("counters", {})
    if brownout or admission:
        lines.append(
            f"  overload: brownout={brownout.get('label', 'normal')} "
            f"sheds={counters.get('serve.overload_sheds_total', 0)} "
            f"(sweeps {counters.get('serve.overload_shed_sweeps_total', 0)}) "
            f"transitions="
            f"{counters.get('serve.overload_transitions_total', 0)} "
            f"deadline_expired="
            f"{counters.get('serve.deadline_expired_total', 0)} "
            f"deadline_dropped="
            f"{counters.get('serve.deadline_dropped_total', 0)}"
        )
    for shard in stats.get("shards", []):
        lines.append(
            f"  shard {shard['index']}: depth={shard['queue_depth']} "
            f"submitted={shard['submitted']} restarts={shard['restarts']}"
        )
    gauges = stats.get("gauges", {})
    lines.append(
        "  gauges: "
        + " ".join(f"{name}={value:g}" for name, value in sorted(gauges.items()))
        if gauges
        else "  gauges: (none)"
    )
    quantiles = stats.get("latency_quantiles_ms", {})
    for name in sorted(quantiles):
        qs = quantiles[name]
        rendered = " ".join(
            f"{label}={qs[label]:.3f}ms"
            for label in ("p50", "p95", "p99")
            if qs.get(label) is not None
        )
        lines.append(f"  {name}: {rendered}")
    samples = stats.get("samples", [])
    if samples:
        recent = samples[-10:]
        depths = " ".join(str(s["queue_depth"]) for s in recent)
        lines.append(f"  queue depth (last {len(recent)}): {depths}")
    return "\n".join(lines)


def cmd_list(args: argparse.Namespace) -> int:
    from repro.harness.experiments import EXPERIMENTS

    console = _console(args)
    console.result("workloads :" + "  ".join(["", *SPEC_PROFILES]))
    console.result("fp workloads:" + "  ".join(["", *SPEC_FP_PROFILES]))
    console.result("kernels   :" + "  ".join(["", *KERNEL_BUILDERS]))
    console.result("experiments:" + "  ".join(["", *EXPERIMENTS]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Characterizing the branch misprediction penalty "
        "(ISPASS 2006) — reproduction toolkit",
    )
    # Shared by every subcommand so `repro <cmd> -q` works uniformly.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("-q", "--quiet", action="store_true",
                        help="suppress progress output (results still print)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiment", parents=[common],
                       help="run one table/figure experiment")
    p.add_argument("experiment_id", help="t1-t3, f1-f16")
    p.add_argument("--markdown", action="store_true")
    p.set_defaults(func=cmd_experiment)

    p = sub.add_parser("suite", parents=[common],
                       help="characterize the SPEC-like suite")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    _add_config_flags(p)
    p.set_defaults(func=cmd_suite)

    p = sub.add_parser("simulate", parents=[common],
                       help="simulate one trace")
    p.add_argument("--workload", help="SPEC-like workload name")
    p.add_argument("--kernel", help="microbenchmark kernel name")
    p.add_argument("--trace", help="trace file path")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--structural", action="store_true",
                   help="use real predictor/cache substrates")
    p.add_argument("--inorder", action="store_true",
                   help="use the scoreboarded in-order core")
    p.add_argument("--sanitize", action="store_true",
                   help="run cycle-level invariant checks and report them")
    p.add_argument("--trace-out",
                   help="record per-miss spans; write Chrome trace JSON "
                   "here (Perfetto-loadable)")
    p.add_argument("--trace-jsonl",
                   help="record per-miss spans; write JSONL here")
    _add_config_flags(p)
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("decompose", parents=[common],
                       help="five-contributor penalty decomposition")
    p.add_argument("--workload")
    p.add_argument("--kernel")
    p.add_argument("--trace")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--max-events", type=int, default=150)
    _add_config_flags(p)
    p.set_defaults(func=cmd_decompose)

    p = sub.add_parser("trace", parents=[common],
                       help="generate and save a synthetic trace")
    p.add_argument("--workload", required=True)
    p.add_argument("--length", type=int, default=100_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--out", required=True)
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser("trace-info", parents=[common],
                       help="describe a saved trace")
    p.add_argument("trace_file")
    p.set_defaults(func=cmd_trace_info)

    p = sub.add_parser("report", parents=[common],
                       help="run experiments, write a markdown report")
    p.add_argument("experiments", nargs="*",
                   help="experiment ids (default: all)")
    p.add_argument("--out", help="output path (default: stdout)")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "lint", parents=[common],
        help="run the whole-program analysis pass (per-file rule pack + "
        "interprocedural race/reachability/taint rules; CI gates on a "
        "clean src/)",
    )
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default: src)")
    p.add_argument("--format", choices=("human", "json"), default="human")
    p.add_argument("--output", help="write the report here instead of stdout")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalogue and exit")
    p.add_argument("--sarif", metavar="PATH",
                   help="also write a SARIF 2.1.0 report to PATH")
    p.add_argument("--baseline", default="lint-baseline.json",
                   help="baseline file for gating (applied when present; "
                   "default: lint-baseline.json)")
    p.add_argument("--update-baseline", action="store_true",
                   help="record current findings as the baseline and exit 0")
    p.add_argument("--changed", nargs="?", const="", metavar="BASE",
                   help="lint only git-changed python files (vs BASE, or "
                   "the working tree + index by default)")
    p.add_argument("--rules", metavar="IDS",
                   help="comma-separated rule ids to report (others still "
                   "run and stay cached)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-addressed analysis cache")
    p.add_argument("--cache-dir",
                   help="store root for the analysis cache (default: "
                   ".repro-cache or $REPRO_CACHE_DIR)")
    p.add_argument("--jobs", type=int, default=None,
                   help="parallel extraction workers (default: auto)")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "analyze", parents=[common],
        help="show a lab run's sanitizer results from its manifest",
    )
    p.add_argument("run",
                   help="run id (or prefix), 'latest', or a manifest path")
    p.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser("list", parents=[common],
                       help="list workloads, kernels, experiments")
    p.set_defaults(func=cmd_list)

    p = sub.add_parser(
        "profile", parents=[common],
        help="phase-timer report: where the wall time of one "
        "simulate+analyze pass goes",
    )
    p.add_argument("--workload", help="SPEC-like workload name")
    p.add_argument("--kernel", help="microbenchmark kernel name")
    p.add_argument("--trace", help="trace file path")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--inorder", action="store_true",
                   help="profile the in-order core instead")
    p.add_argument("--fast", action="store_true",
                   help="also run (and time) the fast interval simulator")
    _add_config_flags(p)
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser(
        "bench", parents=[common],
        help="simulator throughput benchmarks with a machine-normalized "
        "regression gate (BENCH_simulator.json)",
    )
    p.add_argument("--quick", action="store_true",
                   help="shorter trace and fewer repeats (CI mode)")
    p.add_argument("--repeats", type=int, default=None,
                   help="best-of-N timing repeats (default 3, quick 2)")
    p.add_argument("--out", help="write the JSON payload here")
    p.add_argument("--compare",
                   help="baseline JSON to compare against; exit 1 on "
                   "regression")
    p.add_argument("--threshold", type=float, default=None,
                   help="regression threshold as a fraction (default 0.15)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "sweep", parents=[common],
        help="one-dimensional CoreConfig sweep through the lab pool "
        "(--batch routes points through the lockstep batched core)",
    )
    p.add_argument("--workload", required=True,
                   help="SPEC-like workload name")
    p.add_argument("--parameter", required=True,
                   help="CoreConfig field to sweep (e.g. rob_size)")
    p.add_argument("--values", required=True,
                   help="comma-separated values for the swept field")
    p.add_argument("--length", type=int, default=40_000)
    p.add_argument("--seed", type=int, default=2006)
    p.add_argument("--batch", action="store_true",
                   help="simulate points in lockstep batches "
                   "(field-exact equal to the scalar path)")
    p.add_argument("--batch-size", type=int, default=8,
                   help="lockstep configs per batched job (default 8)")
    p.add_argument("--workers", type=int, default=None,
                   help="pool worker processes (default: serial)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the persistent result store")
    p.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    _add_config_flags(p)
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "obs",
        help="observability: penalty timelines and metrics snapshots",
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    q = obs_sub.add_parser(
        "trace", parents=[common],
        help="simulate with tracing on; export a Perfetto timeline",
    )
    q.add_argument("--workload", help="SPEC-like workload name")
    q.add_argument("--kernel", help="microbenchmark kernel name")
    q.add_argument("--trace", help="trace file path")
    q.add_argument("--length", type=int, default=40_000)
    q.add_argument("--seed", type=int, default=2006)
    q.add_argument("--inorder", action="store_true",
                   help="trace the scoreboarded in-order core")
    q.add_argument("--out", dest="trace_out", default="trace.json",
                   help="Chrome trace JSON path (default trace.json)")
    q.add_argument("--jsonl", dest="trace_jsonl",
                   help="also write the compact JSONL export here")
    _add_config_flags(q)
    q.set_defaults(func=cmd_obs_trace)

    q = obs_sub.add_parser(
        "metrics", parents=[common],
        help="render a lab run's merged metrics snapshot",
    )
    q.add_argument("run",
                   help="run id (or prefix), 'latest', or a manifest path")
    q.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    q.set_defaults(func=cmd_obs_metrics)

    q = obs_sub.add_parser(
        "flame", parents=[common],
        help="fold a span export into collapsed flame-graph stacks",
    )
    q.add_argument("trace",
                   help="span JSON: a serve manifest, a `trace` op "
                   "response, or a bare span list")
    q.add_argument("--trace-id", default=None,
                   help="fold only this trace's spans")
    q.set_defaults(func=cmd_obs_flame)

    p = sub.add_parser(
        "lab",
        help="parallel experiment execution with the persistent "
        "result store",
    )
    lab_sub = p.add_subparsers(dest="lab_command", required=True)

    q = lab_sub.add_parser(
        "run", parents=[common],
        help="run experiments through the worker pool"
    )
    q.add_argument("experiments", nargs="*",
                   help="experiment ids (default: all)")
    q.add_argument("--workers", type=int, default=None,
                   help="worker processes (default: all cores; 1 = serial)")
    q.add_argument("--no-cache", action="store_true",
                   help="skip the persistent result store entirely")
    q.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    q.add_argument("--timeout", type=float, default=None,
                   help="per-job timeout in seconds")
    q.add_argument("--retries", type=int, default=0,
                   help="retries per failing job (default 0)")
    q.add_argument("--hang-s", type=float, default=None, dest="hang_s",
                   help="watchdog hang threshold in seconds (default 60): "
                   "declare the pool hung and degrade to serial when "
                   "completions and worker heartbeats both go silent "
                   "this long")
    q.add_argument("--sanitize", action="store_true",
                   help="run invariant checks in every job (recorded in "
                   "the run manifest; exit 1 on violations)")
    q.add_argument("--metrics", action="store_true",
                   help="collect the metrics registry in every job and "
                   "merge the snapshots into the run manifest")
    q.add_argument("--trace", action="store_true",
                   help="record per-job JSONL traces under the run's "
                   "trace directory (implies --metrics)")
    q.add_argument("--run-id", default=None,
                   help="pin the run id (default: random); the journal, "
                   "manifest, and merged manifest are named after it")
    q.add_argument("--resume", metavar="RUN_ID", default=None,
                   help="resume an interrupted/crashed run: jobs its "
                   "journal marks done are replayed from the store, "
                   "the rest re-run")
    q.add_argument("--faults", default=None,
                   help="deterministic fault-injection plan, e.g. "
                   "'seed=7;store.read:corrupt@2' (exported as "
                   "REPRO_FAULTS so workers inherit it)")
    q.add_argument("--markdown", action="store_true")
    q.set_defaults(func=cmd_lab_run)

    q = lab_sub.add_parser("status", parents=[common],
                           help="describe the result store")
    q.add_argument("--cache-dir")
    q.add_argument("--limit", type=int, default=5,
                   help="recent run manifests to show (default 5)")
    q.set_defaults(func=cmd_lab_status)

    q = lab_sub.add_parser(
        "fsck", parents=[common],
        help="verify store integrity (checksums, manifests, journals)"
    )
    q.add_argument("--cache-dir")
    q.add_argument("--repair", action="store_true",
                   help="quarantine corrupt objects and remove stray "
                   "temp files")
    q.add_argument("--format", choices=("human", "json"), default="human")
    q.add_argument("--output", default=None,
                   help="write the report to a file instead of stdout")
    q.set_defaults(func=cmd_lab_fsck)

    p = sub.add_parser(
        "serve",
        help="long-lived sharded experiment service (coalescing, "
        "tiered cache)",
    )
    serve_sub = p.add_subparsers(dest="serve_command", required=True)

    q = serve_sub.add_parser(
        "run", parents=[common],
        help="start the service (foreground; Ctrl-C or 'shutdown' op "
        "stops it)",
    )
    q.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    q.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = OS-assigned; the chosen "
                   "port is advertised in <store>/serve/endpoint.json)")
    q.add_argument("--shards", type=int, default=2,
                   help="worker shards, each owning a hash-prefix range "
                   "of the store (default 2)")
    q.add_argument("--workers", type=int, default=1,
                   help="pool processes per shard (default 1); a dead "
                   "worker only triages its own claimed keys")
    q.add_argument("--max-depth", type=int, default=None,
                   help="admission control: per-shard pending-queue "
                   "ceiling (default 64); requests beyond it are shed "
                   "with a retryable 'overloaded' error")
    q.add_argument("--max-bytes", type=int, default=None,
                   help="admission control: per-shard queued request "
                   "byte budget (default 4 MiB)")
    q.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    q.add_argument("--no-cache", action="store_true",
                   help="bypass every cache tier (each request "
                   "recomputes; coalescing still applies)")
    q.add_argument("--tier0-items", type=int, default=512,
                   help="tier-0 LRU entry bound (default 512)")
    q.add_argument("--tier0-bytes", type=int, default=64 * 1024 * 1024,
                   help="tier-0 LRU byte bound (default 64 MiB)")
    q.add_argument("--faults", default=None,
                   help="deterministic fault-injection plan (exported "
                   "as REPRO_FAULTS so shard workers inherit it)")
    q.add_argument("--trace", action="store_true",
                   help="trace every request (span tree + latency "
                   "stack in each response's meta)")
    q.set_defaults(func=cmd_serve_run)

    q = serve_sub.add_parser(
        "status", parents=[common],
        help="query the running service (endpoint file under the store)",
    )
    q.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    q.add_argument("--timeout", type=float, default=10.0,
                   help="connect/request timeout in seconds (default 10)")
    q.set_defaults(func=cmd_serve_status)

    q = serve_sub.add_parser(
        "top", parents=[common],
        help="live telemetry dashboard (polls the pure-memory "
        "'stats' op; never disturbs coalescing)",
    )
    q.add_argument("--cache-dir",
                   help="store root (default: .repro-cache or "
                   "$REPRO_CACHE_DIR)")
    q.add_argument("--timeout", type=float, default=10.0,
                   help="connect/request timeout in seconds (default 10)")
    q.add_argument("--interval", type=float, default=2.0,
                   help="seconds between refreshes (default 2)")
    q.add_argument("--iterations", type=int, default=None,
                   help="stop after N refreshes (default: run forever)")
    q.set_defaults(func=cmd_serve_top)

    q = lab_sub.add_parser("gc", parents=[common],
                           help="evict stored results")
    q.add_argument("--cache-dir")
    q.add_argument("--max-entries", type=int, default=None,
                   help="keep only the newest N objects")
    q.add_argument("--max-age-days", type=float, default=None,
                   help="drop objects older than this many days")
    q.add_argument("--all", action="store_true",
                   help="clear every stored object")
    q.set_defaults(func=cmd_lab_gc)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args.console = Console(quiet=bool(getattr(args, "quiet", False)))
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (head,
        # less q). Detach stdout so the interpreter's shutdown flush
        # does not raise again, and exit as the consumer intended.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
