"""Interval analysis — the paper's primary contribution.

Interval analysis models superscalar execution as a sequence of
*inter-miss intervals*: stretches of dynamic instructions delimited by
miss events (branch mispredictions, I-cache misses, long D-cache
misses). Between events the processor sustains its dispatch width;
each event charges a penalty whose structure this package measures,
models, and decomposes.

Modules
-------
``segmentation``
    Cuts a simulation's event log into intervals and computes the
    instructions-since-last-miss-event statistics (burstiness, C2).
``penalty``
    Measures each branch misprediction's penalty and splits it into
    resolution time + frontend refill; aggregates per workload and per
    interval-length bucket.
``ilp``
    The window-drain ILP model: per-window critical-path profiles
    K(w) = alpha * w^beta, fitted from the trace's dependence graph
    (C3), plus backward-slice critical paths of individual branches.
``contributors``
    Quantifies the paper's five contributors per misprediction by
    evaluating the branch's backward slice under incremental latency
    models (unit -> FU -> FU+short-miss) plus the refill.
``model``
    First-order interval CPI model: predicts total CPI and the mean
    misprediction penalty from trace statistics and the ILP fit, for
    validation against simulation (T3).
``fast_sim``
    Interval *simulation*: the one-pass analytical simulator this
    paper's analysis later grew into (the Sniper lineage) — per-event
    backward-slice penalties at a 10-50x speedup over the cycle core.
``cpi_stack``
    Interval-style CPI stacks (base / bpred / I-cache / long D-cache).
"""

from repro.interval.segmentation import (
    Interval,
    IntervalBreakdown,
    segment_intervals,
)
from repro.interval.penalty import (
    PenaltyDecomposition,
    PenaltyReport,
    bucket_resolution_by_gap,
    measure_penalties,
)
from repro.interval.ilp import (
    ILPFit,
    backward_slice_latency,
    fit_ilp_profile,
    window_criticality,
)
from repro.interval.contributors import (
    ContributorBreakdown,
    decompose_contributors,
)
from repro.interval.model import IntervalModel, ModelPrediction
from repro.interval.fast_sim import (
    FastEstimate,
    FastIntervalSimulator,
    compare_with_detailed,
)
from repro.interval.cpi_stack import CPIStack, build_cpi_stack
from repro.interval.visualize import (
    TimelinePoint,
    interval_timeline,
    pick_illustrative_event,
    render_timeline,
)
from repro.interval.occupancy import (
    OccupancySummary,
    occupancy_at_dispatch,
    occupancy_trace,
    summarize_occupancy,
)

__all__ = [
    "Interval",
    "IntervalBreakdown",
    "segment_intervals",
    "PenaltyDecomposition",
    "PenaltyReport",
    "measure_penalties",
    "bucket_resolution_by_gap",
    "ILPFit",
    "fit_ilp_profile",
    "window_criticality",
    "backward_slice_latency",
    "ContributorBreakdown",
    "decompose_contributors",
    "IntervalModel",
    "ModelPrediction",
    "FastEstimate",
    "FastIntervalSimulator",
    "compare_with_detailed",
    "CPIStack",
    "build_cpi_stack",
    "TimelinePoint",
    "interval_timeline",
    "pick_illustrative_event",
    "render_timeline",
    "OccupancySummary",
    "occupancy_at_dispatch",
    "occupancy_trace",
    "summarize_occupancy",
]
