"""Window (ROB) occupancy reconstruction from a simulation timeline.

Contributor C2 works through the window occupancy at branch dispatch;
this module reconstructs the full occupancy-over-time signal from the
per-instruction dispatch/commit cycles, so occupancy can be studied
directly: its distribution, its trajectory around miss events, and its
correlation with resolution times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.pipeline.result import SimulationResult
from repro.util.stats import OnlineStats


@dataclass(frozen=True)
class OccupancySummary:
    """Distribution summary of window occupancy over time."""

    mean: float
    peak: int
    p50: int
    p90: int
    full_fraction: float  # fraction of cycles at >= capacity

    def rows(self) -> List[Tuple[str, float]]:
        return [
            ("mean occupancy", self.mean),
            ("median occupancy", float(self.p50)),
            ("p90 occupancy", float(self.p90)),
            ("peak occupancy", float(self.peak)),
            ("fraction of cycles window-full", self.full_fraction),
        ]


def occupancy_events(result: SimulationResult) -> List[Tuple[int, int]]:
    """(cycle, delta) events: +1 at each dispatch, -1 after each commit.

    Requires a recorded timeline.
    """
    if result.dispatch_cycle is None or result.commit_cycle is None:
        raise ValueError("timeline recording was disabled for this run")
    events: List[Tuple[int, int]] = []
    for cycle in result.dispatch_cycle:
        events.append((cycle, +1))
    for cycle in result.commit_cycle:
        # commit precedes dispatch within a cycle, so the slot frees at
        # the commit cycle itself; sorting puts the -1 first at ties.
        events.append((cycle, -1))
    events.sort()
    return events


def occupancy_trace(result: SimulationResult) -> List[Tuple[int, int]]:
    """Piecewise-constant occupancy: (cycle, occupancy) change points."""
    points: List[Tuple[int, int]] = []
    occupancy = 0
    for cycle, delta in occupancy_events(result):
        occupancy += delta
        if points and points[-1][0] == cycle:
            points[-1] = (cycle, occupancy)
        else:
            points.append((cycle, occupancy))
    return points


def summarize_occupancy(
    result: SimulationResult, capacity: int
) -> OccupancySummary:
    """Time-weighted occupancy distribution over the whole run."""
    if capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {capacity}")
    points = occupancy_trace(result)
    if not points:
        return OccupancySummary(0.0, 0, 0, 0, 0.0)
    # Time-weighted accumulation between change points.
    weights: dict = {}
    total_cycles = 0
    stats = OnlineStats()
    for (cycle, occupancy), nxt in zip(points, points[1:] + [(result.cycles, 0)]):
        span = max(nxt[0] - cycle, 0)
        if span == 0:
            continue
        weights[occupancy] = weights.get(occupancy, 0) + span
        total_cycles += span
    if not total_cycles:
        return OccupancySummary(0.0, result.rob_peak_occupancy, 0, 0, 0.0)
    mean = sum(occ * span for occ, span in weights.items()) / total_cycles
    full = sum(span for occ, span in weights.items() if occ >= capacity)

    def percentile(q: float) -> int:
        threshold = q * total_cycles
        acc = 0
        for occ in sorted(weights):
            acc += weights[occ]
            if acc >= threshold:
                return occ
        return max(weights)

    del stats  # OnlineStats not needed for the weighted path
    return OccupancySummary(
        mean=mean,
        peak=max(weights),
        p50=percentile(0.5),
        p90=percentile(0.9),
        full_fraction=full / total_cycles,
    )


def occupancy_at_dispatch(result: SimulationResult) -> List[int]:
    """Occupancy seen by each instruction as it dispatched (cheap
    reconstruction: instructions dispatched-but-not-yet-committed)."""
    if result.dispatch_cycle is None or result.commit_cycle is None:
        raise ValueError("timeline recording was disabled for this run")
    n = result.instructions
    occupancies: List[int] = []
    # Two-pointer sweep over commit cycles sorted by seq (program order
    # commits make commit_cycle non-decreasing).
    committed = 0
    for seq in range(n):
        dispatch = result.dispatch_cycle[seq]
        while (
            committed < seq and result.commit_cycle[committed] <= dispatch
        ):
            committed += 1
        occupancies.append(seq - committed)
    return occupancies
