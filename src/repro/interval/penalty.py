"""Branch misprediction penalty measurement and aggregation.

The paper's central measurement: for every mispredicted branch,

``penalty = resolution + refill``

where *resolution* is dispatch→execute of the branch and *refill* the
frontend pipeline depth. This module aggregates those measurements per
workload and characterizes contributor C2 by bucketing resolution times
against the number of instructions since the previous miss event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.interval.segmentation import segment_intervals
from repro.pipeline.events import BranchMispredictEvent, MissEventKind
from repro.pipeline.result import SimulationResult
from repro.util.stats import Histogram, OnlineStats, bucketize


@dataclass(frozen=True)
class PenaltyDecomposition:
    """One misprediction's measured penalty pieces.

    ``prev_kind`` is the kind of the miss event that ended the previous
    interval (None for the first interval). It matters for the C2
    characterization: after a branch misprediction or I-cache miss the
    window restarts empty, so the gap measures window occupancy; after
    a long D-cache miss the window is still full of stalled work and
    the gap-occupancy correspondence breaks (the long-miss shadow).
    """

    seq: int
    resolution: int
    refill: int
    window_occupancy: int
    gap: int  # instructions since the previous miss event
    prev_kind: "MissEventKind" = None

    @property
    def penalty(self) -> int:
        return self.resolution + self.refill

    @property
    def in_long_miss_shadow(self) -> bool:
        return self.prev_kind is MissEventKind.LONG_DCACHE_MISS


@dataclass
class PenaltyReport:
    """Aggregate penalty statistics for one run."""

    decompositions: List[PenaltyDecomposition]
    frontend_depth: int
    resolution_stats: OnlineStats = field(default_factory=OnlineStats)
    penalty_histogram: Histogram = field(default_factory=Histogram)

    @property
    def count(self) -> int:
        return len(self.decompositions)

    @property
    def mean_resolution(self) -> float:
        return self.resolution_stats.mean

    @property
    def mean_penalty(self) -> float:
        return self.mean_resolution + self.frontend_depth

    @property
    def penalty_over_refill(self) -> float:
        """How much larger the true penalty is than the refill alone —
        the paper's headline ratio (folk wisdom says 1.0)."""
        if not self.frontend_depth:
            return 0.0
        return self.mean_penalty / self.frontend_depth

    def percentile_penalty(self, q: float) -> int:
        return self.penalty_histogram.percentile(q)


def measure_penalties(result: SimulationResult) -> PenaltyReport:
    """Measure every misprediction's penalty in one simulation."""
    breakdown = segment_intervals(result)
    gap_by_seq: Dict[int, int] = {}
    prev_kind_by_seq: Dict[int, object] = {}
    previous_kind = None
    for interval in breakdown.intervals:
        if interval.kind is MissEventKind.BRANCH_MISPREDICT:
            gap_by_seq[interval.end_seq] = interval.gap
            prev_kind_by_seq[interval.end_seq] = previous_kind
        previous_kind = interval.kind

    decompositions: List[PenaltyDecomposition] = []
    refill = 0
    for event in result.events:
        if not isinstance(event, BranchMispredictEvent):
            continue
        refill = event.refill_cycles
        decompositions.append(
            PenaltyDecomposition(
                seq=event.seq,
                resolution=event.resolution,
                refill=event.refill_cycles,
                window_occupancy=event.window_occupancy,
                gap=gap_by_seq.get(event.seq, event.seq),
                prev_kind=prev_kind_by_seq.get(event.seq),
            )
        )
    report = PenaltyReport(decompositions=decompositions, frontend_depth=refill)
    san = _sanitizer.current()
    for item in decompositions:
        report.resolution_stats.add(item.resolution)
        report.penalty_histogram.add(item.penalty)
        if san is not None:
            san.check_penalty_decomposition(item)
    return report


DEFAULT_GAP_EDGES: Tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256)


def bucket_resolution_by_gap(
    report: PenaltyReport,
    edges: Sequence[int] = DEFAULT_GAP_EDGES,
    exclude_long_miss_shadow: bool = False,
) -> List[Tuple[str, int, float]]:
    """Average resolution time per instructions-since-last-event bucket.

    Returns (bucket label, count, mean resolution) rows — the F4
    characterization of contributor C2: short gaps mean a near-empty
    window and fast resolution; long gaps saturate at the full window
    drain time.

    ``exclude_long_miss_shadow`` drops mispredictions whose previous
    event was a long D-cache miss: the window is still full of stalled
    work behind such an event, so the gap does not measure occupancy
    there and the correlation inverts (most visibly on mcf).
    """
    buckets: List[OnlineStats] = [OnlineStats() for _ in range(len(edges) + 1)]
    for item in report.decompositions:
        if exclude_long_miss_shadow and item.in_long_miss_shadow:
            continue
        buckets[bucketize(item.gap, edges)].add(item.resolution)
    rows = []
    lower = 0
    for i, edge in enumerate(edges):
        label = f"{lower}-{edge}"
        rows.append((label, buckets[i].count, buckets[i].mean))
        lower = edge + 1
    rows.append((f">{edges[-1]}", buckets[-1].count, buckets[-1].mean))
    return rows


def mean_resolution_by_occupancy(
    report: PenaltyReport, edges: Sequence[int] = DEFAULT_GAP_EDGES
) -> List[Tuple[str, int, float]]:
    """Average resolution per window-occupancy-at-dispatch bucket."""
    buckets: List[OnlineStats] = [OnlineStats() for _ in range(len(edges) + 1)]
    for item in report.decompositions:
        buckets[bucketize(item.window_occupancy, edges)].add(item.resolution)
    rows = []
    lower = 0
    for i, edge in enumerate(edges):
        rows.append((f"{lower}-{edge}", buckets[i].count, buckets[i].mean))
        lower = edge + 1
    rows.append((f">{edges[-1]}", buckets[-1].count, buckets[-1].mean))
    return rows
