"""Five-way decomposition of the branch misprediction penalty.

The paper's contribution is to identify and quantify five contributors.
We quantify them per misprediction by evaluating the branch's backward
slice (the dependence chain the branch waits on, restricted to the
window content at dispatch) under incrementally richer latency models:

=====  ======================================  =========================
piece  measured as                              paper contributor
=====  ======================================  =========================
C1     frontend refill (constant)               frontend pipeline length
C2     reflected in the slice depth via the     instructions since last
       window occupancy at dispatch             miss event (burstiness)
C3     slice critical path, unit latencies      inherent program ILP
C4     + (FU latencies) - (unit latencies)      functional unit latency
C5     + (FU + D-cache) - (FU only)             short L1 D-cache misses
=====  ======================================  =========================

The issue/dispatch overhead not explained by the slice (scheduling,
width contention) is reported separately as ``residual`` so that the
pieces plus the residual always sum to the measured penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.interval.ilp import (
    backward_slice_latency,
    fu_latency,
    full_latency,
    unit_latency,
)
from repro.interval.penalty import PenaltyReport, measure_penalties
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace


@dataclass
class ContributorBreakdown:
    """Average per-misprediction attribution (cycles)."""

    count: int
    refill: float  # C1
    mean_gap: float  # C2 (reported as the driver, in instructions)
    mean_occupancy: float  # C2's machine-level expression
    ilp_chain: float  # C3: unit-latency slice depth
    fu_latency_extra: float  # C4
    short_miss_extra: float  # C5
    residual: float  # scheduling/width effects not in the slice
    mean_resolution: float
    mean_penalty: float

    @property
    def explained(self) -> float:
        """Slice-explained share of the resolution time."""
        return self.ilp_chain + self.fu_latency_extra + self.short_miss_extra

    def rows(self) -> List[tuple]:
        """Rows for the F11 table."""
        return [
            ("C1 frontend refill", self.refill),
            ("C3 inherent-ILP chain (unit latency)", self.ilp_chain),
            ("C4 functional-unit latency", self.fu_latency_extra),
            ("C5 short (L1) D-cache misses", self.short_miss_extra),
            ("scheduling residual", self.residual),
            ("total penalty", self.mean_penalty),
            ("(C2 driver: mean instrs since last event)", self.mean_gap),
            ("(C2 expression: mean window occupancy)", self.mean_occupancy),
        ]


def decompose_contributors(
    trace: Trace,
    result: SimulationResult,
    config: CoreConfig,
    report: Optional[PenaltyReport] = None,
    max_events: Optional[int] = None,
) -> ContributorBreakdown:
    """Attribute each misprediction's penalty to the five contributors.

    ``max_events`` caps how many mispredictions are sliced (they are
    sampled uniformly from the front of the run) to bound analysis time
    on very long traces.
    """
    if report is None:
        report = measure_penalties(result)
    items = report.decompositions
    if max_events is not None:
        items = items[:max_events]
    if not items:
        return ContributorBreakdown(
            count=0,
            refill=float(config.frontend_depth),
            mean_gap=0.0,
            mean_occupancy=0.0,
            ilp_chain=0.0,
            fu_latency_extra=0.0,
            short_miss_extra=0.0,
            residual=0.0,
            mean_resolution=0.0,
            mean_penalty=float(config.frontend_depth),
        )

    lat_unit = unit_latency(trace)
    lat_fu = fu_latency(trace, config.fu_specs, config)
    lat_full = full_latency(trace, config.fu_specs, config)

    # Producers that finished executing before the branch dispatched do
    # not delay it: anchor the slice at the branch's dispatch cycle.
    complete = result.complete_cycle
    dispatch = result.dispatch_cycle

    total_unit = 0.0
    total_fu = 0.0
    total_full = 0.0
    total_resolution = 0.0
    total_gap = 0.0
    total_occ = 0.0
    for item in items:
        window_start = max(0, item.seq - item.window_occupancy)
        if complete is not None and dispatch is not None:
            branch_dispatch = dispatch[item.seq]

            def satisfied(seq: int, _at: int = branch_dispatch) -> bool:
                return complete[seq] != 0 and complete[seq] <= _at
        else:
            satisfied = None
        unit_depth = backward_slice_latency(
            trace, item.seq, window_start, lat_unit, satisfied=satisfied
        )
        fu_depth = backward_slice_latency(
            trace, item.seq, window_start, lat_fu, satisfied=satisfied
        )
        full_depth = backward_slice_latency(
            trace, item.seq, window_start, lat_full, satisfied=satisfied
        )
        total_unit += unit_depth
        total_fu += fu_depth
        total_full += full_depth
        total_resolution += item.resolution
        total_gap += item.gap
        total_occ += item.window_occupancy

    n = len(items)
    mean_unit = total_unit / n
    mean_fu = total_fu / n
    mean_full = total_full / n
    mean_resolution = total_resolution / n
    return ContributorBreakdown(
        count=n,
        refill=float(config.frontend_depth),
        mean_gap=total_gap / n,
        mean_occupancy=total_occ / n,
        ilp_chain=mean_unit,
        fu_latency_extra=mean_fu - mean_unit,
        short_miss_extra=mean_full - mean_fu,
        residual=mean_resolution - mean_full,
        mean_resolution=mean_resolution,
        mean_penalty=mean_resolution + config.frontend_depth,
    )
