"""Interval segmentation: cutting execution at miss events.

An *interval* is the run of dynamic instructions from just after one
miss event up to and including the next one. The first interval starts
at instruction 0; if the trace ends without a final event, the tail
forms a trailing event-less interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.obs import runtime as _obs
from repro.pipeline.events import MissEvent, MissEventKind
from repro.pipeline.result import SimulationResult
from repro.util.stats import Histogram


@dataclass(frozen=True)
class Interval:
    """One inter-miss interval.

    ``start_seq`` is the first instruction of the interval;
    ``end_seq`` the index of the terminating event's instruction
    (inclusive). ``event`` is None only for a trailing tail interval.
    """

    start_seq: int
    end_seq: int
    event: Optional[MissEvent]

    @property
    def length(self) -> int:
        """Number of instructions in the interval (>= 1)."""
        return self.end_seq - self.start_seq + 1

    @property
    def gap(self) -> int:
        """Instructions *before* the event since the previous event —
        the paper's "number of instructions since the last miss event"
        (contributor C2)."""
        return self.end_seq - self.start_seq

    @property
    def kind(self) -> Optional[MissEventKind]:
        return self.event.kind if self.event is not None else None


@dataclass
class IntervalBreakdown:
    """All intervals of a run plus summary statistics."""

    intervals: List[Interval]
    instructions: int

    @property
    def event_count(self) -> int:
        return sum(1 for iv in self.intervals if iv.event is not None)

    def by_kind(self, kind: MissEventKind) -> List[Interval]:
        return [iv for iv in self.intervals if iv.kind is kind]

    def counts_by_kind(self) -> dict:
        counts: dict = {}
        for interval in self.intervals:
            if interval.kind is not None:
                counts[interval.kind] = counts.get(interval.kind, 0) + 1
        return counts

    def length_histogram(self, kind: Optional[MissEventKind] = None) -> Histogram:
        """Histogram of interval lengths (optionally one event kind)."""
        hist = Histogram()
        for interval in self.intervals:
            if interval.event is None:
                continue
            if kind is not None and interval.kind is not kind:
                continue
            hist.add(interval.length)
        return hist

    @property
    def mean_interval_length(self) -> float:
        lengths = [iv.length for iv in self.intervals if iv.event is not None]
        if not lengths:
            return 0.0
        return sum(lengths) / len(lengths)

    def burstiness(self) -> float:
        """Coefficient of variation of interval lengths.

        Pure Bernoulli event placement gives CV ~= 1 (geometric gaps);
        clustered (bursty) miss events push CV above 1.
        """
        lengths = [iv.length for iv in self.intervals if iv.event is not None]
        if len(lengths) < 2:
            return 0.0
        mean = sum(lengths) / len(lengths)
        if mean == 0:
            return 0.0
        var = sum((x - mean) ** 2 for x in lengths) / (len(lengths) - 1)
        return var**0.5 / mean


def segment_intervals(result: SimulationResult) -> IntervalBreakdown:
    """Segment a simulation's committed stream into intervals.

    Events are cut points in dynamic-instruction order. Multiple events
    on the same instruction (e.g. an I-cache miss on a mispredicted
    branch) are merged into one interval terminated by the
    highest-priority event (mispredict > long D-miss > I-cache miss),
    matching the paper's treatment of overlapping events.
    """
    priority = {
        MissEventKind.BRANCH_MISPREDICT: 0,
        MissEventKind.LONG_DCACHE_MISS: 1,
        MissEventKind.ICACHE_MISS: 2,
    }
    by_seq: dict = {}
    for event in result.events:
        current = by_seq.get(event.seq)
        if current is None or priority[event.kind] < priority[current.kind]:
            by_seq[event.seq] = event
    intervals: List[Interval] = []
    start = 0
    for seq in sorted(by_seq):
        event = by_seq[seq]
        if seq < start:
            continue  # defensive: events must not precede the interval
        intervals.append(Interval(start_seq=start, end_seq=seq, event=event))
        start = seq + 1
    if start < result.instructions:
        intervals.append(
            Interval(start_seq=start, end_seq=result.instructions - 1, event=None)
        )
    _observe_intervals(result, intervals)
    return IntervalBreakdown(intervals=intervals, instructions=result.instructions)


def _observe_intervals(result: SimulationResult, intervals: List[Interval]) -> None:
    """Emit interval-boundary instants and length metrics, once per result.

    Segmentation is re-run by several analyses over the same result
    (penalty measurement, the CPI stack), so the emission is keyed on the
    result object to keep traces and metrics free of duplicates.
    """
    tracer = _obs.current_tracer()
    metrics = _obs.current_metrics()
    if tracer is None and metrics is None:
        return
    if getattr(result, "_obs_segmented", False):
        return
    result._obs_segmented = True
    m_length = (
        metrics.histogram("interval.length_instructions")
        if metrics is not None
        else None
    )
    m_events = (
        metrics.counter("interval.events_total") if metrics is not None else None
    )
    for interval in intervals:
        if interval.event is None:
            continue
        if m_length is not None:
            m_length.add(interval.length)
            m_events.inc()
        if tracer is not None:
            tracer.instant(
                "interval_boundary",
                cycle=interval.event.cycle,
                seq=interval.end_seq,
                length_instructions=interval.length,
                kind=interval.event.kind.value,
            )
