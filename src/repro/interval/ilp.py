"""The ILP / window-drain model underpinning contributor C3.

Interval analysis models the branch resolution time as the time needed
to drain the dependence chain feeding the branch out of the window.
Two tools implement that here:

* an *ILP profile*: the average dataflow critical-path length ``K(w)``
  of consecutive ``w``-instruction windows, fitted to the power law
  ``K(w) = alpha * w**beta`` (classically ``beta ~ 0.5``);
* exact *backward-slice* evaluation: the critical path, under a chosen
  latency function, of the chain ending at one specific branch within
  its window — the measurable core of the five-way decomposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.isa.opcodes import OpClass
from repro.trace.stream import Trace

LatencyFn = Callable[[int], int]  # seq -> execution latency in cycles


def unit_latency(trace: Trace) -> LatencyFn:
    """Every instruction takes one cycle — the pure-ILP measure."""
    return lambda seq: 1


def fu_latency(trace: Trace, fu_specs, config=None) -> LatencyFn:
    """Functional-unit latencies, L1-hit memory (isolates C4 from C5).

    When ``config`` is given, loads are charged the L1-hit latency —
    the baseline load-to-use cost, which belongs with the functional
    unit latencies (C4), not with the short-miss contribution (C5).
    """
    records = trace.records
    l1_latency = config.l1_latency if config is not None else 0

    def latency(seq: int) -> int:
        record = records[seq]
        base = fu_specs[record.op_class].latency
        if record.op_class is OpClass.LOAD:
            base += l1_latency
        return base

    return latency


def full_latency(trace: Trace, fu_specs, config) -> LatencyFn:
    """FU + L1 latencies plus each load's actual miss latency (adds C5)."""
    records = trace.records

    def latency(seq: int) -> int:
        record = records[seq]
        base = fu_specs[record.op_class].latency
        if record.op_class is OpClass.LOAD:
            if record.dl2_miss:
                base += config.memory_latency
            elif record.dl1_miss:
                base += config.l2_latency
            else:
                base += config.l1_latency
        return base

    return latency


def window_criticality(
    trace: Trace,
    window: int,
    latency_of: Optional[LatencyFn] = None,
    stride: Optional[int] = None,
) -> float:
    """Average critical-path length of ``window``-sized chunks.

    Consecutive (non-overlapping by default) windows of the trace are
    evaluated as independent dataflow graphs: dependences reaching
    before the window are treated as satisfied, exactly as a window
    full of post-miss instructions would see them.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if latency_of is None:
        latency_of = unit_latency(trace)
    records = trace.records
    if not records:
        return 0.0
    stride = stride or window
    total = 0.0
    count = 0
    for start in range(0, max(len(records) - window + 1, 1), stride):
        stop = min(start + window, len(records))
        finish = [0] * (stop - start)
        longest = 0
        for offset in range(stop - start):
            seq = start + offset
            begin = 0
            for dist in records[seq].deps:
                producer = seq - dist
                if producer >= start:
                    begin = max(begin, finish[producer - start])
            done = begin + latency_of(seq)
            finish[offset] = done
            longest = max(longest, done)
        total += longest
        count += 1
    return total / count


@dataclass(frozen=True)
class ILPFit:
    """Power-law fit ``K(w) = alpha * w**beta`` of the ILP profile."""

    alpha: float
    beta: float
    windows: Tuple[int, ...]
    criticality: Tuple[float, ...]

    def predict_drain(self, occupancy: float) -> float:
        """Predicted drain (resolution) time for a window holding
        ``occupancy`` instructions."""
        if occupancy <= 0:
            return 0.0
        return self.alpha * occupancy**self.beta

    def predict_ipc(self, window: int) -> float:
        """Steady-state issue rate sustained with a window of size w."""
        drain = self.predict_drain(window)
        if drain <= 0:
            return 0.0
        return window / drain

    @property
    def r_squared(self) -> float:
        """Goodness of the fit in log space."""
        logs = [math.log(k) for k in self.criticality if k > 0]
        if len(logs) < 2:
            return 1.0
        mean = sum(logs) / len(logs)
        ss_tot = sum((y - mean) ** 2 for y in logs)
        ss_res = 0.0
        for w, k in zip(self.windows, self.criticality):
            if k <= 0:
                continue
            predicted = math.log(self.alpha) + self.beta * math.log(w)
            ss_res += (math.log(k) - predicted) ** 2
        if ss_tot == 0:
            return 1.0
        return 1.0 - ss_res / ss_tot


DEFAULT_ILP_WINDOWS: Tuple[int, ...] = (8, 16, 32, 64, 128, 256)


def fit_ilp_profile(
    trace: Trace,
    windows: Sequence[int] = DEFAULT_ILP_WINDOWS,
    latency_of: Optional[LatencyFn] = None,
) -> ILPFit:
    """Measure K(w) over ``windows`` and fit the power law in log space."""
    if len(windows) < 2:
        raise ValueError("need at least two window sizes to fit")
    ks = [window_criticality(trace, w, latency_of) for w in windows]
    xs = [math.log(w) for w in windows]
    ys = [math.log(max(k, 1e-9)) for k in ks]
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    beta = sxy / sxx if sxx else 0.0
    alpha = math.exp(mean_y - beta * mean_x)
    return ILPFit(
        alpha=alpha,
        beta=beta,
        windows=tuple(windows),
        criticality=tuple(ks),
    )


def backward_slice_latency(
    trace: Trace,
    branch_seq: int,
    window_start: int,
    latency_of: LatencyFn,
    satisfied: Optional[Callable[[int], bool]] = None,
) -> int:
    """Critical-path length of the chain ending at ``branch_seq``.

    Only instructions in ``[window_start, branch_seq]`` participate —
    the window content when the branch dispatched. Dependences that
    reach before the window are treated as already satisfied, matching
    the machine (those producers committed long ago). ``satisfied``
    optionally marks additional producers as already complete — the
    contributor decomposition passes the instructions whose simulated
    completion preceded the branch's dispatch, anchoring the slice at
    the moment the resolution clock starts.
    """
    if not 0 <= window_start <= branch_seq < len(trace.records):
        raise ValueError(
            f"bad slice bounds [{window_start}, {branch_seq}] "
            f"for trace of {len(trace.records)}"
        )
    records = trace.records

    def in_window(seq: int) -> bool:
        if seq < window_start:
            return False
        return satisfied is None or not satisfied(seq)

    # Collect the backward slice by walking dependences from the branch.
    in_slice = {branch_seq}
    stack = [branch_seq]
    while stack:
        seq = stack.pop()
        for dist in records[seq].deps:
            producer = seq - dist
            if producer >= 0 and in_window(producer) and producer not in in_slice:
                in_slice.add(producer)
                stack.append(producer)
    # Evaluate finish times in program order over the slice.
    finish = {}
    for seq in sorted(in_slice):
        begin = 0
        for dist in records[seq].deps:
            producer = seq - dist
            if producer in finish:
                begin = max(begin, finish[producer])
        finish[seq] = begin + latency_of(seq)
    return finish[branch_seq]
