"""Interval simulation: a fast analytical alternative to cycle simulation.

This paper's interval analysis later grew into *interval simulation*
(the Sniper simulator): instead of simulating every cycle, walk the
dynamic stream once, charge ``1/D`` cycle per instruction between miss
events, and charge each miss event its analytically derived penalty.
This module implements that idea over our annotated traces:

* between events, instructions cost ``1 / dispatch_width`` cycles;
* a branch misprediction costs its *measured backward slice*: the
  critical path, under steady-state latencies, of the dependence chain
  feeding the branch within the window content at dispatch (bounded by
  the gap to the previous event and the ROB) — plus the frontend
  refill;
* an I-cache miss costs its fill latency;
* a long D-cache miss costs the memory latency, with overlap-merging of
  independent misses within one window (and serialization of dependent
  ones).

Compared with :class:`~repro.interval.model.IntervalModel` (which uses
the fitted power law K(w)), interval simulation evaluates each branch's
*actual* slice, trading a little speed for per-event fidelity — it is
typically 10-50x faster than the cycle-level core at a few percent CPI
error.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.interval.ilp import backward_slice_latency
from repro.obs import runtime as _obs
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace
from repro.util.timing import Stopwatch


@dataclass
class FastEstimate:
    """Result of one interval-simulation pass."""

    instructions: int
    base_cycles: float
    mispredict_cycles: float
    icache_cycles: float
    long_dmiss_cycles: float
    mispredict_count: int
    icache_count: int
    long_dmiss_count: int
    resolutions: List[int] = field(default_factory=list, repr=False)
    wall_seconds: float = 0.0

    @property
    def cycles(self) -> float:
        return (
            self.base_cycles
            + self.mispredict_cycles
            + self.icache_cycles
            + self.long_dmiss_cycles
        )

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    @property
    def ipc(self) -> float:
        if not self.cycles:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mean_penalty(self) -> float:
        if not self.mispredict_count:
            return 0.0
        return self.mispredict_cycles / self.mispredict_count

    def error_vs(self, result: SimulationResult) -> float:
        """Relative cycle error against a detailed simulation."""
        if not result.cycles:
            return 0.0
        return (self.cycles - result.cycles) / result.cycles

    def speedup_vs(self, detailed_seconds: float) -> float:
        """Wall-clock speedup over a detailed simulation's runtime."""
        if self.wall_seconds <= 0:
            return float("inf")
        return detailed_seconds / self.wall_seconds


class FastIntervalSimulator:
    """One-pass interval simulation over an annotated trace."""

    def __init__(self, config: CoreConfig = CoreConfig()):
        self.config = config
        # trace -> (trace.version, {consumer seq -> upstream reach set}).
        # Weak keys so discarded traces don't pin their reach sets.
        self._reach_cache: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )

    def _steady_latency(self, trace: Trace):
        config = self.config
        records = trace.records

        def latency(seq: int) -> int:
            record = records[seq]
            base = config.fu_specs[record.op_class].latency
            if record.is_load:
                base += (
                    config.l2_latency if record.dl1_miss else config.l1_latency
                )
            return base

        return latency

    @staticmethod
    def _event_stream(trace: Trace) -> List[Tuple[int, str]]:
        """(seq, kind) pairs in dynamic order; bpred shadows co-located
        events, mirroring the segmentation priority."""
        events = []
        for seq, record in enumerate(trace.records):
            if record.is_branch and record.mispredict:
                events.append((seq, "bpred"))
            elif record.il1_miss:
                events.append((seq, "icache"))
            elif record.is_load and record.dl2_miss:
                events.append((seq, "long"))
        return events

    def _depends_on(self, trace: Trace, consumer: int, producer: int) -> bool:
        """True when ``consumer`` transitively depends on ``producer``.

        Dependence paths walk strictly upstream, so ``consumer`` reaches
        ``producer`` iff ``producer`` is in the set of sequence numbers
        reachable from ``consumer`` down to ``consumer - rob_size`` —
        a set that is a property of the trace alone. That set is
        memoized per consumer (weakly keyed by trace, invalidated by
        :attr:`Trace.version`), so sweeps that re-estimate one trace
        under many configurations pay each BFS once.
        """
        floor = consumer - self.config.rob_size
        if producer < floor:
            # Outside the window the overlap logic ever asks about;
            # answer exactly without polluting the bounded cache.
            return self._bfs_depends_on(trace, consumer, producer)
        per_trace = self._reach_cache.get(trace)
        version = getattr(trace, "version", 0)
        if per_trace is None or per_trace[0] != version:
            per_trace = (version, {})
            self._reach_cache[trace] = per_trace
        reach = per_trace[1].get(consumer)
        if reach is None:
            reach = self._reachable_upstream(trace, consumer, floor)
            per_trace[1][consumer] = reach
        return producer in reach

    def _reachable_upstream(
        self, trace: Trace, consumer: int, floor: int
    ) -> Set[int]:
        """All seqs in ``[floor, consumer)`` reachable from ``consumer``."""
        records = trace.records
        frontier = [consumer]
        reach: Set[int] = set()
        while frontier:
            seq = frontier.pop()
            for dist in records[seq].deps:
                upstream = seq - dist
                if upstream >= floor and upstream not in reach:
                    reach.add(upstream)
                    frontier.append(upstream)
        return reach

    @staticmethod
    def _bfs_depends_on(trace: Trace, consumer: int, producer: int) -> bool:
        records = trace.records
        frontier = [consumer]
        seen = set()
        while frontier:
            seq = frontier.pop()
            for dist in records[seq].deps:
                upstream = seq - dist
                if upstream == producer:
                    return True
                if upstream > producer and upstream not in seen:
                    seen.add(upstream)
                    frontier.append(upstream)
        return False

    def estimate(self, trace: Trace) -> FastEstimate:
        """Run the one-pass estimate; returns cycles and components."""
        watch = Stopwatch()
        config = self.config
        n = len(trace.records)
        latency = self._steady_latency(trace)
        events = self._event_stream(trace)

        base_cycles = n / config.dispatch_width
        mispredict_cycles = 0.0
        icache_cycles = 0.0
        long_cycles = 0.0
        mispredict_count = 0
        icache_count = 0
        resolutions: List[int] = []
        last_event = -1
        previous_long: Optional[int] = None
        long_count = 0

        for seq, kind in events:
            if kind == "bpred":
                gap = seq - last_event - 1
                occupancy = min(gap, config.rob_size)
                window_start = max(0, seq - occupancy)
                resolution = backward_slice_latency(
                    trace, seq, window_start, latency
                )
                resolutions.append(resolution)
                mispredict_cycles += resolution + config.frontend_depth
                mispredict_count += 1
            elif kind == "icache":
                icache_cycles += config.l2_latency
                icache_count += 1
            else:
                long_count += 1
                independent = (
                    previous_long is None
                    or seq - previous_long > config.rob_size
                    or self._depends_on(trace, seq, previous_long)
                )
                if independent:
                    long_cycles += config.memory_latency
                previous_long = seq
            last_event = seq

        estimate = FastEstimate(
            instructions=n,
            base_cycles=base_cycles,
            mispredict_cycles=mispredict_cycles,
            icache_cycles=icache_cycles,
            long_dmiss_cycles=long_cycles,
            mispredict_count=mispredict_count,
            icache_count=icache_count,
            long_dmiss_count=long_count,
            resolutions=resolutions,
            wall_seconds=watch.elapsed,
        )
        prof = _obs.current_profiler()
        if prof is not None:
            prof.add("fast_sim.estimate", estimate.wall_seconds)
        metrics = _obs.current_metrics()
        if metrics is not None:
            metrics.counter("fast_sim.estimates_total").inc()
            metrics.counter("fast_sim.mispredicts_total").inc(mispredict_count)
            metrics.counter("fast_sim.instructions_total").inc(n)
        san = _sanitizer.current()
        if san is not None:
            san.check_fast_estimate(estimate, config.frontend_depth)
        return estimate


def compare_with_detailed(
    trace: Trace, config: CoreConfig = CoreConfig()
) -> Dict[str, float]:
    """Run both simulators on the same trace; return the comparison.

    Keys: ``detailed_cycles``, ``fast_cycles``, ``cpi_error``,
    ``speedup``, ``detailed_penalty``, ``fast_penalty``.
    """
    from repro.interval.penalty import measure_penalties
    from repro.pipeline.core import simulate

    watch = Stopwatch()
    detailed = simulate(trace, config)
    detailed_seconds = watch.elapsed

    fast = FastIntervalSimulator(config).estimate(trace)
    report = measure_penalties(detailed)
    return {
        "detailed_cycles": float(detailed.cycles),
        "fast_cycles": fast.cycles,
        "cpi_error": fast.error_vs(detailed),
        "speedup": fast.speedup_vs(detailed_seconds),
        "detailed_penalty": report.mean_penalty,
        "fast_penalty": fast.mean_penalty,
        "detailed_seconds": detailed_seconds,
        "fast_seconds": fast.wall_seconds,
    }
