"""Interval timeline extraction and rendering (figure F1).

Turns a simulation's per-instruction dispatch cycles into the classic
interval-analysis "sawtooth": dispatch rate over time around a miss
event — steady at the machine width, collapsing when the event hits,
recovering after resolve + refill.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.pipeline.events import BranchMispredictEvent
from repro.pipeline.result import SimulationResult


@dataclass(frozen=True)
class TimelinePoint:
    """One bucket of the dispatch-rate timeline."""

    relative_cycle: int  # bucket start, relative to the branch dispatch
    dispatch_rate: float
    phase: str  # steady | resolving | refill | ramp-up


def interval_timeline(
    result: SimulationResult,
    event: BranchMispredictEvent,
    lead_cycles: int = 30,
    trail_cycles: int = 30,
    bucket: int = 5,
) -> List[TimelinePoint]:
    """Dispatch-rate buckets around one misprediction event.

    Requires the run to have recorded its timeline
    (``CoreConfig.record_timeline``).
    """
    if result.dispatch_cycle is None:
        raise ValueError("timeline recording was disabled for this run")
    if bucket < 1:
        raise ValueError(f"bucket must be >= 1, got {bucket}")
    start = event.cycle - lead_cycles
    stop = event.resolve_cycle + event.refill_cycles + trail_cycles
    counts = {}
    for cycle in result.dispatch_cycle:
        if start <= cycle < stop:
            index = (cycle - start) // bucket
            counts[index] = counts.get(index, 0) + 1

    points: List[TimelinePoint] = []
    for index in range((stop - start) // bucket + 1):
        relative = start + index * bucket - event.cycle
        rate = counts.get(index, 0) / bucket
        if relative < 0:
            phase = "steady"
        elif relative < event.resolution:
            phase = "resolving"
        elif relative < event.resolution + event.refill_cycles:
            phase = "refill"
        else:
            phase = "ramp-up"
        points.append(
            TimelinePoint(
                relative_cycle=relative, dispatch_rate=rate, phase=phase
            )
        )
    return points


def pick_illustrative_event(
    result: SimulationResult,
    min_resolution: int = 10,
    min_occupancy: int = 32,
) -> Optional[BranchMispredictEvent]:
    """A misprediction worth plotting: long enough to show the phases.

    Falls back to the median event when none meets the thresholds;
    None when the run had no mispredictions.
    """
    events = result.mispredict_events
    if not events:
        return None
    qualified = [
        e
        for e in events
        if e.resolution >= min_resolution
        and e.window_occupancy >= min_occupancy
    ]
    pool = qualified or events
    return pool[len(pool) // 2]


def render_timeline(points: List[TimelinePoint], width: int = 40) -> str:
    """ASCII rendering: one bar per bucket, annotated with the phase."""
    if not points:
        return "(no timeline)"
    peak = max(p.dispatch_rate for p in points) or 1.0
    lines = []
    for point in points:
        bar = "#" * int(round(point.dispatch_rate / peak * width))
        lines.append(
            f"{point.relative_cycle:>6} | {bar:<{width}} "
            f"{point.dispatch_rate:4.1f}/cy  {point.phase}"
        )
    return "\n".join(lines)
