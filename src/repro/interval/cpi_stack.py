"""Interval-style CPI stacks measured from a simulation's event log.

The stack charges:

* ``base``       — N / dispatch_width, the steady-state cost;
* ``bpred``      — resolution + refill of every misprediction;
* ``icache``     — fill latency of every I-cache miss;
* ``long_dcache``— memory latency of long D-cache misses, merged when
  their in-flight windows overlap (memory-level parallelism);
* ``other``      — whatever the events do not explain (issue-width and
  dependence stalls between miss events), computed as the residual so
  the components always sum to the measured total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
)
from repro.pipeline.result import SimulationResult


@dataclass(frozen=True)
class CPIStack:
    """One workload's CPI stack (cycle components, not CPI-normalized)."""

    instructions: int
    total_cycles: int
    base: float
    bpred: float
    icache: float
    long_dcache: float
    other: float

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.total_cycles / self.instructions

    def component_cpi(self) -> Dict[str, float]:
        """Per-component CPI contributions."""
        if not self.instructions:
            return {}
        n = self.instructions
        return {
            "base": self.base / n,
            "bpred": self.bpred / n,
            "icache": self.icache / n,
            "long_dcache": self.long_dcache / n,
            "other": self.other / n,
        }

    def fractions(self) -> Dict[str, float]:
        """Per-component fraction of total cycles."""
        if not self.total_cycles:
            return {}
        return {
            name: value / self.total_cycles
            for name, value in (
                ("base", self.base),
                ("bpred", self.bpred),
                ("icache", self.icache),
                ("long_dcache", self.long_dcache),
                ("other", self.other),
            )
        }

    def rows(self) -> List[Tuple[str, float, float]]:
        """(component, cycles, fraction) rows for the F10 table."""
        fractions = self.fractions()
        return [
            (name, cycles, fractions.get(name, 0.0))
            for name, cycles in (
                ("base", self.base),
                ("bpred", self.bpred),
                ("icache", self.icache),
                ("long_dcache", self.long_dcache),
                ("other", self.other),
            )
        ]


def build_cpi_stack(
    result: SimulationResult, dispatch_width: int
) -> CPIStack:
    """Build the measured CPI stack for one simulation."""
    base = result.instructions / dispatch_width

    bpred = 0.0
    icache = 0.0
    for event in result.events:
        if isinstance(event, BranchMispredictEvent):
            bpred += event.penalty
        elif isinstance(event, ICacheMissEvent):
            icache += event.latency

    # Merge overlapping long-miss service windows (MLP).
    spans = sorted(
        (event.cycle, event.complete_cycle)
        for event in result.events
        if isinstance(event, LongDMissEvent)
    )
    long_dcache = 0.0
    merged_end = None
    for start, end in spans:
        if merged_end is None or start >= merged_end:
            long_dcache += end - start
            merged_end = end
        elif end > merged_end:
            long_dcache += end - merged_end
            merged_end = end

    other = result.cycles - base - bpred - icache - long_dcache
    stack = CPIStack(
        instructions=result.instructions,
        total_cycles=result.cycles,
        base=base,
        bpred=bpred,
        icache=icache,
        long_dcache=long_dcache,
        other=other,
    )
    san = _sanitizer.current()
    if san is not None:
        san.check_cpi_stack(stack)
    return stack
