"""First-order interval CPI model.

Predicts total execution time from *trace statistics alone* (no timing
simulation), in the style the paper's interval analysis enables:

``cycles = N/D  +  sum over miss events of their penalties``

* each branch misprediction costs ``K(n) + frontend_depth`` where
  ``K`` is the window-drain profile fitted with *steady-state*
  latencies (FU + L1 + short misses; long misses are events of their
  own and must not leak into the drain profile) and ``n`` the expected
  window occupancy when the branch dispatches (bounded by the gap to
  the previous miss event and by the ROB size — contributor C2);
* each I-cache miss costs its fill latency;
* long D-cache misses cost the memory latency, with overlapping
  (clustered) misses within one window sharing a single latency — the
  classic first-order memory-level-parallelism correction — *unless*
  the later miss depends on the earlier one (pointer chasing), in
  which case the latencies serialize.

Comparing the prediction against the simulator validates the model
(experiment T3) exactly as the paper validates interval analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.interval.ilp import ILPFit, LatencyFn, fit_ilp_profile
from repro.isa.opcodes import OpClass
from repro.pipeline.config import CoreConfig
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace


@dataclass(frozen=True)
class ModelPrediction:
    """Predicted cycle budget and its components."""

    instructions: int
    base_cycles: float
    mispredict_cycles: float
    icache_cycles: float
    long_dmiss_cycles: float
    mispredict_count: int
    icache_count: int
    long_dmiss_count: int
    mean_penalty: float

    @property
    def cycles(self) -> float:
        return (
            self.base_cycles
            + self.mispredict_cycles
            + self.icache_cycles
            + self.long_dmiss_cycles
        )

    @property
    def cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.cycles / self.instructions

    def error_vs(self, result: SimulationResult) -> float:
        """Relative CPI error against a simulation of the same trace."""
        if not result.cycles:
            return 0.0
        return (self.cycles - result.cycles) / result.cycles

    def components(self) -> Dict[str, float]:
        return {
            "base": self.base_cycles,
            "bpred": self.mispredict_cycles,
            "icache": self.icache_cycles,
            "long_dcache": self.long_dmiss_cycles,
        }


class IntervalModel:
    """First-order model over an annotated trace."""

    def __init__(
        self,
        config: CoreConfig = CoreConfig(),
        ilp_fit: Optional[ILPFit] = None,
    ):
        self.config = config
        self.ilp_fit = ilp_fit

    # -- event extraction (trace-level, no simulation) -------------------

    @staticmethod
    def event_positions(trace: Trace) -> List[Tuple[int, str]]:
        """Miss-event positions visible in an annotated trace.

        Returns (seq, kind) with kind in {"bpred", "icache", "long"}.
        A single instruction can carry several events; bpred wins for
        interval-cutting purposes (mirrors the segmentation rule).
        """
        positions: List[Tuple[int, str]] = []
        for seq, record in enumerate(trace.records):
            if record.is_branch and record.mispredict:
                positions.append((seq, "bpred"))
            elif record.il1_miss:
                positions.append((seq, "icache"))
            elif record.is_load and record.dl2_miss:
                positions.append((seq, "long"))
        return positions

    def _steady_latency(self, trace: Trace) -> LatencyFn:
        """Inter-miss steady-state latencies: FU + L1 + short misses.

        Long misses are miss *events*, charged separately; including
        their memory latency in the drain profile would double-count
        them and wreck the base rate for memory-bound workloads.
        """
        config = self.config
        records = trace.records

        def latency(seq: int) -> int:
            record = records[seq]
            base = config.fu_specs[record.op_class].latency
            if record.op_class is OpClass.LOAD:
                base += config.l2_latency if record.dl1_miss else config.l1_latency
            return base

        return latency

    def _fit(self, trace: Trace) -> ILPFit:
        if self.ilp_fit is None:
            self.ilp_fit = fit_ilp_profile(
                trace, latency_of=self._steady_latency(trace)
            )
        return self.ilp_fit

    def _depends_on(self, trace: Trace, consumer: int, producer: int) -> bool:
        """True when ``consumer`` transitively depends on ``producer``
        through dependences that stay at or after ``producer``."""
        records = trace.records
        frontier = [consumer]
        seen = set()
        while frontier:
            seq = frontier.pop()
            for dist in records[seq].deps:
                upstream = seq - dist
                if upstream == producer:
                    return True
                if upstream > producer and upstream not in seen:
                    seen.add(upstream)
                    frontier.append(upstream)
        return False

    def predict(self, trace: Trace) -> ModelPrediction:
        """Predict total cycles for an annotated trace."""
        config = self.config
        n = len(trace.records)
        fit = self._fit(trace)
        positions = self.event_positions(trace)

        base_cycles = n / config.dispatch_width

        mispredict_cycles = 0.0
        icache_cycles = 0.0
        mispredict_count = 0
        icache_count = 0
        last_event_seq = -1
        long_positions: List[int] = []
        for seq, kind in positions:
            gap = seq - last_event_seq - 1
            if kind == "bpred":
                occupancy = min(gap, config.rob_size)
                resolution = fit.predict_drain(occupancy)
                mispredict_cycles += resolution + config.frontend_depth
                mispredict_count += 1
            elif kind == "icache":
                icache_cycles += config.l2_latency
                icache_count += 1
            else:
                long_positions.append(seq)
            last_event_seq = seq

        # Long D-miss MLP correction: misses within one ROB-reach of the
        # previous long miss overlap and share a single memory latency —
        # unless the later load depends on the earlier one, in which
        # case the accesses serialize (pointer chasing).
        long_dmiss_cycles = 0.0
        long_count = len(long_positions)
        previous = None
        for seq in long_positions:
            independent = previous is None or seq - previous > config.rob_size
            if not independent and self._depends_on(trace, seq, previous):
                independent = True
            if independent:
                long_dmiss_cycles += config.memory_latency
            previous = seq

        mean_penalty = (
            mispredict_cycles / mispredict_count if mispredict_count else 0.0
        )
        return ModelPrediction(
            instructions=n,
            base_cycles=base_cycles,
            mispredict_cycles=mispredict_cycles,
            icache_cycles=icache_cycles,
            long_dmiss_cycles=long_dmiss_cycles,
            mispredict_count=mispredict_count,
            icache_count=icache_count,
            long_dmiss_count=long_count,
            mean_penalty=mean_penalty,
        )

    def predict_mean_penalty(self, trace: Trace) -> float:
        """Predicted average misprediction penalty for the trace."""
        return self.predict(trace).mean_penalty
