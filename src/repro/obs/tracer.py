"""Structured event tracing for the simulators.

The first pillar of ``repro.obs``. The simulators emit one
:class:`MissSpan` per miss event — for a branch mispredict, the span
runs from dispatch through resolution to the end of the frontend
refill, so its duration *is* the penalty the paper decomposes — plus
:class:`InstantEvent` markers at interval boundaries.

``Tracer`` is the no-op default: every hook is a ``pass``, and hot
paths additionally guard on ``runtime.current_tracer() is None`` so a
disabled run pays nothing but a handful of ``is not None`` checks.
``RecordingTracer`` buffers everything in memory for export
(:mod:`repro.obs.export`) or direct inspection in tests.

All timestamps are simulated cycles, never wall-clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

#: Span kinds, mirroring the three miss event classes the paper studies.
KIND_BPRED = "bpred"
KIND_ICACHE = "icache"
KIND_LONG_DMISS = "long_dmiss"

SPAN_KINDS: Tuple[str, ...] = (KIND_BPRED, KIND_ICACHE, KIND_LONG_DMISS)

ArgValue = Union[int, float, str]


@dataclass(frozen=True)
class MissSpan:
    """One miss event as a timeline span, in simulated cycles.

    For a branch mispredict (``kind == "bpred"``) the span decomposes as
    dispatch → resolve (``resolution`` cycles of in-flight execution)
    followed by ``refill_cycles`` of frontend refill after the redirect,
    so ``duration`` equals the recorded penalty. I-cache and long D-cache
    miss spans carry ``refill_cycles == 0`` and their duration is just
    the miss latency.
    """

    kind: str
    seq: int
    dispatch_cycle: int
    resolve_cycle: int
    refill_cycles: int = 0
    window_occupancy: int = 0
    wrong_path_instructions: int = 0

    @property
    def resolution(self) -> int:
        return self.resolve_cycle - self.dispatch_cycle

    @property
    def end_cycle(self) -> int:
        return self.resolve_cycle + self.refill_cycles

    @property
    def duration(self) -> int:
        return self.end_cycle - self.dispatch_cycle


@dataclass(frozen=True)
class InstantEvent:
    """A zero-duration marker (e.g. an interval boundary)."""

    name: str
    cycle: int
    args: Dict[str, ArgValue] = field(default_factory=dict)


class Tracer:
    """No-op tracer; the default when tracing is disabled."""

    enabled = False

    def miss_span(self, span: MissSpan) -> None:
        pass

    def instant(self, name: str, cycle: int, **args: ArgValue) -> None:
        pass


class RecordingTracer(Tracer):
    """Buffers spans and instants in memory, in emission order."""

    enabled = True

    def __init__(self) -> None:
        self.spans: List[MissSpan] = []
        self.instants: List[InstantEvent] = []

    def miss_span(self, span: MissSpan) -> None:
        self.spans.append(span)

    def instant(self, name: str, cycle: int, **args: ArgValue) -> None:
        self.instants.append(InstantEvent(name=name, cycle=cycle, args=args))

    def spans_of_kind(self, kind: str) -> List[MissSpan]:
        return [span for span in self.spans if span.kind == kind]

    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for span in self.spans:
            tally[span.kind] = tally.get(span.kind, 0) + 1
        return tally

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants)
