"""Ambient activation for the observability pillars.

Mirrors the sanitizer's ambient-state pattern
(:mod:`repro.analysis.sanitizer`): each pillar — tracing, metrics,
profiling — has a forced flag (set by CLI switches / tests) that wins
over an environment variable (``REPRO_TRACE`` / ``REPRO_METRICS`` /
``REPRO_PROFILE``, inherited by lab worker processes).

Hot paths call ``current_tracer()`` / ``current_metrics()`` /
``current_profiler()`` once per run and branch on ``None``, so a
disabled pillar costs one environment lookup per simulation and a few
``is not None`` checks per loop iteration — the <3% overhead budget
guarded by ``benchmarks/bench_obs_overhead.py``.

``drain_*`` returns the collected data and opens a fresh window; the
lab's ``execute_job`` drains per job so worker snapshots stay separate
until :func:`repro.obs.metrics.merge_snapshots` folds them together.
"""

from __future__ import annotations

import os
from typing import Dict, Optional

from repro.obs import context as obs_context
from repro.obs.metrics import MetricsRegistry
from repro.obs.phases import PhaseProfiler, PhaseReport
from repro.obs.tracer import RecordingTracer

ENV_TRACE = "REPRO_TRACE"
ENV_METRICS = "REPRO_METRICS"
ENV_PROFILE = "REPRO_PROFILE"
#: Optional directory where lab workers write per-job JSONL traces.
ENV_TRACE_DIR = "REPRO_TRACE_DIR"

_TRACE = "trace"
_METRICS = "metrics"
_PROFILE = "profile"

_ENV_BY_PILLAR = {_TRACE: ENV_TRACE, _METRICS: ENV_METRICS, _PROFILE: ENV_PROFILE}

_forced: Dict[str, Optional[bool]] = {_TRACE: None, _METRICS: None, _PROFILE: None}

_ambient_tracer: Optional[RecordingTracer] = None
_ambient_metrics: Optional[MetricsRegistry] = None
_ambient_profiler: Optional[PhaseProfiler] = None


def _enabled(pillar: str) -> bool:
    forced = _forced[pillar]
    if forced is not None:
        return forced
    raw = os.environ.get(_ENV_BY_PILLAR[pillar], "").strip()
    return raw not in ("", "0", "false", "no")


def _enable(pillar: str) -> None:
    _forced[pillar] = True
    os.environ[_ENV_BY_PILLAR[pillar]] = "1"


def _disable(pillar: str) -> None:
    _forced[pillar] = False
    os.environ.pop(_ENV_BY_PILLAR[pillar], None)


def tracing_enabled() -> bool:
    return _enabled(_TRACE)


def metrics_enabled() -> bool:
    return _enabled(_METRICS)


def profiling_enabled() -> bool:
    return _enabled(_PROFILE)


def enable_tracing() -> None:
    """Force-enable tracing and export it to child worker processes."""
    _enable(_TRACE)


def enable_metrics() -> None:
    _enable(_METRICS)


def enable_profiling() -> None:
    _enable(_PROFILE)


def disable_tracing() -> None:
    _disable(_TRACE)


def disable_metrics() -> None:
    _disable(_METRICS)


def disable_profiling() -> None:
    _disable(_PROFILE)


def reset() -> None:
    """Drop forced flags, ambient collectors, and the env switches.

    Tests call this (directly or via the autouse fixture) so one test's
    tracing session cannot leak into the next.
    """
    global _ambient_tracer, _ambient_metrics, _ambient_profiler
    for pillar in _forced:
        _forced[pillar] = None
        os.environ.pop(_ENV_BY_PILLAR[pillar], None)
    os.environ.pop(ENV_TRACE_DIR, None)
    obs_context.clear_env()
    _ambient_tracer = None
    _ambient_metrics = None
    _ambient_profiler = None


def current_tracer() -> Optional[RecordingTracer]:
    """The ambient tracer, or None when tracing is inactive."""
    global _ambient_tracer
    if not _enabled(_TRACE):
        return None
    if _ambient_tracer is None:
        _ambient_tracer = RecordingTracer()
    return _ambient_tracer


def current_metrics() -> Optional[MetricsRegistry]:
    """The ambient metrics registry, or None when metrics are inactive."""
    global _ambient_metrics
    if not _enabled(_METRICS):
        return None
    if _ambient_metrics is None:
        _ambient_metrics = MetricsRegistry()
    return _ambient_metrics


def current_profiler() -> Optional[PhaseProfiler]:
    """The ambient phase profiler, or None when profiling is inactive."""
    global _ambient_profiler
    if not _enabled(_PROFILE):
        return None
    if _ambient_profiler is None:
        _ambient_profiler = PhaseProfiler()
    return _ambient_profiler


def drain_trace() -> Optional[RecordingTracer]:
    """Return the ambient tracer (with its buffers) and start fresh."""
    global _ambient_tracer
    tracer = _ambient_tracer
    _ambient_tracer = None
    if tracer is None or len(tracer) == 0:
        return None
    return tracer


def drain_metrics() -> Optional[dict]:
    """Return a snapshot of the ambient registry and start fresh."""
    global _ambient_metrics
    registry = _ambient_metrics
    _ambient_metrics = None
    if registry is None:
        return None
    snapshot = registry.snapshot()
    if not any(snapshot.values()):
        return None
    return snapshot


def drain_profile() -> Optional[PhaseReport]:
    """Return the ambient phase report and start fresh."""
    global _ambient_profiler
    profiler = _ambient_profiler
    _ambient_profiler = None
    if profiler is None:
        return None
    report = profiler.report()
    if not report.rows:
        return None
    return report


def trace_dir() -> Optional[str]:
    """Directory for per-job JSONL traces (lab workers), if configured."""
    raw = os.environ.get(ENV_TRACE_DIR, "").strip()
    return raw or None
