"""Trace export: Chrome trace-event JSON (Perfetto) and compact JSONL.

The Chrome trace-event format is the ``{"traceEvents": [...]}`` JSON
documented by the Trace Event Format spec and loadable in Perfetto or
``chrome://tracing``. Simulated cycles map 1:1 onto the format's
microsecond timestamps, so one trace "µs" is one core cycle.

Layout (one process, one thread per event family):

* tid 1 ``branch mispredicts`` — one complete (``"X"``) span per
  mispredict whose duration is the full penalty, with nested
  ``resolve`` and ``refill`` child slices.
* tid 2 ``icache misses`` — complete spans, duration = miss latency.
* tid 3 ``long dcache misses`` — async ``"b"``/``"e"`` pairs keyed by
  instruction seq, since long misses overlap under the ROB.
* tid 4 ``intervals`` — instant (``"i"``) markers at interval
  boundaries.

The JSONL export is one JSON object per line (spans then instants, in
emission order) for programmatic analysis without a trace viewer.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, List, Sequence, Union

from repro.obs.tracer import (
    KIND_BPRED,
    KIND_ICACHE,
    KIND_LONG_DMISS,
    RecordingTracer,
)
from repro.resilience.atomic import atomic_write_text

PID = 0
TID_BPRED = 1
TID_ICACHE = 2
TID_LONG_DMISS = 3
TID_INTERVALS = 4

_THREAD_NAMES = {
    TID_BPRED: "branch mispredicts",
    TID_ICACHE: "icache misses",
    TID_LONG_DMISS: "long dcache misses",
    TID_INTERVALS: "intervals",
}


def _metadata_events(label: str) -> List[dict]:
    events = [
        {
            "ph": "M",
            "pid": PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": label},
        }
    ]
    for tid, name in sorted(_THREAD_NAMES.items()):
        events.append(
            {
                "ph": "M",
                "pid": PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": name},
            }
        )
    return events


def chrome_trace_events(tracer: RecordingTracer, label: str = "repro-sim") -> List[dict]:
    """Flatten a recording into trace-event dicts (metadata first)."""
    events = _metadata_events(label)
    for span in tracer.spans:
        if span.kind == KIND_BPRED:
            args = {
                "seq": span.seq,
                "resolution_cycles": span.resolution,
                "refill_cycles": span.refill_cycles,
                "penalty_cycles": span.duration,
                "wrong_path_instructions": span.wrong_path_instructions,
                "window_occupancy": span.window_occupancy,
            }
            events.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": TID_BPRED,
                    "name": "mispredict",
                    "cat": "bpred",
                    "ts": span.dispatch_cycle,
                    "dur": span.duration,
                    "args": args,
                }
            )
            events.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": TID_BPRED,
                    "name": "resolve",
                    "cat": "bpred",
                    "ts": span.dispatch_cycle,
                    "dur": span.resolution,
                    "args": {"seq": span.seq},
                }
            )
            if span.refill_cycles > 0:
                events.append(
                    {
                        "ph": "X",
                        "pid": PID,
                        "tid": TID_BPRED,
                        "name": "refill",
                        "cat": "bpred",
                        "ts": span.resolve_cycle,
                        "dur": span.refill_cycles,
                        "args": {"seq": span.seq},
                    }
                )
        elif span.kind == KIND_ICACHE:
            events.append(
                {
                    "ph": "X",
                    "pid": PID,
                    "tid": TID_ICACHE,
                    "name": "icache_miss",
                    "cat": "icache",
                    "ts": span.dispatch_cycle,
                    "dur": span.duration,
                    "args": {"seq": span.seq},
                }
            )
        elif span.kind == KIND_LONG_DMISS:
            common = {
                "pid": PID,
                "tid": TID_LONG_DMISS,
                "name": "long_dmiss",
                "cat": "dmiss",
                "id": span.seq,
            }
            events.append(
                {
                    "ph": "b",
                    "ts": span.dispatch_cycle,
                    "args": {"seq": span.seq, "latency": span.duration},
                    **common,
                }
            )
            events.append({"ph": "e", "ts": span.end_cycle, "args": {}, **common})
    for instant in tracer.instants:
        events.append(
            {
                "ph": "i",
                "pid": PID,
                "tid": TID_INTERVALS,
                "name": instant.name,
                "cat": "interval",
                "ts": instant.cycle,
                "s": "t",
                "args": dict(instant.args),
            }
        )
    return events


def chrome_trace(tracer: RecordingTracer, label: str = "repro-sim") -> dict:
    return {
        "traceEvents": chrome_trace_events(tracer, label=label),
        "displayTimeUnit": "ns",
        "otherData": {"time_unit": "simulated core cycles (1 cycle = 1 us)"},
    }


def write_chrome_trace(
    tracer: RecordingTracer,
    path: Union[str, Path],
    label: str = "repro-sim",
) -> int:
    """Write the Chrome trace JSON; returns the number of trace events.

    Lab jobs write traces next to run manifests, so the export must be
    crash-safe like every other run-state file: serialize in memory,
    then atomic-replace — a crash never leaves a torn trace.
    """
    document = chrome_trace(tracer, label=label)
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    atomic_write_text(Path(path), text + "\n")
    return len(document["traceEvents"])


def chrome_trace_events_from_spans(
    spans: Sequence[dict], label: str = "repro-serve"
) -> List[dict]:
    """Trace events for request-scoped spans (:mod:`repro.obs.spans`).

    Unlike the single-process MissSpan layout above, request spans are
    *cross-process*: the event loop, its worker threads, and the shard
    pool workers each record under their own ``(process, pid)``. Each
    distinct pair becomes one Perfetto process row (metadata first, in
    sorted order so exports are deterministic); span timestamps are
    integer nanoseconds rendered as fractional microseconds.
    """
    rows = sorted(
        {(int(record.get("pid", 0)), str(record.get("process", "main")))
         for record in spans}
    )
    events: List[dict] = []
    for pid, process in rows:
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": f"{label}:{process}"},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": 1,
                "name": "thread_name",
                "args": {"name": "request spans"},
            }
        )
    ordered = sorted(
        spans,
        key=lambda r: (
            str(r.get("trace_id", "")),
            int(r.get("start_ns", 0)),
            str(r.get("span_id", "")),
        ),
    )
    for record in ordered:
        if record.get("end_ns") is None:
            continue
        start_ns = int(record["start_ns"])
        args = {
            "trace_id": record.get("trace_id"),
            "span_id": record.get("span_id"),
            "parent_id": record.get("parent_id"),
            "status": record.get("status", "ok"),
        }
        args.update(record.get("args") or {})
        events.append(
            {
                "ph": "X",
                "pid": int(record.get("pid", 0)),
                "tid": 1,
                "name": str(record.get("name", "span")),
                "cat": "request",
                "ts": start_ns / 1000.0,
                "dur": (int(record["end_ns"]) - start_ns) / 1000.0,
                "args": args,
            }
        )
    return events


def chrome_trace_from_spans(spans: Sequence[dict], label: str = "repro-serve") -> dict:
    return {
        "traceEvents": chrome_trace_events_from_spans(spans, label=label),
        "displayTimeUnit": "ms",
        "otherData": {"time_unit": "wall nanoseconds rendered as us"},
    }


def write_chrome_trace_spans(
    spans: Sequence[dict],
    path: Union[str, Path],
    label: str = "repro-serve",
) -> int:
    """Atomic-replace Chrome trace export for request spans."""
    document = chrome_trace_from_spans(spans, label=label)
    text = json.dumps(document, sort_keys=True, separators=(",", ":"))
    atomic_write_text(Path(path), text + "\n")
    return len(document["traceEvents"])


def jsonl_records(tracer: RecordingTracer) -> Iterator[dict]:
    """One flat JSON-safe dict per span/instant, in emission order."""
    for span in tracer.spans:
        yield {
            "type": "span",
            "kind": span.kind,
            "seq": span.seq,
            "dispatch_cycle": span.dispatch_cycle,
            "resolve_cycle": span.resolve_cycle,
            "refill_cycles": span.refill_cycles,
            "duration_cycles": span.duration,
            "wrong_path_instructions": span.wrong_path_instructions,
            "window_occupancy": span.window_occupancy,
        }
    for instant in tracer.instants:
        record = {"type": "instant", "name": instant.name, "cycle": instant.cycle}
        record.update(instant.args)
        yield record


def write_jsonl(tracer: RecordingTracer, path: Union[str, Path]) -> int:
    """Write the JSONL export; returns the number of lines written.

    Atomic-replace for the same reason as :func:`write_chrome_trace`:
    the lab's trace sidecars must never be torn by a mid-write crash.
    """
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in jsonl_records(tracer)
    ]
    text = "\n".join(lines) + "\n" if lines else ""
    atomic_write_text(Path(path), text)
    return len(lines)
