"""Named counters, gauges, and fixed-bucket histograms.

The registry is the second pillar of ``repro.obs``: simulator layers
register metrics by name and bump them while they run, the lab drains a
snapshot per job, and ``merge_snapshots`` folds the per-worker snapshots
into the one recorded in the ``RunTelemetry`` manifest.

Naming convention (enforced at registration time and by lint rule
OBS002): ``subsystem.noun_unit`` — a lowercase subsystem segment, a dot,
then a noun with a unit suffix, e.g. ``core.cycles_total``,
``interval.length_instructions``, ``frontend.mispredicts_total``.

Snapshots contain only simulated quantities (instruction counts, cycle
histograms, occupancies) — never wall-clock time — so two runs with the
same seed produce byte-identical snapshots.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

Number = Union[int, float]

#: ``subsystem.noun_unit`` — subsystem segment, then a name whose final
#: part carries at least one underscore-separated unit suffix.
METRIC_NAME_PATTERN = r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9]*(?:_[a-z0-9]+)+$"
METRIC_NAME_RE = re.compile(METRIC_NAME_PATTERN)

#: Power-of-two cycle buckets: fine enough to separate short resolutions
#: from memory-bound ones, coarse enough to merge cheaply.
DEFAULT_EDGES: Tuple[Number, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class MetricNameError(ValueError):
    """A metric name violates the ``subsystem.noun_unit`` convention."""


def validate_metric_name(name: str) -> str:
    if not METRIC_NAME_RE.match(name):
        raise MetricNameError(
            f"metric name {name!r} does not match subsystem.noun_unit "
            f"(pattern {METRIC_NAME_PATTERN})"
        )
    return name


class Counter:
    """A monotonically increasing integer. Merge: sum."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A high-water mark (e.g. peak ROB occupancy). Merge: max."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        self.value = value

    def set_max(self, value: Number) -> None:
        if self.value is None or value > self.value:
            self.value = value


class FixedHistogram:
    """Fixed-bucket histogram; bucket ``i`` counts values ``<= edges[i]``.

    The final bucket is the overflow (``> edges[-1]``). Fixed edges make
    cross-worker merging an elementwise sum.
    """

    __slots__ = ("edges", "counts", "count", "total", "vmin", "vmax")

    def __init__(self, edges: Sequence[Number] = DEFAULT_EDGES) -> None:
        if not edges or list(edges) != sorted(edges):
            raise ValueError("histogram edges must be non-empty and ascending")
        self.edges: Tuple[Number, ...] = tuple(edges)
        self.counts: List[int] = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total: Number = 0
        self.vmin: Optional[Number] = None
        self.vmax: Optional[Number] = None

    def add(self, value: Number) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += value
        if self.vmin is None or value < self.vmin:
            self.vmin = value
        if self.vmax is None or value > self.vmax:
            self.vmax = value


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    A name maps to exactly one metric kind; asking for the same name with
    a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, FixedHistogram] = {}

    def _check_unclaimed(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise MetricNameError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            validate_metric_name(name)
            self._check_unclaimed(name, "counter")
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            validate_metric_name(name)
            self._check_unclaimed(name, "gauge")
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, edges: Sequence[Number] = DEFAULT_EDGES
    ) -> FixedHistogram:
        metric = self._histograms.get(name)
        if metric is None:
            validate_metric_name(name)
            self._check_unclaimed(name, "histogram")
            metric = self._histograms[name] = FixedHistogram(edges)
        elif tuple(edges) != metric.edges:
            raise MetricNameError(
                f"histogram {name!r} already registered with different edges"
            )
        return metric

    def snapshot(self) -> dict:
        """A JSON-safe, deterministic (sorted-key) view of every metric."""
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value
                for name in sorted(self._gauges)
            },
            "histograms": {
                name: _histogram_payload(self._histograms[name])
                for name in sorted(self._histograms)
            },
        }

    def clear(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def _histogram_payload(hist: FixedHistogram) -> dict:
    return {
        "edges": list(hist.edges),
        "counts": list(hist.counts),
        "count": hist.count,
        "sum": hist.total,
        "min": hist.vmin,
        "max": hist.vmax,
    }


def histogram_quantile(payload: dict, q: float) -> Optional[float]:
    """Deterministic bucket-interpolated quantile of a histogram payload.

    Walks the cumulative counts to the ``q``-th observation and
    interpolates linearly inside the bucket that holds it, using the
    recorded ``min``/``max`` to bound the open-ended first and overflow
    buckets. Pure arithmetic over the payload — two equal snapshots
    give bit-equal quantiles. Returns ``None`` for an empty histogram.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q!r}")
    count = payload.get("count", 0)
    if not count:
        return None
    edges = payload["edges"]
    counts = payload["counts"]
    vmin = payload.get("min")
    vmax = payload.get("max")
    target = q * count
    cumulative = 0
    for idx, bucket in enumerate(counts):
        if bucket == 0:
            continue
        if cumulative + bucket >= target:
            lower = vmin if idx == 0 else edges[idx - 1]
            upper = edges[idx] if idx < len(edges) else vmax
            if lower is None:
                lower = upper
            if upper is None:
                upper = lower
            fraction = (target - cumulative) / bucket
            value = lower + (upper - lower) * fraction
            if vmin is not None:
                value = max(value, vmin)
            if vmax is not None:
                value = min(value, vmax)
            return float(value)
        cumulative += bucket
    return float(vmax) if vmax is not None else None


#: The quantiles surfaced by default: median plus the two tail points
#: the latency-stack histograms report.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def histogram_quantiles(
    payload: dict, qs: Sequence[float] = DEFAULT_QUANTILES
) -> Dict[str, Optional[float]]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` for a histogram payload."""
    summary: Dict[str, Optional[float]] = {}
    for q in qs:
        label = f"p{q * 100:g}".replace(".", "_")
        summary[label] = histogram_quantile(payload, q)
    return summary


def empty_snapshot() -> dict:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Fold per-worker snapshots into one: counters sum, gauges take the
    max, histograms (same edges required) sum elementwise."""
    merged = empty_snapshot()
    counters = merged["counters"]
    gauges = merged["gauges"]
    histograms = merged["histograms"]
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            if value is None:
                continue
            if name not in gauges or gauges[name] is None or value > gauges[name]:
                gauges[name] = value
        for name, payload in snap.get("histograms", {}).items():
            seen = histograms.get(name)
            if seen is None:
                histograms[name] = {
                    "edges": list(payload["edges"]),
                    "counts": list(payload["counts"]),
                    "count": payload["count"],
                    "sum": payload["sum"],
                    "min": payload["min"],
                    "max": payload["max"],
                }
                continue
            if seen["edges"] != list(payload["edges"]):
                raise MetricNameError(
                    f"histogram {name!r} has mismatched edges across snapshots"
                )
            seen["counts"] = [
                a + b for a, b in zip(seen["counts"], payload["counts"])
            ]
            seen["count"] += payload["count"]
            seen["sum"] += payload["sum"]
            for key, pick in (("min", min), ("max", max)):
                if payload[key] is not None:
                    seen[key] = (
                        payload[key]
                        if seen[key] is None
                        else pick(seen[key], payload[key])
                    )
    merged["counters"] = dict(sorted(counters.items()))
    merged["gauges"] = dict(sorted(gauges.items()))
    merged["histograms"] = dict(sorted(histograms.items()))
    return merged


def render_snapshot(snapshot: dict) -> str:
    """Deterministic plain-text rendering used by ``repro obs metrics``."""
    lines: List[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name} = {counters[name]}")
    if gauges:
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name} = {gauges[name]}")
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            payload = histograms[name]
            lines.append(
                f"  {name}: count={payload['count']} sum={payload['sum']}"
                f" min={payload['min']} max={payload['max']}"
            )
            if payload["count"]:
                quantiles = histogram_quantiles(payload)
                lines.append(
                    "    "
                    + " ".join(
                        f"{label}={quantiles[label]:g}"
                        for label in ("p50", "p95", "p99")
                    )
                )
            edges = payload["edges"]
            for idx, bucket in enumerate(payload["counts"]):
                if bucket == 0:
                    continue
                if idx < len(edges):
                    label = f"<= {edges[idx]}"
                else:
                    label = f"> {edges[-1]}"
                lines.append(f"    {label}: {bucket}")
    if not lines:
        lines.append("(no metrics recorded)")
    return "\n".join(lines) + "\n"
