"""Ambient trace context: which request does this work belong to?

The serve path crosses three execution domains — the event loop, the
``asyncio.to_thread`` worker threads it delegates blocking calls to,
and the shard pool's worker *processes*. A request-scoped
``trace_id``/``span_id`` pair has to survive all three so every span
recorded along the way lands in the same tree.

Two carriers cover them:

* a :mod:`contextvars` variable — ``asyncio`` copies the context into
  tasks and ``to_thread`` calls, so code running in a cache-lookup
  thread still sees the request that scheduled it;
* the ``REPRO_TRACE_CONTEXT`` environment variable — the same
  env-propagation pattern the sanitizer and the obs pillars use, but
  *inside* the pool worker: the context rides into ``execute_job`` as
  an argument (pool workers outlive any single request, so parent-side
  env mutation cannot reach them) and the worker re-exports it to its
  own environment + contextvar for the duration of the job.

Alongside the identity, :func:`activate` can install the *collector*
(a :class:`repro.obs.spans.SpanCollector`) that ambient instrumentation
sites — e.g. the tiered cache — append spans to.  Both are restored by
:func:`deactivate`, so nesting behaves.
"""

from __future__ import annotations

import os
from contextvars import ContextVar, Token
from dataclasses import dataclass
from typing import Any, Optional, Tuple

#: Worker-side carrier: ``<trace_id>/<parent span id>`` (span part optional).
ENV_TRACE_CONTEXT = "REPRO_TRACE_CONTEXT"


@dataclass(frozen=True, slots=True)
class TraceContext:
    """Identity of the active request: trace id + current span id."""

    trace_id: str
    span_id: Optional[str] = None

    def as_env(self) -> str:
        if self.span_id:
            return f"{self.trace_id}/{self.span_id}"
        return self.trace_id


# One variable holding ``(context, collector)`` rather than two: the
# serve path pays an activate/deactivate cycle per traced request, and
# a single contextvar set/reset halves that cost.
_active: ContextVar[Tuple[Optional[TraceContext], Optional[Any]]] = ContextVar(
    "repro_trace_active", default=(None, None)
)


def context_from_env(raw: Optional[str] = None) -> Optional[TraceContext]:
    """Parse ``trace_id[/span_id]`` from the env carrier, if present."""
    if raw is None:
        raw = os.environ.get(ENV_TRACE_CONTEXT, "")
    raw = raw.strip()
    if not raw:
        return None
    trace_id, _, span_id = raw.partition("/")
    if not trace_id:
        return None
    return TraceContext(trace_id=trace_id, span_id=span_id or None)


def current_context() -> Optional[TraceContext]:
    """The active trace context: contextvar first, env carrier second."""
    ctx = _active.get()[0]
    if ctx is not None:
        return ctx
    return context_from_env()


def current_collector() -> Optional[Any]:
    """The ambient span collector installed by :func:`activate`, if any."""
    return _active.get()[1]


def activate(ctx: TraceContext, collector: Optional[Any] = None) -> Token:
    """Install *ctx* (and optionally a collector) as the ambient context.

    Returns an opaque token for :func:`deactivate`; always pair the two
    in ``try/finally`` so a failing request cannot leak its identity
    into the next one handled on the same task.
    """
    return _active.set((ctx, collector))


def deactivate(token: Token) -> None:
    """Restore whatever context/collector *activate* displaced."""
    _active.reset(token)


def export_env(ctx: TraceContext) -> None:
    """Write *ctx* to this process's environment (worker-side re-export)."""
    os.environ[ENV_TRACE_CONTEXT] = ctx.as_env()


def clear_env() -> None:
    os.environ.pop(ENV_TRACE_CONTEXT, None)


__all__ = [
    "ENV_TRACE_CONTEXT",
    "TraceContext",
    "activate",
    "clear_env",
    "context_from_env",
    "current_collector",
    "current_context",
    "deactivate",
    "export_env",
]
