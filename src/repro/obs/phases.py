"""Phase timers: where does the wall time go?

The third pillar of ``repro.obs``. A :class:`PhaseProfiler` accumulates
wall-time per named phase (``core.dispatch``, ``fast_sim.estimate``,
``cli.trace_gen`` ...). Hot loops read the profiler's clock directly —
two clock reads and an ``add`` per phase — while coarser call sites can
use the :meth:`PhaseProfiler.phase` context manager.

Built on the same clock doorway as :class:`repro.util.timing.Stopwatch`
so the CLK001/OBS001 lint rules keep raw ``time.*`` calls out of the
instrumented packages; this module is the one place phase timing may
touch the clock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.util.timing import default_clock


@dataclass(frozen=True)
class PhaseRow:
    name: str
    count: int
    seconds: float


@dataclass(frozen=True)
class PhaseReport:
    rows: Tuple[PhaseRow, ...]

    @property
    def total_seconds(self) -> float:
        return sum(row.seconds for row in self.rows)

    def as_payload(self) -> dict:
        return {
            "total_seconds": self.total_seconds,
            "phases": [
                {"name": row.name, "count": row.count, "seconds": row.seconds}
                for row in self.rows
            ],
        }

    def render(self) -> str:
        if not self.rows:
            return "(no phases recorded)\n"
        total = self.total_seconds
        width = max(len(row.name) for row in self.rows)
        lines = [f"{'phase'.ljust(width)}  {'calls':>10}  {'seconds':>10}  {'share':>6}"]
        for row in self.rows:
            share = row.seconds / total if total > 0 else 0.0
            lines.append(
                f"{row.name.ljust(width)}  {row.count:>10}"
                f"  {row.seconds:>10.4f}  {share:>5.1%}"
            )
        lines.append(f"{'total'.ljust(width)}  {'':>10}  {total:>10.4f}")
        return "\n".join(lines) + "\n"


class _Phase:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Phase":
        self._start = self._profiler.clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._profiler.add(self._name, self._profiler.clock() - self._start)


class PhaseProfiler:
    """Accumulates (seconds, call count) per phase name.

    The clock is injectable for deterministic tests; it defaults to the
    repo-wide :data:`repro.util.timing.default_clock`.
    """

    def __init__(self, clock: Callable[[], float] = default_clock) -> None:
        self.clock = clock
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def report(self) -> PhaseReport:
        rows: List[PhaseRow] = [
            PhaseRow(name=name, count=self._counts[name], seconds=seconds)
            for name, seconds in self._seconds.items()
        ]
        rows.sort(key=lambda row: (-row.seconds, row.name))
        return PhaseReport(rows=tuple(rows))

    def clear(self) -> None:
        self._seconds.clear()
        self._counts.clear()
