"""repro.obs — zero-cost-when-disabled observability.

Three pillars, all off by default:

* :mod:`repro.obs.tracer` — per-miss-event spans and interval-boundary
  instants, exportable to Perfetto (Chrome trace JSON) and JSONL.
* :mod:`repro.obs.metrics` — named counters/gauges/histograms whose
  snapshots merge across lab pool workers into run manifests.
* :mod:`repro.obs.phases` — wall-time phase timers for the simulator
  hot loops, surfaced by ``repro profile``.

Activation is ambient (:mod:`repro.obs.runtime`): CLI flags or the
``REPRO_TRACE`` / ``REPRO_METRICS`` / ``REPRO_PROFILE`` environment
variables, which lab worker processes inherit. See
``docs/observability.md`` for the trace schema and naming conventions.
"""

from __future__ import annotations

from repro.obs.context import (
    ENV_TRACE_CONTEXT,
    TraceContext,
    current_collector,
    current_context,
)
from repro.obs.metrics import (
    DEFAULT_EDGES,
    METRIC_NAME_PATTERN,
    METRIC_NAME_RE,
    Counter,
    FixedHistogram,
    Gauge,
    MetricNameError,
    MetricsRegistry,
    histogram_quantile,
    histogram_quantiles,
    merge_snapshots,
    render_snapshot,
    validate_metric_name,
)
from repro.obs.phases import PhaseProfiler, PhaseReport, PhaseRow
from repro.obs.spans import (
    SPAN_STATUSES,
    STACK_COMPONENTS,
    SpanCollector,
    SpanRecord,
    collapse_stacks,
    fold_latency_stack,
    fold_latency_stack_records,
    merge_span_snapshots,
    span_from_dict,
)
from repro.obs.tracer import (
    KIND_BPRED,
    KIND_ICACHE,
    KIND_LONG_DMISS,
    SPAN_KINDS,
    InstantEvent,
    MissSpan,
    RecordingTracer,
    Tracer,
)

__all__ = [
    "DEFAULT_EDGES",
    "ENV_TRACE_CONTEXT",
    "SPAN_STATUSES",
    "STACK_COMPONENTS",
    "SpanCollector",
    "SpanRecord",
    "TraceContext",
    "collapse_stacks",
    "current_collector",
    "current_context",
    "fold_latency_stack",
    "fold_latency_stack_records",
    "histogram_quantile",
    "histogram_quantiles",
    "merge_span_snapshots",
    "span_from_dict",
    "METRIC_NAME_PATTERN",
    "METRIC_NAME_RE",
    "Counter",
    "FixedHistogram",
    "Gauge",
    "MetricNameError",
    "MetricsRegistry",
    "merge_snapshots",
    "render_snapshot",
    "validate_metric_name",
    "PhaseProfiler",
    "PhaseReport",
    "PhaseRow",
    "KIND_BPRED",
    "KIND_ICACHE",
    "KIND_LONG_DMISS",
    "SPAN_KINDS",
    "InstantEvent",
    "MissSpan",
    "RecordingTracer",
    "Tracer",
]
