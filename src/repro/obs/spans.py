"""Request-scoped spans, latency stacks, and flame folding.

Where :mod:`repro.obs.tracer` records *simulated* time (MissSpan
timestamps are cycles), this module records *service* time: what one
``simulate`` request spent queueing, coalescing, probing cache tiers,
executing on a shard pool, and serializing its reply.  The shapes
mirror each other deliberately — both export to the same Perfetto
Chrome-trace format — but span timestamps here are **integer
nanoseconds** from :data:`repro.util.timing.default_clock_ns`, so a
request's latency stack can sum to its wall latency exactly, the
service-level analog of the paper's penalty decomposition summing to
the measured misprediction penalty.

Identity is deterministic: ids are derived from a per-collector
sequence number, never from a PRNG or the wall clock, so same-seed
runs with an injected tick clock export byte-identical traces.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.util.timing import default_clock_ns

#: Span lifecycle states. ``aborted`` marks spans force-closed by
#: :meth:`SpanCollector.abort_open` (e.g. a shard died mid-request) —
#: a span must never dangle in an export.
SPAN_STATUSES = ("open", "ok", "error", "aborted")

#: The latency-stack components a request span tree folds into, in
#: display order. ``queue_wait`` is the residue: wall minus everything
#: the tree explains, so the stack always sums to wall exactly.
STACK_COMPONENTS = (
    "queue_wait",
    "coalesce_wait",
    "cache_tier0",
    "cache_backend",
    "pool_execute",
    "store_put",
    "serialize",
)


@dataclass(slots=True)
class SpanRecord:
    """One timed operation inside a request's span tree.

    ``slots=True`` matters: a traced warm request allocates several of
    these on its critical path, and the serve overhead benchmark holds
    that path to single-digit percent of an untraced round trip.
    """

    trace_id: str
    span_id: str
    parent_id: Optional[str]
    name: str
    start_ns: int
    end_ns: Optional[int] = None
    status: str = "open"
    process: str = "main"
    pid: int = 0
    args: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int:
        if self.end_ns is None:
            return 0
        return max(0, self.end_ns - self.start_ns)

    def as_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "status": self.status,
            "process": self.process,
            "pid": self.pid,
        }
        if self.args:
            record["args"] = dict(self.args)
        return record


def span_from_dict(record: Dict[str, Any]) -> SpanRecord:
    return SpanRecord(
        trace_id=str(record["trace_id"]),
        span_id=str(record["span_id"]),
        parent_id=record.get("parent_id"),
        name=str(record["name"]),
        start_ns=int(record["start_ns"]),
        end_ns=None if record.get("end_ns") is None else int(record["end_ns"]),
        status=str(record.get("status", "ok")),
        process=str(record.get("process", "main")),
        pid=int(record.get("pid", 0)),
        args=dict(record.get("args") or {}),
    )


class SpanCollector:
    """Accumulates spans for one process, with deterministic identity.

    ``clock_ns`` is injectable (tests substitute a tick counter) and
    must return integer nanoseconds.  ``span_seq`` seeds the id
    sequence so two collectors in one process (service + tests) cannot
    collide when their spans are merged.
    """

    def __init__(
        self,
        process: str = "main",
        clock_ns: Callable[[], int] = default_clock_ns,
        pid: Optional[int] = None,
        span_seq: int = 0,
        max_spans: Optional[int] = None,
        id_prefix: str = "",
    ):
        self.process = process
        self._clock_ns = clock_ns
        self.pid = os.getpid() if pid is None else pid
        self._seq = span_seq
        self.max_spans = max_spans
        #: Prepended to every generated id. Collectors whose spans are
        #: absorbed into another collector's buffer (pool workers) MUST
        #: set a prefix unique among siblings — ids are how parent
        #: edges resolve, so a bare worker "s000001" would alias the
        #: service's "s000001" and scramble every folded tree. Deriving
        #: the prefix from the dispatch span's id keeps it both unique
        #: and deterministic (same-seed byte-identical exports).
        self.id_prefix = id_prefix
        self._trace_prefix = f"t-{self.process}-"
        self._spans: List[SpanRecord] = []
        #: Index of the oldest *retained* span in ``_spans``. FIFO
        #: eviction advances this head lazily instead of deleting the
        #: list front — a front-delete is an O(buffer) memmove, paid on
        #: every span once a long-lived service fills its buffer.
        self._head = 0
        self._open: Dict[str, SpanRecord] = {}
        # Monotonic append accounting, so a caller can mark a position
        # and later read back "everything closed since" in O(new spans)
        # even after old spans were trimmed or drained.
        self._appended = 0
        self._dropped = 0

    def __len__(self) -> int:
        return len(self._spans) - self._head + len(self._open)

    def _append(self, span: SpanRecord) -> None:
        self._spans.append(span)
        self._appended += 1
        if (
            self.max_spans is not None
            and len(self._spans) - self._head > self.max_spans
        ):
            self._head += 1
            self._dropped += 1
            if self._head >= self.max_spans:
                # Compact once the dead prefix matches the live window:
                # one O(buffer) delete per max_spans appends, so steady
                # state stays amortized O(1) per span.
                del self._spans[: self._head]
                self._head = 0

    def mark(self) -> int:
        """A position token for :meth:`since` (count of appends so far)."""
        return self._appended

    def since_records(
        self, mark: int, trace_id: Optional[str] = None
    ) -> List[SpanRecord]:
        """Closed spans appended after *mark*, as live records.

        This is how the service folds one request's latency stack
        without rescanning its whole span buffer — or paying a dict
        conversion per span — on every request.
        """
        start = max(0, mark - self._dropped) + self._head
        spans = self._spans[start:]
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        return spans

    def since(
        self, mark: int, trace_id: Optional[str] = None
    ) -> List[Dict[str, Any]]:
        """Closed spans appended after *mark*, as dicts (see
        :meth:`since_records` for the copy-free variant)."""
        return [
            span.as_dict() for span in self.since_records(mark, trace_id)
        ]

    def now(self) -> int:
        return self._clock_ns()

    def _next_id(self, prefix: str) -> str:
        self._seq += 1
        # str+zfill, not an f-string format spec: same output, and a
        # traced request mints several ids on its critical path.
        return self.id_prefix + prefix + str(self._seq).zfill(6)

    def new_trace_id(self) -> str:
        """A fresh trace id for a request that arrived without one."""
        return self._next_id(self._trace_prefix)

    def start(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: Optional[str],
        **args: Any,
    ) -> SpanRecord:
        """Open a span. ``parent_id`` is required (pass None only for
        tree roots) — lint rule OBS003 enforces that call sites thread
        the ambient context instead of silently orphaning spans."""
        # Positional construction (field order matters): a 10-kwarg
        # call costs ~3x a positional one, per span, on the traced
        # request path. ``args`` needs no copy — **args is fresh.
        span = SpanRecord(
            trace_id, self._next_id("s"), parent_id, name,
            self._clock_ns(), None, "open", self.process, self.pid, args,
        )
        self._open[span.span_id] = span
        return span

    def finish(self, span: SpanRecord, status: str = "ok", **args: Any) -> SpanRecord:
        """Close *span* with *status*; idempotent for already-closed spans."""
        if span.span_id in self._open:
            del self._open[span.span_id]
            span.end_ns = self._clock_ns()
            span.status = status
            if args:
                span.args.update(args)
            self._append(span)
        return span

    def add_complete(
        self,
        name: str,
        *,
        trace_id: str,
        parent_id: Optional[str],
        start_ns: int,
        end_ns: Optional[int] = None,
        status: str = "ok",
        **args: Any,
    ) -> SpanRecord:
        """Record an already-measured span (start captured earlier)."""
        # Positional construction — see start() for why.
        span = SpanRecord(
            trace_id, self._next_id("s"), parent_id, name, start_ns,
            self._clock_ns() if end_ns is None else end_ns,
            status, self.process, self.pid, args,
        )
        self._append(span)
        return span

    def abort_open(self, reason: str = "aborted") -> int:
        """Force-close every open span with ``aborted`` status.

        Called on service shutdown and after shard crashes so no span
        ever reaches an export without an end timestamp."""
        aborted = 0
        for span_id in list(self._open):
            span = self._open.pop(span_id)
            span.end_ns = self._clock_ns()
            span.status = "aborted"
            span.args.setdefault("abort_reason", reason)
            self._append(span)
            aborted += 1
        return aborted

    def absorb(self, records: Optional[Iterable[Dict[str, Any]]]) -> int:
        """Adopt spans recorded in another process (pool workers)."""
        absorbed = 0
        for record in records or ():
            self._append(span_from_dict(record))
            absorbed += 1
        return absorbed

    def drain(self) -> List[Dict[str, Any]]:
        """Return every *closed* span as dicts and reset the buffer."""
        live = self._spans[self._head :]
        spans = [span.as_dict() for span in live]
        self._dropped += len(live)
        self._spans = []
        self._head = 0
        return spans

    def snapshot(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Non-draining view of closed spans (the ``trace`` protocol op)."""
        spans = self._spans[self._head :] if self._head else self._spans
        if trace_id is not None:
            spans = [s for s in spans if s.trace_id == trace_id]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [span.as_dict() for span in spans]


def _span_sort_key(record: Dict[str, Any]) -> Tuple:
    return (
        str(record.get("trace_id", "")),
        int(record.get("start_ns", 0)),
        str(record.get("span_id", "")),
    )


def merge_span_snapshots(
    snapshots: Iterable[Sequence[Dict[str, Any]]],
) -> List[Dict[str, Any]]:
    """Merge per-shard/per-worker span snapshots order-independently.

    Duplicates (a worker span absorbed by the service *and* still in a
    shard snapshot) collapse on ``(trace_id, span_id, process, pid)``;
    the result is sorted so any arrival order of the inputs yields the
    same list — the same contract :func:`repro.obs.metrics.merge_snapshots`
    gives metric snapshots.
    """
    merged: Dict[Tuple, Dict[str, Any]] = {}
    for snapshot in snapshots:
        for record in snapshot or ():
            key = (
                str(record.get("trace_id", "")),
                str(record.get("span_id", "")),
                str(record.get("process", "")),
                int(record.get("pid", 0)),
            )
            merged[key] = dict(record)
    return sorted(merged.values(), key=_span_sort_key)


def _intervals_union_ns(intervals: List[Tuple[int, int]]) -> int:
    """Total length of the union of half-open integer intervals."""
    if not intervals:
        return 0
    intervals.sort()
    total = 0
    cur_start, cur_end = intervals[0]
    for start, end in intervals[1:]:
        if start > cur_end:
            total += cur_end - cur_start
            cur_start, cur_end = start, end
        else:
            cur_end = max(cur_end, end)
    total += cur_end - cur_start
    return total


def _fold_intervals(
    wall_ns: int, intervals: List[Tuple[int, int, str]]
) -> Dict[str, int]:
    """Shared fold core over clipped ``(start, end, name)`` intervals.

    Per component the interval *union* is charged (sweep fan-out
    overlaps); the residue is ``queue_wait``, which makes
    ``sum(stack.values()) == wall_ns`` an exact integer identity.
    """
    intervals.sort()
    totals: Dict[str, int] = {}
    disjoint = True
    prev_end = -1
    for start, end, name in intervals:
        if start < prev_end:
            disjoint = False
        if end > prev_end:
            prev_end = end
        if name in totals:
            totals[name] += end - start
        else:
            totals[name] = end - start
    if disjoint:
        # The common sequential request (a warm hit is pure
        # cache_tier0 + serialize): nothing overlaps, so every union
        # is a plain sum and the shave pass below is provably a no-op.
        explained = 0
        for ns in totals.values():
            explained += ns
        totals["queue_wait"] = wall_ns - explained
        return {n: totals[n] for n in STACK_COMPONENTS if n in totals}
    by_name: Dict[str, List[Tuple[int, int]]] = {}
    all_intervals: List[Tuple[int, int]] = []
    for start, end, name in intervals:
        by_name.setdefault(name, []).append((start, end))
        all_intervals.append((start, end))
    stack: Dict[str, int] = {}
    for name in STACK_COMPONENTS:
        if name == "queue_wait":
            continue
        spans = by_name.get(name)
        if spans:
            stack[name] = _intervals_union_ns(spans)
    explained = _intervals_union_ns(all_intervals)
    stack["queue_wait"] = wall_ns - explained
    overlap = sum(stack.values()) - wall_ns
    if overlap > 0:
        # Components of *different* names can overlap in time — a
        # coalesce_wait brackets the leader's pool_execute, and a sweep
        # runs its points concurrently. Charge the overlap to the
        # waiting-side components first (they describe idle time, the
        # busy components describe work) so the sum-to-wall identity
        # stays an exact integer equality.
        for name in (
            "queue_wait",
            "coalesce_wait",
            "serialize",
            "store_put",
            "cache_backend",
            "cache_tier0",
            "pool_execute",
        ):
            if overlap <= 0:
                break
            if name in stack:
                shaved = min(stack[name], overlap)
                stack[name] -= shaved
                overlap -= shaved
    return {name: stack[name] for name in STACK_COMPONENTS if name in stack}


def fold_latency_stack(
    root: Dict[str, Any], spans: Sequence[Dict[str, Any]]
) -> Dict[str, int]:
    """Fold a request's span tree into its latency stack (int ns).

    Components are the spans structurally owned by the request: direct
    children of *root* plus same-trace ``coalesce_wait`` spans (those
    parent to the *leader's* pool_execute span, crossing the coalescing
    boundary on purpose).  Worker-internal spans are grandchildren and
    excluded, so nothing is double-counted.  Per component the clipped
    interval *union* is charged (sweep fan-out overlaps); the residue
    is ``queue_wait``, which makes ``sum(stack.values()) == wall_ns``
    an exact integer identity.
    """
    root_id = root["span_id"]
    trace_id = root["trace_id"]
    root_start = int(root["start_ns"])
    root_end = int(root["end_ns"] if root.get("end_ns") is not None else root_start)
    wall_ns = max(0, root_end - root_start)

    intervals: List[Tuple[int, int, str]] = []
    for record in spans:
        if record.get("trace_id") != trace_id:
            continue
        name = record.get("name")
        if name not in STACK_COMPONENTS:
            continue
        if record.get("parent_id") != root_id and name != "coalesce_wait":
            continue
        end_ns = record.get("end_ns")
        if end_ns is None:
            continue
        start = max(root_start, int(record["start_ns"]))
        end = min(root_end, int(end_ns))
        if end > start:
            intervals.append((start, end, name))
    return _fold_intervals(wall_ns, intervals)


def fold_latency_stack_records(
    root: SpanRecord, records: Sequence[SpanRecord]
) -> Dict[str, int]:
    """Attribute-access twin of :func:`fold_latency_stack`.

    The serve hot path folds live :class:`SpanRecord` objects straight
    out of :meth:`SpanCollector.since_records`; skipping the per-span
    dict conversion is worth several microseconds per traced request,
    which the enabled-overhead benchmark budget actually notices.
    """
    root_start = root.start_ns
    root_end = root.end_ns if root.end_ns is not None else root_start
    wall_ns = root_end - root_start
    if wall_ns < 0:
        wall_ns = 0
    root_id = root.span_id
    trace_id = root.trace_id

    intervals: List[Tuple[int, int, str]] = []
    for record in records:
        if record.trace_id != trace_id:
            continue
        name = record.name
        if name not in STACK_COMPONENTS:
            continue
        if record.parent_id != root_id and name != "coalesce_wait":
            continue
        end = record.end_ns
        if end is None:
            continue
        start = record.start_ns
        if start < root_start:
            start = root_start
        if end > root_end:
            end = root_end
        if end > start:
            intervals.append((start, end, name))
    return _fold_intervals(wall_ns, intervals)


def collapse_stacks(spans: Sequence[Dict[str, Any]]) -> List[str]:
    """Fold spans into collapsed-stack ("flame") lines: ``a;b;c <ns>``.

    Each span contributes its *self time* (duration minus closed
    children, clamped at zero) to the frame path from its tree root.
    Lines aggregate identical paths and sort lexically, so the output
    is deterministic regardless of span order.
    """
    by_id: Dict[str, Dict[str, Any]] = {}
    children: Dict[str, List[Dict[str, Any]]] = {}
    for record in spans:
        if record.get("end_ns") is None:
            continue
        by_id[str(record["span_id"])] = record
        parent = record.get("parent_id")
        if parent is not None:
            children.setdefault(str(parent), []).append(record)

    def path_of(record: Dict[str, Any]) -> str:
        frames: List[str] = []
        seen = set()
        node: Optional[Dict[str, Any]] = record
        while node is not None:
            span_id = str(node["span_id"])
            if span_id in seen:
                break
            seen.add(span_id)
            frames.append(str(node["name"]))
            parent = node.get("parent_id")
            node = by_id.get(str(parent)) if parent is not None else None
        return ";".join(reversed(frames))

    totals: Dict[str, int] = {}
    for span_id, record in by_id.items():
        duration = max(0, int(record["end_ns"]) - int(record["start_ns"]))
        child_time = sum(
            max(0, int(c["end_ns"]) - int(c["start_ns"]))
            for c in children.get(span_id, ())
        )
        self_ns = max(0, duration - child_time)
        if self_ns <= 0:
            continue
        path = path_of(record)
        totals[path] = totals.get(path, 0) + self_ns
    return [f"{path} {value}" for path, value in sorted(totals.items())]


__all__ = [
    "SPAN_STATUSES",
    "STACK_COMPONENTS",
    "SpanCollector",
    "SpanRecord",
    "collapse_stacks",
    "fold_latency_stack",
    "merge_span_snapshots",
    "span_from_dict",
]
