"""Cycle-level invariant sanitizer for the simulators.

The paper's methodology is an accounting identity: total cycles
decompose exactly into base + miss-event penalties, and the penalty of
a misprediction is resolution + frontend refill. The sanitizer turns
those identities — plus the microarchitectural invariants they rest on
(bounded ROB occupancy, monotonic commit, per-instruction stage
ordering) — into runtime checks that run alongside a normal
simulation.

Activation: set ``REPRO_SANITIZE=1`` in the environment (inherited by
lab worker processes) or call :func:`enable` (the CLI's ``--sanitize``
flag does). When inactive, every hook is a ``None`` check in the hot
loop and costs nothing.

Violations never raise mid-run: they are collected into structured
:class:`SanitizerReport` records so one bad point cannot kill a
thousand-point sweep. The lab drains reports per job and writes them
into run manifests; ``repro analyze <run>`` reads them back.

This module sits at the bottom of the dependency stack (nothing from
``repro`` is imported) so the pipeline, interval, and lab layers can
all hook into it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

ENV_VAR = "REPRO_SANITIZE"

#: Tolerance for the CPI-stack accounting identity.
ACCOUNTING_TOLERANCE = 1e-9


@dataclass(frozen=True)
class InvariantViolation:
    """One failed invariant check, with enough context to localize it."""

    check: str
    message: str
    cycle: Optional[int] = None
    seq: Optional[int] = None

    def render(self) -> str:
        where = []
        if self.cycle is not None:
            where.append(f"cycle {self.cycle}")
        if self.seq is not None:
            where.append(f"seq {self.seq}")
        suffix = f" [{', '.join(where)}]" if where else ""
        return f"{self.check}: {self.message}{suffix}"

    def as_payload(self) -> Dict[str, Any]:
        return {
            "check": self.check,
            "message": self.message,
            "cycle": self.cycle,
            "seq": self.seq,
        }


@dataclass
class SanitizerReport:
    """Aggregated outcome of one drained sanitizer session."""

    checks_run: int = 0
    runs: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        status = "clean" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"sanitizer: {status} over {self.checks_run} check(s), "
            f"{self.runs} run(s)"
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {v.render()}" for v in self.violations)
        return "\n".join(lines)

    def as_payload(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "checks_run": self.checks_run,
            "runs": self.runs,
            "violations": [v.as_payload() for v in self.violations],
        }


class Sanitizer:
    """Collects invariant checks and violations for one session.

    One sanitizer may span several simulations (a sweep); the cores
    call the cheap cycle-level hooks during the run and
    :meth:`seal_run` once at the end for the post-run timeline and
    accounting checks.
    """

    def __init__(self) -> None:
        self.checks_run = 0
        self.runs = 0
        self.violations: List[InvariantViolation] = []
        self._last_commit_cycle: Optional[int] = None

    # -- recording ---------------------------------------------------------

    def record(
        self,
        check: str,
        message: str,
        cycle: Optional[int] = None,
        seq: Optional[int] = None,
    ) -> None:
        self.violations.append(
            InvariantViolation(check=check, message=message, cycle=cycle, seq=seq)
        )

    # -- cycle-level hooks (called from the simulator hot loop) ------------

    def check_occupancy(self, cycle: int, occupancy: int, capacity: int) -> None:
        """ROB / in-flight occupancy may never exceed the configured size."""
        self.checks_run += 1
        if occupancy > capacity:
            self.record(
                "rob-occupancy",
                f"in-flight occupancy {occupancy} exceeds capacity {capacity}",
                cycle=cycle,
            )

    def check_commit(self, cycle: int, seq: Optional[int] = None) -> None:
        """Commit timestamps must be monotonically non-decreasing."""
        self.checks_run += 1
        last = self._last_commit_cycle
        if last is not None and cycle < last:
            self.record(
                "commit-monotonic",
                f"commit at cycle {cycle} after a commit at cycle {last}",
                cycle=cycle,
                seq=seq,
            )
        self._last_commit_cycle = cycle

    def begin_run(self) -> None:
        """Reset per-run state (commit clock restarts per simulation)."""
        self._last_commit_cycle = None

    # -- post-run checks ---------------------------------------------------

    def check_result(self, result: Any, config: Any) -> None:
        """Timeline and occupancy invariants of a finished simulation.

        ``result`` is a ``SimulationResult`` and ``config`` a
        ``CoreConfig``; both are duck-typed so this module stays
        import-cycle-free.
        """
        self.checks_run += 1
        if result.rob_peak_occupancy > config.rob_size:
            self.record(
                "rob-occupancy",
                f"peak occupancy {result.rob_peak_occupancy} exceeds "
                f"rob_size {config.rob_size}",
            )
        dispatch = result.dispatch_cycle
        issue = result.issue_cycle
        complete = result.complete_cycle
        commit = result.commit_cycle
        if dispatch and issue and complete and commit:
            for seq in range(result.instructions):
                self.checks_run += 1
                if not (
                    dispatch[seq] <= issue[seq] <= complete[seq]
                    and complete[seq] <= commit[seq]
                ):
                    self.record(
                        "stage-ordering",
                        f"dispatch={dispatch[seq]} issue={issue[seq]} "
                        f"complete={complete[seq]} commit={commit[seq]} "
                        "violates dispatch<=issue<=complete<=commit",
                        seq=seq,
                    )
        for event in result.events:
            penalty = getattr(event, "penalty", None)
            if penalty is None:
                continue
            self.checks_run += 1
            if event.resolve_cycle < event.cycle:
                self.record(
                    "branch-resolution",
                    f"branch resolved at {event.resolve_cycle} before it "
                    f"dispatched at {event.cycle}",
                    seq=event.seq,
                )
            if penalty != event.resolution + event.refill_cycles:
                self.record(
                    "penalty-identity",
                    f"penalty {penalty} != resolution {event.resolution} + "
                    f"refill {event.refill_cycles}",
                    seq=event.seq,
                )

    def check_cpi_stack(self, stack: Any) -> None:
        """The accounting identity: components sum to total cycles."""
        self.checks_run += 1
        total = (
            stack.base
            + stack.bpred
            + stack.icache
            + stack.long_dcache
            + stack.other
        )
        if abs(total - stack.total_cycles) > ACCOUNTING_TOLERANCE:
            self.record(
                "cpi-stack-identity",
                f"components sum to {total!r} but the run measured "
                f"{stack.total_cycles!r} cycles "
                f"(|delta| > {ACCOUNTING_TOLERANCE})",
            )

    def check_penalty_decomposition(self, decomposition: Any) -> None:
        """Per-misprediction identity: penalty == resolution + refill."""
        self.checks_run += 1
        if decomposition.penalty != (
            decomposition.resolution + decomposition.refill
        ):
            self.record(
                "penalty-identity",
                f"penalty {decomposition.penalty} != resolution "
                f"{decomposition.resolution} + refill {decomposition.refill}",
                seq=decomposition.seq,
            )

    def check_fast_estimate(self, estimate: Any, frontend_depth: int) -> None:
        """Interval-simulation identity: the misprediction component is
        the sum of per-branch resolutions plus one refill per branch."""
        self.checks_run += 1
        expected = sum(estimate.resolutions) + (
            estimate.mispredict_count * frontend_depth
        )
        if abs(estimate.mispredict_cycles - expected) > ACCOUNTING_TOLERANCE:
            self.record(
                "fast-sim-identity",
                f"mispredict_cycles {estimate.mispredict_cycles!r} != "
                f"sum(resolutions) + count*refill = {expected!r}",
            )

    def seal_run(self, result: Any, config: Any) -> None:
        """Run every post-run check and count the run as sanitized."""
        self.check_result(result, config)
        self.runs += 1

    # -- reporting ---------------------------------------------------------

    def report(self) -> SanitizerReport:
        return SanitizerReport(
            checks_run=self.checks_run,
            runs=self.runs,
            violations=list(self.violations),
        )


# -- the ambient sanitizer (what the simulators consult) -------------------

_forced: Optional[bool] = None
_ambient: Optional[Sanitizer] = None


def enabled() -> bool:
    """Is sanitizing active (forced flag first, then the environment)?"""
    if _forced is not None:
        return _forced
    return os.environ.get(ENV_VAR, "").strip() not in ("", "0", "false", "no")


def enable() -> None:
    """Force-enable sanitizing and export it to child worker processes."""
    global _forced
    _forced = True
    os.environ[ENV_VAR] = "1"


def disable() -> None:
    """Force-disable sanitizing (tests use this to isolate state)."""
    global _forced
    _forced = False
    os.environ.pop(ENV_VAR, None)


def reset() -> None:
    """Clear the forced flag and drop any ambient sanitizer state."""
    global _forced, _ambient
    _forced = None
    _ambient = None


def current() -> Optional[Sanitizer]:
    """The ambient sanitizer, or None when sanitizing is inactive.

    The hot paths call this once per run and then branch on ``None``,
    so a disabled sanitizer costs one dict lookup per simulation.
    """
    global _ambient
    if not enabled():
        return None
    if _ambient is None:
        _ambient = Sanitizer()
    return _ambient


def drain_report() -> Optional[SanitizerReport]:
    """Return the ambient report and start a fresh collection window.

    Returns None when sanitizing is inactive or nothing ran; callers
    (the lab's ``execute_job``, the CLI) attach the report to their
    telemetry.
    """
    global _ambient
    if _ambient is None:
        return None
    report = _ambient.report()
    _ambient = Sanitizer() if enabled() else None
    if report.checks_run == 0 and not report.violations:
        return None
    return report


__all__ = [
    "ACCOUNTING_TOLERANCE",
    "ENV_VAR",
    "InvariantViolation",
    "Sanitizer",
    "SanitizerReport",
    "current",
    "disable",
    "drain_report",
    "enable",
    "enabled",
    "reset",
]
