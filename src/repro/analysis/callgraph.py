"""Symbol table and call graph for the whole-program analysis pass.

The extraction half of ``repro.analysis.program``: one pass over a
parsed module produces a JSON-serializable :class:`FunctionSummary`
per function — everything the interprocedural rules need, with the AST
thrown away afterwards. Summaries are what the content-addressed
analysis cache stores, so they must capture *all* cross-file facts:

- **resolved call sites**: every call's dotted callee name, resolved
  through the module's import table into an absolute name
  (``repro.obs.export.write_jsonl``), with per-argument taint tokens;
- **direct blocking operations** (``time.sleep``, subprocess, file
  I/O) for SRV002 reachability;
- **direct raw write operations** (``open(..., "w")`` and friends
  outside :mod:`repro.resilience.atomic`) for RES002 reachability;
- **entropy sources** (wall clock, unseeded RNG) plus assignment and
  return dataflow tokens for the DET001 taint fixpoint.

Resolution is deliberately conservative: a call we cannot resolve
(``obj.method()`` on an unknown receiver) simply produces no edge, so
the interprocedural rules under-approximate rather than guess. Method
calls on ``self`` resolve to the enclosing class; plain names resolve
through imports and module-level definitions.

Taint tokens are flat strings: ``entropy`` (a direct source in the
expression), ``call:<dotted>`` (the value of a call — tainted iff the
callee is), ``name:<local>`` (a local variable — tainted iff one of
its assignments is). :class:`SymbolTable` resolves them at program
level after the cache has been consulted.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfg import walk_own

#: Calls that block the calling thread (the SRV002 seed set). Maps the
#: resolved dotted name to a short reason.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "time.sleep blocks the thread",
    "subprocess.run": "subprocess.run blocks until the child exits",
    "subprocess.call": "subprocess.call blocks until the child exits",
    "subprocess.check_call": "subprocess.check_call blocks",
    "subprocess.check_output": "subprocess.check_output blocks",
    "subprocess.Popen": "process spawn does blocking syscalls",
    "os.system": "os.system blocks until the shell exits",
    "os.wait": "os.wait blocks",
    "os.waitpid": "os.waitpid blocks",
    "socket.create_connection": "socket connect blocks",
    "shutil.copy": "file copy is blocking I/O",
    "shutil.copy2": "file copy is blocking I/O",
    "shutil.copytree": "tree copy is blocking I/O",
    "shutil.rmtree": "tree removal is blocking I/O",
}

#: Attribute methods that do file I/O regardless of receiver type.
BLOCKING_PATH_METHODS = (
    "read_text", "read_bytes", "write_text", "write_bytes",
)

#: Entropy sources for DET001 (resolved dotted names). ``random.Random``
#: only counts when called with no arguments (unseeded).
ENTROPY_CALLS: Dict[str, str] = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.process_time": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.datetime.today": "wall clock",
    "datetime.date.today": "wall clock",
    "random.random": "unseeded RNG",
    "random.randint": "unseeded RNG",
    "random.randrange": "unseeded RNG",
    "random.choice": "unseeded RNG",
    "random.uniform": "unseeded RNG",
    "random.gauss": "unseeded RNG",
    "random.getrandbits": "unseeded RNG",
    "random.shuffle": "unseeded RNG",
    "numpy.random.random": "unseeded RNG",
    "numpy.random.rand": "unseeded RNG",
    "numpy.random.randn": "unseeded RNG",
    "numpy.random.randint": "unseeded RNG",
    "os.urandom": "process entropy",
    "os.getpid": "process identity",
    "uuid.uuid1": "process entropy",
    "uuid.uuid4": "process entropy",
    "secrets.token_bytes": "process entropy",
    "secrets.token_hex": "process entropy",
    "secrets.randbits": "process entropy",
}

#: Module aliases normalized before table lookups (``np.random.rand``
#: counts as ``numpy.random.rand``).
_ALIAS_PREFIXES = {"np.": "numpy."}

#: Off-loop trampolines: a function *referenced* (not called) as their
#: argument runs in a worker thread, so it is never a loop-blocking edge.
TO_THREAD_CALLS = frozenset({
    "asyncio.to_thread",
    "loop.run_in_executor",
})

_WRITE_CHARS = ("w", "a", "x", "+")


def module_name_for(path: Path, roots: Sequence[Path]) -> str:
    """Dotted module name of ``path`` relative to the analysis roots.

    The longest root containing the file wins; a leading ``src``
    component is dropped (the repo's package dir layout), and
    ``__init__.py`` names the package itself. Files outside every root
    fall back to their own path components.
    """
    resolved = path.resolve()
    best: Optional[Tuple[int, Path]] = None
    for root in roots:
        root = root.resolve()
        try:
            rel = resolved.relative_to(root)
        except ValueError:
            continue
        if best is None or len(root.parts) > best[0]:
            best = (len(root.parts), rel)
    rel = best[1] if best is not None else Path(*resolved.parts[-3:])
    parts = list(rel.with_suffix("").parts)
    while parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or rel.stem


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an attribute/name chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class CallSite:
    """One call expression, resolved as far as imports allow."""

    callee: str
    line: int
    end_line: int
    col: int
    awaited: bool = False
    arg_tokens: List[List[str]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "callee": self.callee,
            "line": self.line,
            "end_line": self.end_line,
            "col": self.col,
            "awaited": self.awaited,
            "args": self.arg_tokens,
        }

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "CallSite":
        return cls(
            callee=obj["callee"],
            line=obj["line"],
            end_line=obj["end_line"],
            col=obj["col"],
            awaited=obj["awaited"],
            arg_tokens=[list(tokens) for tokens in obj["args"]],
        )


@dataclass
class FunctionSummary:
    """Everything the program rules need to know about one function."""

    qualname: str        # module-qualified: repro.serve.service.Shard.submit
    module: str
    name: str            # within-module qualifier: Shard.submit
    lineno: int
    end_lineno: int
    is_async: bool
    calls: List[CallSite] = field(default_factory=list)
    #: (dotted, reason, line) — direct blocking operations.
    blocking: List[Tuple[str, str, int]] = field(default_factory=list)
    #: (description, line) — direct non-atomic write operations.
    raw_writes: List[Tuple[str, int]] = field(default_factory=list)
    #: (dotted, reason, line) — direct entropy sources.
    entropy: List[Tuple[str, str, int]] = field(default_factory=list)
    #: target name -> taint tokens from each assignment to it.
    assigns: List[Tuple[str, List[str]]] = field(default_factory=list)
    #: taint tokens appearing in return expressions.
    returns: List[List[str]] = field(default_factory=list)

    def to_json(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "lineno": self.lineno,
            "end_lineno": self.end_lineno,
            "is_async": self.is_async,
            "calls": [call.to_json() for call in self.calls],
            "blocking": [list(item) for item in self.blocking],
            "raw_writes": [list(item) for item in self.raw_writes],
            "entropy": [list(item) for item in self.entropy],
            "assigns": [[name, list(tokens)] for name, tokens in self.assigns],
            "returns": [list(tokens) for tokens in self.returns],
        }

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "FunctionSummary":
        return cls(
            qualname=obj["qualname"],
            module=obj["module"],
            name=obj["name"],
            lineno=obj["lineno"],
            end_lineno=obj["end_lineno"],
            is_async=obj["is_async"],
            calls=[CallSite.from_json(c) for c in obj["calls"]],
            blocking=[tuple(item) for item in obj["blocking"]],
            raw_writes=[tuple(item) for item in obj["raw_writes"]],
            entropy=[tuple(item) for item in obj["entropy"]],
            assigns=[(name, list(tokens)) for name, tokens in obj["assigns"]],
            returns=[list(tokens) for tokens in obj["returns"]],
        )


class ImportTable:
    """Local-name → absolute-dotted-name bindings for one module."""

    def __init__(self, module: str, tree: ast.Module) -> None:
        self.module = module
        self.bindings: Dict[str, str] = {}
        package = module.rsplit(".", 1)[0] if "." in module else ""
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.bindings[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.bindings.setdefault(root, root)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: climb from the module's package.
                    parts = module.split(".")
                    anchor = parts[: len(parts) - node.level]
                    base = ".".join(anchor + ([base] if base else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    self.bindings[bound] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )
        # Module-level definitions shadow imports: a plain ``helper()``
        # call resolves to this module's own function, which is what
        # makes intra-module chains visible to the reachability rules.
        for node in tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                self.bindings[node.name] = f"{module}.{node.name}"

    def resolve(self, dotted: str) -> str:
        """Rewrite the leading segment through the import bindings."""
        head, _, rest = dotted.partition(".")
        target = self.bindings.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target


def _normalize(dotted: str) -> str:
    for prefix, repl in _ALIAS_PREFIXES.items():
        if dotted.startswith(prefix):
            return repl + dotted[len(prefix):]
    return dotted


def _taint_tokens(expr: ast.AST, imports: ImportTable) -> List[str]:
    """Flat taint tokens for one expression (names, calls, sources)."""
    tokens: List[str] = []
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            tokens.append(f"name:{node.id}")
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = _normalize(imports.resolve(dotted))
            if resolved in ENTROPY_CALLS or (
                resolved == "random.Random" and not node.args
            ):
                tokens.append("entropy")
            else:
                tokens.append(f"call:{resolved}")
    return sorted(set(tokens))


def _open_mode(node: ast.Call, positional_index: int) -> Optional[str]:
    """The mode string of an open-like call ('' when defaulted)."""
    mode: Optional[ast.AST] = None
    if len(node.args) > positional_index:
        mode = node.args[positional_index]
    else:
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
    if mode is None:
        return ""
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _raw_write_of(node: ast.Call) -> Optional[str]:
    """Description when the call writes a file without the atomic helpers."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        mode = _open_mode(node, 1)
    elif isinstance(func, ast.Attribute) and func.attr == "fdopen":
        mode = _open_mode(node, 1)
    elif isinstance(func, ast.Attribute) and func.attr == "open":
        mode = _open_mode(node, 0)
    elif isinstance(func, ast.Attribute) and func.attr in (
        "write_text", "write_bytes"
    ):
        return f".{func.attr}()"
    else:
        return None
    if mode is None:
        return "open(mode=<dynamic>)"
    if any(ch in mode for ch in _WRITE_CHARS):
        return f"open(..., {mode!r})"
    return None


def _blocking_of(
    node: ast.Call, resolved: str
) -> Optional[Tuple[str, str]]:
    """(dotted, reason) when the call blocks the calling thread."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open", "builtin open() is blocking file I/O"
    normalized = _normalize(resolved)
    if normalized in BLOCKING_CALLS:
        return normalized, BLOCKING_CALLS[normalized]
    if isinstance(func, ast.Attribute):
        if func.attr in BLOCKING_PATH_METHODS:
            return f".{func.attr}", f".{func.attr}() is blocking file I/O"
        if func.attr == "open" and isinstance(
            func.value, (ast.Name, ast.Attribute, ast.Call)
        ):
            return ".open", ".open() is blocking file I/O"
    return None


class _FunctionExtractor:
    """Collects one function's summary facts in a single walk."""

    def __init__(
        self,
        func: ast.AST,
        qualname: str,
        module: str,
        name: str,
        imports: ImportTable,
        class_methods: Dict[str, Set[str]],
        own_class: Optional[str],
    ) -> None:
        self.func = func
        self.imports = imports
        self.class_methods = class_methods
        self.own_class = own_class
        self.summary = FunctionSummary(
            qualname=qualname,
            module=module,
            name=name,
            lineno=func.lineno,
            end_lineno=getattr(func, "end_lineno", None) or func.lineno,
            is_async=isinstance(func, ast.AsyncFunctionDef),
        )

    def _resolve_callee(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        if head in ("self", "cls") and self.own_class is not None:
            # self.m(): resolve one level of method lookup on the
            # enclosing class when the method is actually defined
            # there; attribute chains and inherited names stay opaque.
            if rest and "." not in rest and rest in self.class_methods.get(
                self.own_class, ()
            ):
                return (
                    f"{self.summary.module}.{self.own_class}.{rest}"
                )
            return dotted
        return _normalize(self.imports.resolve(dotted))

    def run(self) -> FunctionSummary:
        awaited_calls: Set[int] = set()
        to_thread_refs: Set[int] = set()
        for node in walk_own(self.func):
            if isinstance(node, ast.Await):
                for sub in ast.walk(node.value):
                    if isinstance(sub, ast.Call):
                        awaited_calls.add(id(sub))
            if isinstance(node, ast.Call):
                dotted = dotted_name(node.func) or ""
                resolved = self._resolve_callee(dotted) if dotted else ""
                if resolved in TO_THREAD_CALLS or (
                    resolved.endswith(".run_in_executor")
                ):
                    # The referenced callable runs off-loop: record no
                    # call edge for it (and none for its arguments).
                    to_thread_refs.add(id(node))
        for node in walk_own(self.func):
            if isinstance(node, ast.Call):
                self._call(node, awaited_calls, to_thread_refs)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                tokens = _taint_tokens(value, self.imports)
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    for t in self._target_names(target):
                        self.summary.assigns.append((t, tokens))
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    tokens = _taint_tokens(node.value, self.imports)
                    tokens = sorted(set(
                        tokens + [f"name:{node.target.id}"]
                    ))
                    self.summary.assigns.append((node.target.id, tokens))
            elif isinstance(node, ast.Return) and node.value is not None:
                self.summary.returns.append(
                    _taint_tokens(node.value, self.imports)
                )
        return self.summary

    @staticmethod
    def _target_names(target: ast.AST) -> List[str]:
        if isinstance(target, ast.Name):
            return [target.id]
        if isinstance(target, (ast.Tuple, ast.List)):
            names: List[str] = []
            for element in target.elts:
                names.extend(_FunctionExtractor._target_names(element))
            return names
        if isinstance(target, ast.Starred):
            return _FunctionExtractor._target_names(target.value)
        return []

    def _call(
        self,
        node: ast.Call,
        awaited_calls: Set[int],
        to_thread_refs: Set[int],
    ) -> None:
        dotted = dotted_name(node.func)
        # An unresolvable callee (e.g. ``Path(p).open(...)`` — the
        # receiver is itself a call) still carries blocking / raw-write
        # facts; only the call *edge* needs a dotted name.
        resolved = self._resolve_callee(dotted) if dotted else ""
        if dotted is not None and id(node) not in to_thread_refs:
            self.summary.calls.append(CallSite(
                callee=resolved,
                line=node.lineno,
                end_line=getattr(node, "end_lineno", None) or node.lineno,
                col=node.col_offset + 1,
                awaited=id(node) in awaited_calls,
                arg_tokens=[
                    _taint_tokens(arg, self.imports)
                    for arg in list(node.args)
                    + [kw.value for kw in node.keywords]
                ],
            ))
        blocking = _blocking_of(node, resolved)
        if blocking is not None:
            self.summary.blocking.append(
                (blocking[0], blocking[1], node.lineno)
            )
        raw = _raw_write_of(node)
        if raw is not None:
            self.summary.raw_writes.append((raw, node.lineno))
        if resolved in ENTROPY_CALLS:
            self.summary.entropy.append(
                (resolved, ENTROPY_CALLS[resolved], node.lineno)
            )
        elif resolved == "random.Random" and not node.args:
            self.summary.entropy.append(
                (resolved, "unseeded RNG", node.lineno)
            )


def extract_functions(
    tree: ast.Module, module: str
) -> List[FunctionSummary]:
    """Summaries for every function/method defined in one module."""
    imports = ImportTable(module, tree)
    class_methods: Dict[str, Set[str]] = {}
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            class_methods[node.name] = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
    summaries: List[FunctionSummary] = []

    def visit(body: Iterable[ast.stmt], prefix: str, own_class: Optional[str]):
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{node.name}" if prefix else node.name
                extractor = _FunctionExtractor(
                    node,
                    qualname=f"{module}.{name}",
                    module=module,
                    name=name,
                    imports=imports,
                    class_methods=class_methods,
                    own_class=own_class,
                )
                summaries.append(extractor.run())
                visit(node.body, f"{name}.", own_class)
            elif isinstance(node, ast.ClassDef):
                visit(node.body, f"{node.name}.", node.name)
    visit(tree.body, "", None)
    return summaries


class SymbolTable:
    """All function summaries of one analysis run, by qualified name."""

    def __init__(self, summaries: Iterable[FunctionSummary]) -> None:
        self.functions: Dict[str, FunctionSummary] = {}
        for summary in summaries:
            self.functions[summary.qualname] = summary

    def __len__(self) -> int:
        return len(self.functions)

    def resolve_call(self, callee: str) -> Optional[FunctionSummary]:
        """The summary a resolved callee name refers to, if any.

        Tries the name as-is, then as a class constructor
        (``pkg.mod.Cls`` → ``pkg.mod.Cls.__init__``).
        """
        found = self.functions.get(callee)
        if found is not None:
            return found
        return self.functions.get(f"{callee}.__init__")

    def edges_from(
        self, summary: FunctionSummary
    ) -> Iterable[Tuple[CallSite, FunctionSummary]]:
        for site in summary.calls:
            target = self.resolve_call(site.callee)
            if target is not None and target is not summary:
                yield site, target


__all__ = [
    "BLOCKING_CALLS",
    "BLOCKING_PATH_METHODS",
    "CallSite",
    "ENTROPY_CALLS",
    "FunctionSummary",
    "ImportTable",
    "SymbolTable",
    "TO_THREAD_CALLS",
    "dotted_name",
    "extract_functions",
    "module_name_for",
]
