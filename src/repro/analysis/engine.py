"""The AST lint engine: rule registry, suppressions, reporters.

The engine is deliberately small: a :class:`Rule` visits one parsed
module and yields :class:`LintViolation` records; the engine owns file
discovery, ``# repro: noqa`` suppression handling, rule scoping by
directory, and rendering. Rules never read the filesystem themselves —
they receive a :class:`FileContext` with the parsed tree and source.

Suppression syntax (checked per physical line of the violation):

- ``# repro: noqa`` — suppress every rule on that line;
- ``# repro: noqa[RULE1,RULE2]`` — suppress the named rules only;
- ``# repro: noqa-file[RULE1]`` — anywhere in the file, suppress the
  named rules for the whole file (``# repro: noqa-file`` for all).

Suppressions are an escape hatch, not a default: CI gates on a clean
``repro lint src/``, so every ``noqa`` in the tree should carry a
justification comment next to it.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

_NOQA_LINE = re.compile(r"#\s*repro:\s*noqa(?:\[(?P<rules>[\w\s,.-]+)\])?")
_NOQA_FILE = re.compile(r"#\s*repro:\s*noqa-file(?:\[(?P<rules>[\w\s,.-]+)\])?")


@dataclass(frozen=True)
class LintViolation:
    """One rule hit: where, which rule, and what to do about it.

    ``end_line`` is the last physical line of the offending statement
    (== ``line`` for single-line constructs); suppression comments are
    honoured anywhere in that range, so a ``# repro: noqa`` on the
    closing line of a multi-line call works.
    """

    rule: str
    path: str
    line: int
    col: int
    message: str
    end_line: int = 0

    def __post_init__(self) -> None:
        if self.end_line < self.line:
            object.__setattr__(self, "end_line", self.line)

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_payload(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "message": self.message,
        }


@dataclass(frozen=True)
class FileContext:
    """Everything a rule may inspect about one file."""

    path: str  # as reported (relative when discovered under a root)
    tree: ast.Module
    source: str
    lines: Tuple[str, ...]

    def parts(self) -> Tuple[str, ...]:
        return PurePosixPath(self.path.replace("\\", "/")).parts


class Rule:
    """Base class for lint rules.

    Subclasses set the class attributes and implement :meth:`check`.
    ``scope`` restricts the rule to files whose path contains one of
    the named directories (``None`` = every file); ``exempt`` lists
    path suffixes the rule never fires on (e.g. the one blessed RNG
    module).
    """

    id: str = ""
    name: str = ""
    description: str = ""
    scope: Optional[Tuple[str, ...]] = None
    exempt: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        parts = ctx.parts()
        posix = "/".join(parts)
        for suffix in self.exempt:
            if posix.endswith(suffix):
                return False
        if self.scope is None:
            return True
        if any(part in self.scope for part in parts[:-1]):
            return True
        # A scope also matches the single-file module of the same name
        # (``serve.py`` for scope "serve"), not just the directory form.
        stem = PurePosixPath(parts[-1]).stem if parts else ""
        return stem in self.scope

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        raise NotImplementedError

    def violation(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> LintViolation:
        line = getattr(node, "lineno", 1)
        return LintViolation(
            rule=self.id,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )


#: Registry of every known rule, keyed by rule id (populated by
#: :func:`register`; ``repro.analysis.rules`` fills it on import).
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    if not rule_cls.id:
        raise ValueError(f"rule {rule_cls.__name__} has no id")
    if rule_cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.id!r}")
    RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """Instantiate every registered rule (importing the default pack)."""
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return [cls() for _, cls in sorted(RULE_REGISTRY.items())]


@dataclass
class LintReport:
    """Outcome of one lint run over a set of files."""

    violations: List[LintViolation] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    def render_human(self) -> str:
        out = [v.render() for v in sorted(
            self.violations, key=lambda v: (v.path, v.line, v.col, v.rule)
        )]
        for path, error in self.parse_errors:
            out.append(f"{path}: parse error: {error}")
        out.append(
            f"{len(self.violations)} violation(s), {self.suppressed} "
            f"suppressed, {self.files_checked} file(s) checked"
        )
        return "\n".join(out)

    def render_json(self) -> str:
        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "suppressed": self.suppressed,
                "parse_errors": [
                    {"path": p, "error": e} for p, e in self.parse_errors
                ],
                "violations": [v.as_payload() for v in self.violations],
            },
            indent=1,
        )


def _file_suppressions(lines: Sequence[str]) -> Optional[set]:
    """Rules suppressed for the whole file (None = nothing; empty set =
    everything)."""
    suppressed: Optional[set] = None
    for line in lines:
        match = _NOQA_FILE.search(line)
        if not match:
            continue
        names = match.group("rules")
        if names is None:
            return set()  # blanket file suppression
        if suppressed is None:
            suppressed = set()
        suppressed.update(n.strip() for n in names.split(",") if n.strip())
    return suppressed


def _line_suppresses(line: str, rule_id: str) -> bool:
    match = _NOQA_LINE.search(line)
    if not match:
        return False
    names = match.group("rules")
    if names is None:
        return True
    return rule_id in {n.strip() for n in names.split(",")}


def suppresses(
    lines: Sequence[str],
    file_suppressed: Optional[set],
    violation: LintViolation,
) -> bool:
    """True when a file- or line-level ``noqa`` covers ``violation``.

    Line suppressions are honoured on *any* physical line of the
    violating statement (``violation.line`` .. ``violation.end_line``),
    so a trailing ``# repro: noqa`` on the closing line of a multi-line
    call is not silently ignored.
    """
    if file_suppressed is not None and (
        not file_suppressed or violation.rule in file_suppressed
    ):
        return True
    first = max(violation.line - 1, 0)
    last = min(max(violation.end_line, violation.line), len(lines))
    for line_idx in range(first, last):
        if _line_suppresses(lines[line_idx], violation.rule):
            return True
    return False


def lint_parsed(
    ctx: FileContext, rules: Sequence[Rule], report: LintReport
) -> LintReport:
    """Run ``rules`` over an already-parsed module into ``report``."""
    file_suppressed = _file_suppressions(ctx.lines)
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for violation in rule.check(ctx):
            if suppresses(ctx.lines, file_suppressed, violation):
                report.suppressed += 1
            else:
                report.violations.append(violation)
    return report


def lint_source(
    source: str, path: str, rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Lint one in-memory module; the unit the file walker builds on."""
    report = LintReport(files_checked=1)
    if rules is None:
        rules = all_rules()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        report.parse_errors.append((path, str(exc)))
        return report
    lines = tuple(source.splitlines())
    ctx = FileContext(path=path, tree=tree, source=source, lines=lines)
    return lint_parsed(ctx, rules, report)


def reported_path(path: Path) -> str:
    """Stable reported form: repo-relative POSIX when under the cwd.

    Lint artifacts (JSON reports, SARIF, baselines) are diffed across
    machines and CI runners; an absolute ``str(path)`` bakes the
    runner's checkout location into every record. Anything outside the
    cwd keeps its own path, normalized to POSIX separators.
    """
    try:
        return path.resolve().relative_to(Path.cwd().resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def discover_files(paths: Iterable[str]) -> List[Tuple[Path, str]]:
    """Expand files/directories into (absolute, reported) python paths."""
    found: List[Tuple[Path, str]] = []
    for raw in paths:
        base = Path(raw)
        if base.is_dir():
            for path in sorted(base.rglob("*.py")):
                if "__pycache__" in path.parts:
                    continue
                found.append((path, reported_path(path)))
        elif base.suffix == ".py":
            found.append((base, reported_path(base)))
    return found


def lint_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> LintReport:
    """Lint every python file under ``paths``; returns one merged report."""
    if rules is None:
        rules = all_rules()
    merged = LintReport()
    for path, reported in discover_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            merged.parse_errors.append((reported, str(exc)))
            continue
        report = lint_source(source, reported, rules)
        merged.violations.extend(report.violations)
        merged.suppressed += report.suppressed
        merged.parse_errors.extend(report.parse_errors)
        merged.files_checked += 1
    merged.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return merged


def rule_catalogue() -> List[Dict[str, str]]:
    """Id/name/description/scope rows for docs and ``lint --list``.

    Covers both packs: the per-file rules registered here and the
    whole-program rules from :mod:`repro.analysis.iprules`.
    """
    from repro.analysis.iprules import all_program_rules

    rows = []
    for rule in all_rules() + list(all_program_rules()):
        rows.append(
            {
                "id": rule.id,
                "name": rule.name,
                "description": rule.description,
                "scope": ", ".join(rule.scope) if rule.scope else "everywhere",
            }
        )
    rows.sort(key=lambda row: row["id"])
    return rows


__all__ = [
    "FileContext",
    "LintReport",
    "LintViolation",
    "RULE_REGISTRY",
    "Rule",
    "all_rules",
    "discover_files",
    "lint_parsed",
    "lint_paths",
    "lint_source",
    "register",
    "reported_path",
    "rule_catalogue",
    "suppresses",
]
