"""Per-function control flow with await-point annotations.

The asyncio race rules need to reason about *interleaving windows*: on
a single event loop, shared state is only ever touched concurrently at
``await`` points, so the hazard shape is "read a shared cell, await,
then write it back" — any other handler may have run in between and
the write clobbers its update. A full basic-block CFG is more than the
rules need; instead :func:`scan_race_windows` walks each function body
in evaluation order as an abstract interpreter, threading a small
per-attribute state machine through branches:

- shared cells are ``self.<attr>`` loads/stores (including subscripts
  like ``self._inflight[key]`` and mutating method calls like
  ``self.pending.pop(...)``);
- an ``await`` at lock depth zero *promotes* every attribute read so
  far to "read across await";
- a write to a promoted attribute is the RACE001 violation;
- a write *before* the await kills the pending read — that is the
  correct singleflight shape (check-and-claim synchronously, then
  await), and it must not be flagged;
- ``async with <lock-ish>`` bodies run at lock depth > 0: awaiting
  while holding the lock serializes the read-modify-write, so no
  promotion happens inside;
- branches fork the state and join by per-attribute maximum; a branch
  that terminates (``return``/``raise``/``break``/``continue``) drops
  out of the join, which is what makes the early-return coalescing
  path in the serve singleflight clean;
- loop bodies are walked twice so a window spanning the back edge
  (await at the bottom, write at the top) is still seen.

:func:`scan_orphan_tasks` covers RACE002: ``asyncio.create_task`` /
``ensure_future`` results that are neither awaited, gathered, stored,
returned, nor given an ``add_done_callback`` — an exception in such a
task is silently dropped by the event loop (and the task itself may be
garbage collected mid-flight).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

#: Receiver-name fragments treated as locks for ``async with`` regions.
LOCK_HINTS = ("lock", "mutex", "sem", "guard", "gate")

#: Methods on a shared cell that mutate it in place.
MUTATOR_METHODS = frozenset({
    "add", "append", "appendleft", "clear", "discard", "extend",
    "insert", "pop", "popitem", "popleft", "remove", "setdefault",
    "update",
})

#: Methods that only observe a shared cell.
READER_METHODS = frozenset({
    "copy", "count", "get", "index", "items", "keys", "values",
})

#: Spawn calls whose result must not be dropped on the floor (RACE002).
TASK_SPAWNERS = frozenset({
    "asyncio.create_task",
    "asyncio.ensure_future",
    "create_task",
    "ensure_future",
})

#: Task-consuming sinks: a spawned task passed here is supervised.
_IDLE = 0          # attribute untouched (or window killed by a write)
_READ = 1          # read since the last write, no await yet
_READ_AWAIT = 2    # read, then crossed an unlocked await


@dataclass(frozen=True)
class RaceWindow:
    """One RACE001 hit: a shared RMW window spanning an await."""

    attr: str
    read_line: int
    await_line: int
    write_line: int
    write_end_line: int
    write_col: int


@dataclass(frozen=True)
class OrphanTask:
    """One RACE002 hit: a spawned task with no exception sink."""

    spawn: str
    line: int
    end_line: int
    col: int
    name: Optional[str] = None


@dataclass
class _AttrState:
    state: int = _IDLE
    read_line: int = 0
    await_line: int = 0


class _RaceState:
    """The abstract state threaded through one function body."""

    __slots__ = ("attrs", "alive")

    def __init__(self) -> None:
        self.attrs: Dict[str, _AttrState] = {}
        self.alive = True

    def fork(self) -> "_RaceState":
        copy = _RaceState()
        copy.alive = self.alive
        copy.attrs = {
            name: _AttrState(st.state, st.read_line, st.await_line)
            for name, st in self.attrs.items()
        }
        return copy

    def join(self, other: "_RaceState") -> None:
        """Per-attribute maximum of two branch outcomes."""
        if not other.alive:
            return
        if not self.alive:
            self.attrs = other.attrs
            self.alive = True
            return
        for name, theirs in other.attrs.items():
            ours = self.attrs.get(name)
            if ours is None or theirs.state > ours.state:
                self.attrs[name] = theirs


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _self_attr(node: ast.AST) -> Optional[str]:
    """``X`` when ``node`` is exactly ``self.X``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _is_lockish(node: ast.AST) -> bool:
    dotted = (_dotted(node) or "").lower()
    return any(hint in dotted for hint in LOCK_HINTS)


class _RaceScanner:
    """Walks one function, collecting RACE001 windows."""

    def __init__(self) -> None:
        self.windows: List[RaceWindow] = []
        self._seen: Set[Tuple[str, int]] = set()

    # -- events -------------------------------------------------------

    def _read(self, state: _RaceState, attr: str, line: int) -> None:
        st = state.attrs.setdefault(attr, _AttrState())
        if st.state == _IDLE:
            st.state = _READ
            st.read_line = line

    def _write(self, state: _RaceState, attr: str, node: ast.AST) -> None:
        st = state.attrs.get(attr)
        if st is None:
            return
        if st.state == _READ_AWAIT:
            key = (attr, node.lineno)
            if key not in self._seen:
                self._seen.add(key)
                self.windows.append(RaceWindow(
                    attr=attr,
                    read_line=st.read_line,
                    await_line=st.await_line,
                    write_line=node.lineno,
                    write_end_line=getattr(node, "end_lineno", None)
                    or node.lineno,
                    write_col=getattr(node, "col_offset", 0) + 1,
                ))
        # Any write closes the window: the read-check-claim completed
        # (or the violation is already recorded) — start fresh.
        st.state = _IDLE

    def _await(self, state: _RaceState, line: int, lock_depth: int) -> None:
        if lock_depth > 0:
            return
        for st in state.attrs.values():
            if st.state == _READ:
                st.state = _READ_AWAIT
                st.await_line = line

    # -- expression traversal (evaluation order, approximately) -------

    def _expr(
        self, node: ast.AST, state: _RaceState, lock_depth: int
    ) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            self._expr(node.value, state, lock_depth)
            self._await(state, node.lineno, lock_depth)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            return  # nested scopes have their own timeline
        if isinstance(node, ast.Attribute):
            attr = _self_attr(node)
            if attr is not None and isinstance(node.ctx, ast.Load):
                self._read(state, attr, node.lineno)
                return
        if isinstance(node, ast.Subscript):
            attr = _self_attr(node.value)
            if attr is not None:
                self._expr(node.slice, state, lock_depth)
                if isinstance(node.ctx, ast.Load):
                    self._read(state, attr, node.lineno)
                else:
                    self._write(state, attr, node)
                return
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                attr = _self_attr(func.value)
                if attr is not None:
                    for arg in node.args:
                        self._expr(arg, state, lock_depth)
                    for kw in node.keywords:
                        self._expr(kw.value, state, lock_depth)
                    if func.attr in MUTATOR_METHODS:
                        self._write(state, attr, node)
                    else:
                        # Reader and unknown methods observe the cell.
                        self._read(state, attr, func.value.lineno)
                    return
        for child in ast.iter_child_nodes(node):
            self._expr(child, state, lock_depth)

    def _target(
        self, node: ast.AST, state: _RaceState, lock_depth: int
    ) -> None:
        """Assignment targets: ``self.X = ...`` / ``self.X[k] = ...``."""
        attr = _self_attr(node)
        if attr is not None:
            self._write(state, attr, node)
            return
        if isinstance(node, ast.Subscript):
            attr = _self_attr(node.value)
            if attr is not None:
                self._expr(node.slice, state, lock_depth)
                self._write(state, attr, node)
                return
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element, state, lock_depth)
            return
        if isinstance(node, ast.Starred):
            self._target(node.value, state, lock_depth)
            return
        self._expr(node, state, lock_depth)

    # -- statement traversal ------------------------------------------

    def _block(
        self, body: List[ast.stmt], state: _RaceState, lock_depth: int
    ) -> None:
        for stmt in body:
            if not state.alive:
                return
            self._stmt(stmt, state, lock_depth)

    def _stmt(
        self, stmt: ast.stmt, state: _RaceState, lock_depth: int
    ) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return):
                self._expr(stmt.value, state, lock_depth)
            else:
                self._expr(stmt.exc, state, lock_depth)
                self._expr(stmt.cause, state, lock_depth)
            state.alive = False
            return
        if isinstance(stmt, (ast.Break, ast.Continue)):
            state.alive = False
            return
        if isinstance(stmt, ast.Assign):
            self._expr(stmt.value, state, lock_depth)
            for target in stmt.targets:
                self._target(target, state, lock_depth)
            return
        if isinstance(stmt, ast.AugAssign):
            # ``self.c += x`` reads then writes in one statement; no
            # await can occur in between, so read+write collapses.
            attr = _self_attr(stmt.target)
            if attr is not None:
                self._read(state, attr, stmt.lineno)
            self._expr(stmt.value, state, lock_depth)
            self._target(stmt.target, state, lock_depth)
            return
        if isinstance(stmt, ast.AnnAssign):
            self._expr(stmt.value, state, lock_depth)
            if stmt.value is not None:
                self._target(stmt.target, state, lock_depth)
            return
        if isinstance(stmt, ast.If):
            self._expr(stmt.test, state, lock_depth)
            then = state.fork()
            self._block(stmt.body, then, lock_depth)
            other = state.fork()
            self._block(stmt.orelse, other, lock_depth)
            then.join(other)
            state.attrs, state.alive = then.attrs, then.alive
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._expr(stmt.iter, state, lock_depth)
            if isinstance(stmt, ast.AsyncFor):
                self._await(state, stmt.lineno, lock_depth)
            skip = state.fork()  # zero-iteration path
            for _ in range(2):  # twice: windows across the back edge
                body = state.fork()
                self._target(stmt.target, body, lock_depth)
                if isinstance(stmt, ast.AsyncFor):
                    self._await(body, stmt.lineno, lock_depth)
                self._block(stmt.body, body, lock_depth)
                body.alive = True  # break/continue land at the loop exit
                state.join(body)
            self._block(stmt.orelse, state, lock_depth)
            state.join(skip)
            return
        if isinstance(stmt, ast.While):
            self._expr(stmt.test, state, lock_depth)
            skip = state.fork()
            for _ in range(2):
                body = state.fork()
                self._block(stmt.body, body, lock_depth)
                body.alive = True
                self._expr(stmt.test, body, lock_depth)
                state.join(body)
            self._block(stmt.orelse, state, lock_depth)
            state.join(skip)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            locked = any(_is_lockish(item.context_expr) for item in stmt.items)
            for item in stmt.items:
                self._expr(item.context_expr, state, lock_depth)
                if item.optional_vars is not None:
                    self._target(item.optional_vars, state, lock_depth)
            if isinstance(stmt, ast.AsyncWith) and not locked:
                # ``__aenter__`` suspends; a lock's acquisition is the
                # serialization point itself, so only unlocked context
                # managers promote.
                self._await(state, stmt.lineno, lock_depth)
            self._block(
                stmt.body, state, lock_depth + (1 if locked else 0)
            )
            return
        if isinstance(stmt, ast.Try):
            pre = state.fork()
            self._block(stmt.body, state, lock_depth)
            self._block(stmt.orelse, state, lock_depth)
            for handler in stmt.handlers:
                # A handler can run from any point in the body: start
                # from the pessimistic join of entry and body-exit.
                branch = pre.fork()
                branch.join(state)
                branch.alive = True
                self._block(handler.body, branch, lock_depth)
                state.join(branch)
            self._block(stmt.finalbody, state, lock_depth)
            return
        if isinstance(stmt, ast.Expr):
            self._expr(stmt.value, state, lock_depth)
            return
        for child in ast.iter_child_nodes(stmt):
            self._expr(child, state, lock_depth)


def scan_race_windows(func: ast.AsyncFunctionDef) -> List[RaceWindow]:
    """RACE001 windows in one coroutine (shared RMW across an await)."""
    scanner = _RaceScanner()
    state = _RaceState()
    scanner._block(func.body, state, 0)
    scanner.windows.sort(key=lambda w: (w.write_line, w.attr))
    return scanner.windows


# -- RACE002: fire-and-forget tasks -----------------------------------


def _spawn_name(node: ast.Call) -> Optional[str]:
    """The spawner's dotted name when ``node`` spawns a task."""
    dotted = _dotted(node.func)
    if dotted is None:
        return None
    if dotted in TASK_SPAWNERS:
        return dotted
    # loop.create_task / self._loop.create_task / get_event_loop()...
    if dotted.endswith(".create_task") or dotted.endswith(".ensure_future"):
        return dotted
    return None


def _sink_names(func: ast.AST, task_names: Set[str]) -> Set[str]:
    """Task-bound names that reach a supervision sink somewhere."""
    sunk: Set[str] = set()

    def is_task_name(node: ast.AST) -> bool:
        return isinstance(node, ast.Name) and node.id in task_names

    for node in walk_own(func):
        if isinstance(node, ast.Await) and is_task_name(node.value):
            sunk.add(node.value.id)
        elif isinstance(node, ast.Call):
            func_node = node.func
            if (
                isinstance(func_node, ast.Attribute)
                and is_task_name(func_node.value)
            ):
                # t.add_done_callback(...), t.cancel(), t.result(), ...
                sunk.add(func_node.value.id)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if is_task_name(arg):
                    sunk.add(arg.id)  # gather(t), wait({t}), shield(t)
                elif isinstance(arg, (ast.Tuple, ast.List, ast.Set)):
                    for element in arg.elts:
                        if is_task_name(element):
                            sunk.add(element.id)
                elif isinstance(arg, ast.Starred) and is_task_name(arg.value):
                    sunk.add(arg.value.id)
        elif isinstance(node, ast.Return) and node.value is not None:
            for sub in ast.walk(node.value):
                if is_task_name(sub):
                    sunk.add(sub.id)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            value = node.value
            if value is not None and is_task_name(value):
                # Re-binding to an attribute/subscript stores the task
                # somewhere longer-lived; treat as supervised.
                for target in targets:
                    if not isinstance(target, ast.Name):
                        sunk.add(value.id)
    return sunk


def walk_own(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own body, not nested function/lambda scopes."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def scan_orphan_tasks(func: ast.AST) -> Iterator[OrphanTask]:
    """RACE002: spawned tasks with no await/callback/store sink."""
    spawns: List[Tuple[ast.Call, str, Optional[str]]] = []
    task_names: Set[str] = set()
    for node in walk_own(func):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            spawn = _spawn_name(node.value)
            if spawn is not None:
                spawns.append((node.value, spawn, None))
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            spawn = _spawn_name(node.value)
            if spawn is None:
                continue
            [target] = node.targets if len(node.targets) == 1 else [None]
            if isinstance(target, ast.Name):
                spawns.append((node.value, spawn, target.id))
                task_names.add(target.id)
            # Assigning straight into an attribute or container is a
            # store sink — supervised elsewhere, not an orphan.
    sunk = _sink_names(func, task_names)
    for call, spawn, name in spawns:
        if name is not None and name in sunk:
            continue
        yield OrphanTask(
            spawn=spawn,
            line=call.lineno,
            end_line=getattr(call, "end_lineno", None) or call.lineno,
            col=call.col_offset + 1,
            name=name,
        )


__all__ = [
    "LOCK_HINTS",
    "MUTATOR_METHODS",
    "OrphanTask",
    "RaceWindow",
    "READER_METHODS",
    "TASK_SPAWNERS",
    "scan_orphan_tasks",
    "scan_race_windows",
    "walk_own",
]
