"""repro.analysis — static analysis and runtime sanitizing.

Three complementary guards for the paper's methodology:

- :mod:`repro.analysis.engine` + :mod:`repro.analysis.rules` — an
  AST-based lint engine with a simulator-discipline rule pack
  (deterministic RNG, no wall-clock in the timing model, no float
  equality in the accounting layer, frozen configs, ...). CI gates on
  a clean ``repro lint src/``.
- :mod:`repro.analysis.program` + :mod:`repro.analysis.callgraph` +
  :mod:`repro.analysis.cfg` + :mod:`repro.analysis.iprules` — the
  whole-program pass: import resolution into a symbol table and call
  graph, await-annotated control flow, and the interprocedural rule
  family (RACE001/RACE002 asyncio races, SRV002 blocking reachability,
  RES002 atomic-write reachability, DET001 determinism taint), with
  content-addressed per-file caching, SARIF export, and a checked-in
  violation baseline so CI fails only on *new* findings.
- :mod:`repro.analysis.sanitizer` — a runtime invariant sanitizer
  (``REPRO_SANITIZE=1`` or ``--sanitize``) that checks ROB occupancy
  bounds, commit monotonicity, per-instruction stage ordering, and the
  CPI-stack accounting identity during real runs, collecting
  violations into structured reports the lab records in its manifests.
"""

from repro.analysis.engine import (
    LintReport,
    LintViolation,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    rule_catalogue,
)
from repro.analysis.sanitizer import (
    InvariantViolation,
    Sanitizer,
    SanitizerReport,
)

__all__ = [
    "InvariantViolation",
    "LintReport",
    "LintViolation",
    "Rule",
    "Sanitizer",
    "SanitizerReport",
    "all_rules",
    "lint_paths",
    "lint_source",
    "rule_catalogue",
]
