"""Whole-program analysis: cached extraction, program rules, gates.

This module is the v2 engine's orchestrator. One run:

1. **Discover** the python files under the requested paths (optionally
   narrowed to the git-changed set).
2. **Extract** a :class:`FileSummary` per file — in parallel — holding
   the per-file lint violations (the v1 pack plus the extraction-time
   RACE rules), the function summaries the interprocedural rules need,
   and the file's ``noqa`` map. Extraction is fronted by a
   content-addressed cache keyed on the source digest and the
   rule-pack fingerprint (same hashing as the lab result store), so a
   warm rerun on an unchanged tree never parses a single file.
3. **Link** the summaries into one :class:`SymbolTable` and run the
   program-level rules (SRV002/RES002/DET001) over the call graph.
   These rules are cheap on summaries — the expensive part (parsing)
   is what the cache elides.
4. **Gate**: optionally subtract a checked-in baseline so CI fails only
   on *new* findings, and render human / JSON / SARIF output.

The cache lives under ``<store root>/analysis/`` next to the lab
result store and honours the same ``REPRO_CACHE_DIR`` override. Every
entry is written atomically (the analysis cache is not run state, so
it skips the fsync).
"""

from __future__ import annotations

import ast
import concurrent.futures
import json
import re
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import __version__
from repro.analysis.callgraph import (
    FunctionSummary,
    SymbolTable,
    extract_functions,
    module_name_for,
)
from repro.analysis.engine import (
    FileContext,
    LintReport,
    LintViolation,
    Rule,
    all_rules,
    discover_files,
    _file_suppressions,
    _line_suppresses,
)
from repro.analysis.iprules import (
    ProgramIndex,
    ProgramRule,
    all_program_rules,
)
from repro.lab.store import default_store_root, payload_digest
from repro.resilience.atomic import atomic_write_text

#: Bump when the FileSummary schema changes shape.
ANALYSIS_SCHEMA_VERSION = 1

BASELINE_SCHEMA_VERSION = 1

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemas/sarif-schema-2.1.0.json"
)

_DIGITS = re.compile(r"\d+")


def pack_fingerprint(
    rules: Sequence[Rule], program_rules: Sequence[ProgramRule]
) -> str:
    """Digest of the rule-pack identity: any rule change invalidates.

    Cached entries always hold the *full* pack's findings (rule-subset
    selection filters afterwards), so the fingerprint covers every
    registered rule id plus the schema and package version.
    """
    return payload_digest(
        {
            "schema": ANALYSIS_SCHEMA_VERSION,
            "version": __version__,
            "rules": sorted(
                [rule.id for rule in rules]
                + [rule.id for rule in program_rules]
            ),
        }
    )


# -- per-file summaries ------------------------------------------------


@dataclass
class FileSummary:
    """Everything one file contributes to a program run (cacheable)."""

    path: str
    module: str
    digest: str
    violations: List[LintViolation] = field(default_factory=list)
    suppressed: int = 0
    parse_error: Optional[str] = None
    functions: List[FunctionSummary] = field(default_factory=list)
    #: None → no file-level noqa; [] → blanket; else the named rules.
    noqa_file: Optional[List[str]] = None
    #: 1-based line → None (blanket noqa) or the named rules.
    noqa_lines: Dict[int, Optional[List[str]]] = field(default_factory=dict)
    from_cache: bool = False

    def suppresses(self, violation: LintViolation) -> bool:
        """Apply this file's noqa map to a program-level violation."""
        if self.noqa_file is not None and (
            not self.noqa_file or violation.rule in self.noqa_file
        ):
            return True
        last = max(violation.end_line, violation.line)
        for line_no in range(violation.line, last + 1):
            if line_no not in self.noqa_lines:
                continue
            names = self.noqa_lines[line_no]
            if names is None or violation.rule in names:
                return True
        return False

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": ANALYSIS_SCHEMA_VERSION,
            "path": self.path,
            "module": self.module,
            "digest": self.digest,
            "violations": [v.as_payload() for v in self.violations],
            "suppressed": self.suppressed,
            "parse_error": self.parse_error,
            "functions": [f.to_json() for f in self.functions],
            "noqa_file": self.noqa_file,
            "noqa_lines": {
                str(line): names for line, names in self.noqa_lines.items()
            },
        }

    @classmethod
    def from_json(cls, obj: Dict[str, Any]) -> "FileSummary":
        return cls(
            path=obj["path"],
            module=obj["module"],
            digest=obj["digest"],
            violations=[
                LintViolation(
                    rule=v["rule"],
                    path=v["path"],
                    line=v["line"],
                    col=v["col"],
                    message=v["message"],
                    end_line=v.get("end_line", 0),
                )
                for v in obj["violations"]
            ],
            suppressed=obj["suppressed"],
            parse_error=obj["parse_error"],
            functions=[
                FunctionSummary.from_json(f) for f in obj["functions"]
            ],
            noqa_file=obj["noqa_file"],
            noqa_lines={
                int(line): names
                for line, names in obj["noqa_lines"].items()
            },
            from_cache=True,
        )


def _noqa_map(lines: Sequence[str]) -> Dict[int, Optional[List[str]]]:
    """1-based line → suppressed rule names (None = every rule)."""
    found: Dict[int, Optional[List[str]]] = {}
    for line_no, line in enumerate(lines, start=1):
        if "noqa" not in line:
            continue
        if _line_suppresses(line, "\0"):  # only a blanket noqa matches
            found[line_no] = None
            continue
        # Named form: collect the rules it lists (cheap re-parse).
        match = re.search(r"#\s*repro:\s*noqa\[([\w\s,.-]+)\]", line)
        if match:
            found[line_no] = [
                n.strip() for n in match.group(1).split(",") if n.strip()
            ]
    return found


def extract_file(
    source: str,
    reported: str,
    module: str,
    digest: str,
    rules: Sequence[Rule],
    program_rules: Sequence[ProgramRule],
) -> FileSummary:
    """Parse one file and build its full (cacheable) summary."""
    summary = FileSummary(path=reported, module=module, digest=digest)
    try:
        tree = ast.parse(source, filename=reported)
    except SyntaxError as exc:
        summary.parse_error = str(exc)
        return summary
    lines = tuple(source.splitlines())
    file_suppressed = _file_suppressions(lines)
    summary.noqa_file = (
        sorted(file_suppressed) if file_suppressed is not None else None
    )
    summary.noqa_lines = _noqa_map(lines)
    ctx = FileContext(path=reported, tree=tree, source=source, lines=lines)
    raw: List[LintViolation] = []
    for rule in rules:
        if rule.applies_to(ctx):
            raw.extend(rule.check(ctx))
    for prule in program_rules:
        raw.extend(prule.check_module(tree, module, reported))
    for violation in raw:
        if summary.suppresses(violation):
            summary.suppressed += 1
        else:
            summary.violations.append(violation)
    summary.functions = extract_functions(tree, module)
    return summary


# -- content-addressed cache -------------------------------------------


class AnalysisCache:
    """Per-file summary cache, content-addressed like the lab store.

    The key digests the file's *source bytes* together with the
    rule-pack fingerprint, so both edits and rule changes miss
    naturally; entries never need invalidation, only garbage
    collection. Writes are atomic-replace so a crashed run cannot
    leave a torn entry (a torn entry would otherwise poison every
    later run of the same tree).
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = (
            Path(root) if root is not None
            else default_store_root() / "analysis"
        )
        self.hits = 0
        self.misses = 0

    def key_for(self, source: bytes, pack: str, reported: str) -> str:
        # The reported path is part of the key: summaries embed the
        # path and module name, so two identical files (every empty
        # __init__.py) must not share an entry.
        return payload_digest(
            {
                "source": source.decode("utf-8", "replace"),
                "pack": pack,
                "path": reported,
            }
        )

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[FileSummary]:
        entry = self._entry_path(key)
        try:
            obj = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if obj.get("schema") != ANALYSIS_SCHEMA_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return FileSummary.from_json(obj)

    def save(self, key: str, summary: FileSummary) -> None:
        text = json.dumps(summary.to_json(), sort_keys=True)
        # Cache entries are disposable, so skip the fsync the run-state
        # writers pay; the atomic replace alone prevents torn entries.
        atomic_write_text(self._entry_path(key), text, fsync=False)


class _NullCache(AnalysisCache):
    """Cache-off mode: everything misses, nothing is written."""

    def __init__(self) -> None:
        super().__init__(root=Path("."))

    def load(self, key: str) -> Optional[FileSummary]:
        self.misses += 1
        return None

    def save(self, key: str, summary: FileSummary) -> None:
        return None


# -- the program run ---------------------------------------------------


@dataclass
class ProgramReport(LintReport):
    """A lint report plus program-run bookkeeping."""

    cache_hits: int = 0
    cache_misses: int = 0
    baseline_suppressed: int = 0

    def render_human(self) -> str:
        base = super().render_human()
        extra = (
            f"cache: {self.cache_hits} hit(s), "
            f"{self.cache_misses} miss(es)"
        )
        if self.baseline_suppressed:
            extra += f"; baseline: {self.baseline_suppressed} known finding(s)"
        return f"{base}\n{extra}"

    def render_json(self) -> str:
        obj = json.loads(super().render_json())
        obj["cache"] = {"hits": self.cache_hits, "misses": self.cache_misses}
        obj["baseline_suppressed"] = self.baseline_suppressed
        return json.dumps(obj, indent=1)


def _roots_for(paths: Iterable[str]) -> List[Path]:
    roots: List[Path] = []
    for raw in paths:
        base = Path(raw)
        roots.append(base if base.is_dir() else base.parent)
    roots.append(Path.cwd())
    return roots


def analyze_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    program_rules: Optional[Sequence[ProgramRule]] = None,
    cache: Optional[AnalysisCache] = None,
    jobs: Optional[int] = None,
    rule_filter: Optional[Set[str]] = None,
) -> ProgramReport:
    """Run the full v2 analysis over ``paths``.

    ``rule_filter`` (rule ids) narrows *reporting*, not extraction:
    cache entries always hold the full pack's findings so a scoped run
    (``--rules``) and a full run share cache entries.
    """
    if rules is None:
        rules = all_rules()
    if program_rules is None:
        program_rules = all_program_rules()
    if cache is None:
        cache = AnalysisCache()
    pack = pack_fingerprint(rules, program_rules)
    files = discover_files(paths)
    roots = _roots_for(paths)

    def summarize(item: Tuple[Path, str]) -> Optional[FileSummary]:
        path, reported = item
        try:
            raw_bytes = path.read_bytes()
        except OSError as exc:
            summary = FileSummary(
                path=reported,
                module=module_name_for(path, roots),
                digest="",
            )
            summary.parse_error = str(exc)
            return summary
        key = cache.key_for(raw_bytes, pack, reported)
        cached = cache.load(key)
        if cached is not None:
            return cached
        summary = extract_file(
            source=raw_bytes.decode("utf-8"),
            reported=reported,
            module=module_name_for(path, roots),
            digest=key,
            rules=rules,
            program_rules=program_rules,
        )
        cache.save(key, summary)
        return summary

    def summarize_safe(item: Tuple[Path, str]) -> Optional[FileSummary]:
        # Worker threads can have far less usable stack than the main
        # thread (smaller stack size, tracing hooks installed by test
        # harnesses), and CPython surfaces a deep-parse overflow as
        # SystemError, not just RecursionError. Treat either as "retry
        # on the main thread" rather than a finding.
        try:
            return summarize(item)
        except (RecursionError, SystemError):
            return None

    workers = jobs if jobs and jobs > 0 else min(8, len(files) or 1)
    if workers > 1 and len(files) > 1:
        with concurrent.futures.ThreadPoolExecutor(workers) as pool:
            summaries = list(pool.map(summarize_safe, files))
        for position, summary in enumerate(summaries):
            if summary is None:
                # The failed worker-thread attempt already counted this
                # file's cache miss before extraction overflowed; the
                # serial retry re-counts it, so take one back to keep
                # misses == files on a cold run.
                cache.misses = max(0, cache.misses - 1)
                summaries[position] = summarize(files[position])
    else:
        summaries = [summarize(item) for item in files]

    report = ProgramReport(files_checked=len(summaries))
    by_path: Dict[str, FileSummary] = {}
    module_paths: Dict[str, str] = {}
    functions: List[FunctionSummary] = []
    for summary in summaries:
        if summary is None:
            continue
        by_path[summary.path] = summary
        if summary.parse_error is not None:
            report.parse_errors.append((summary.path, summary.parse_error))
            continue
        module_paths[summary.module] = summary.path
        functions.extend(summary.functions)
        report.violations.extend(summary.violations)
        report.suppressed += summary.suppressed

    index = ProgramIndex(SymbolTable(functions), module_paths)
    for prule in program_rules:
        for violation in prule.check_program(index):
            holder = by_path.get(violation.path)
            if holder is not None and holder.suppresses(violation):
                report.suppressed += 1
            else:
                report.violations.append(violation)

    if rule_filter is not None:
        report.violations = [
            v for v in report.violations if v.rule in rule_filter
        ]
    report.violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    report.cache_hits = cache.hits
    report.cache_misses = cache.misses
    return report


# -- git-changed support -----------------------------------------------


def changed_files(base: Optional[str] = None) -> List[str]:
    """Python files changed vs ``base`` (default: working tree + index).

    Unknown to git / outside a repo returns an empty list rather than
    raising — ``repro lint --changed`` then simply lints nothing, which
    is the honest answer for an unversioned tree.
    """
    commands = [
        ["git", "diff", "--name-only", "--diff-filter=d"]
        + ([base] if base else []),
        ["git", "diff", "--name-only", "--diff-filter=d", "--cached"],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ]
    found: List[str] = []
    seen: Set[str] = set()
    for command in commands:
        try:
            result = subprocess.run(
                command,
                capture_output=True,
                text=True,
                check=False,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return []
        if result.returncode != 0:
            continue
        for line in result.stdout.splitlines():
            name = line.strip()
            if (
                name.endswith(".py")
                and name not in seen
                and Path(name).exists()
            ):
                seen.add(name)
                found.append(name)
    return sorted(found)


# -- baseline ----------------------------------------------------------


def violation_fingerprint(violation: LintViolation, index: int) -> str:
    """Stable identity for baseline diffing.

    Line numbers churn on every unrelated edit, so the fingerprint uses
    the rule, the path, the digit-normalized message, and an occurrence
    index among identical (rule, path, message) triples — a finding
    only reads as *new* when a genuinely new instance appears.
    """
    message = _DIGITS.sub("#", violation.message)
    return f"{violation.rule}|{violation.path}|{message}|{index}"


def report_fingerprints(violations: Iterable[LintViolation]) -> List[str]:
    counts: Dict[Tuple[str, str, str], int] = {}
    fingerprints: List[str] = []
    ordered = sorted(
        violations, key=lambda v: (v.path, v.line, v.col, v.rule)
    )
    for violation in ordered:
        key = (
            violation.rule,
            violation.path,
            _DIGITS.sub("#", violation.message),
        )
        index = counts.get(key, 0)
        counts[key] = index + 1
        fingerprints.append(violation_fingerprint(violation, index))
    return fingerprints


def load_baseline(path: Path) -> Optional[Set[str]]:
    try:
        obj = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if obj.get("schema") != BASELINE_SCHEMA_VERSION:
        return None
    return set(obj.get("fingerprints", []))


def write_baseline(path: Path, report: LintReport) -> int:
    fingerprints = report_fingerprints(report.violations)
    payload = {
        "schema": BASELINE_SCHEMA_VERSION,
        "tool": f"repro-lint/{__version__}",
        "fingerprints": sorted(fingerprints),
    }
    atomic_write_text(
        path, json.dumps(payload, indent=1) + "\n", fsync=False
    )
    return len(fingerprints)


def apply_baseline(
    report: ProgramReport, baseline: Set[str]
) -> ProgramReport:
    """Drop findings already in the baseline; keep genuinely new ones."""
    fingerprints = report_fingerprints(report.violations)
    ordered = sorted(
        report.violations, key=lambda v: (v.path, v.line, v.col, v.rule)
    )
    fresh: List[LintViolation] = []
    for violation, fingerprint in zip(ordered, fingerprints):
        if fingerprint in baseline:
            report.baseline_suppressed += 1
        else:
            fresh.append(violation)
    report.violations = fresh
    return report


# -- SARIF export ------------------------------------------------------


def to_sarif(
    report: LintReport, catalogue: Sequence[Dict[str, str]]
) -> Dict[str, Any]:
    """SARIF 2.1.0 document for ``report`` (one run, one driver)."""
    rule_ids = sorted({v.rule for v in report.violations})
    known = {row["id"]: row for row in catalogue}
    sarif_rules = []
    rule_index: Dict[str, int] = {}
    for position, rule_id in enumerate(rule_ids):
        row = known.get(rule_id, {})
        sarif_rules.append(
            {
                "id": rule_id,
                "name": row.get("name", rule_id),
                "shortDescription": {"text": row.get("name", rule_id)},
                "fullDescription": {
                    "text": row.get("description", rule_id)
                },
                "defaultConfiguration": {"level": "warning"},
            }
        )
        rule_index[rule_id] = position
    results = []
    for violation in sorted(
        report.violations, key=lambda v: (v.path, v.line, v.col, v.rule)
    ):
        results.append(
            {
                "ruleId": violation.rule,
                "ruleIndex": rule_index[violation.rule],
                "level": "warning",
                "message": {"text": violation.message},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": violation.path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {
                                "startLine": violation.line,
                                "startColumn": max(violation.col, 1),
                                "endLine": max(
                                    violation.end_line, violation.line
                                ),
                            },
                        }
                    }
                ],
            }
        )
    for path, error in report.parse_errors:
        results.append(
            {
                "ruleId": "PARSE",
                "level": "error",
                "message": {"text": f"parse error: {error}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path,
                                "uriBaseId": "SRCROOT",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/analysis"
                        ),
                        "version": __version__,
                        "rules": sarif_rules,
                    }
                },
                "columnKind": "unicodeCodePoints",
                "results": results,
            }
        ],
    }


__all__ = [
    "ANALYSIS_SCHEMA_VERSION",
    "AnalysisCache",
    "BASELINE_SCHEMA_VERSION",
    "FileSummary",
    "ProgramReport",
    "_NullCache",
    "analyze_paths",
    "apply_baseline",
    "changed_files",
    "extract_file",
    "load_baseline",
    "pack_fingerprint",
    "report_fingerprints",
    "to_sarif",
    "violation_fingerprint",
    "write_baseline",
]
