"""The default rule pack: simulator-specific discipline as lint rules.

Each rule encodes an invariant the paper's methodology depends on —
deterministic simulation (RNG001, CLK001, ORD001), exact accounting
(FLT001), immutable configuration identity for the content-addressed
store (CFG001), and library hygiene that keeps sweeps debuggable
(MUT001, EXC001, PRT001). Every rule registers into
:data:`repro.analysis.engine.RULE_REGISTRY` on import.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.engine import FileContext, LintViolation, Rule, register

#: Hot, determinism-critical packages the scoped rules police.
SIM_SCOPE: Tuple[str, ...] = ("pipeline", "interval", "frontend")


def _dotted(node: ast.AST) -> Optional[str]:
    """Dotted name of an attribute/name chain (``a.b.c``), else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register
class UnseededRandomRule(Rule):
    """Stochastic draws must come from ``repro.util.rng``.

    ``random`` and ``numpy.random`` default to process-entropy seeding,
    and even seeded ``random.Random`` may change algorithms across
    Python versions — either silently changes every trace, miss
    pattern, and therefore every measured penalty.
    """

    id = "RNG001"
    name = "unseeded-random"
    description = (
        "no stdlib random / numpy.random outside util/rng.py; use a "
        "seeded SplitMix stream"
    )
    exempt = ("util/rng.py",)

    _MODULES = {"random", "numpy.random"}

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in self._MODULES:
                        yield self.violation(
                            ctx, node,
                            f"import of {alias.name!r}; draw from "
                            "repro.util.rng.SplitMix instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module in self._MODULES:
                    yield self.violation(
                        ctx, node,
                        f"import from {module!r}; draw from "
                        "repro.util.rng.SplitMix instead",
                    )
                elif module == "numpy" and any(
                    alias.name == "random" for alias in node.names
                ):
                    yield self.violation(
                        ctx, node,
                        "import of numpy.random; draw from "
                        "repro.util.rng.SplitMix instead",
                    )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted in ("np.random", "numpy.random"):
                    yield self.violation(
                        ctx, node,
                        f"use of {dotted}; draw from "
                        "repro.util.rng.SplitMix instead",
                    )


@register
class WallClockRule(Rule):
    """No wall-clock reads inside the simulation packages.

    Simulated time must be a pure function of the trace and the
    configuration. Wall-clock reads in the timing model (even "just
    for logging") make results machine- and load-dependent; measure
    wall time at the harness boundary via ``repro.util.timing``.
    """

    id = "CLK001"
    name = "wall-clock"
    description = (
        "no time.*/datetime wall-clock reads in pipeline/, interval/, "
        "frontend/; use repro.util.timing at the harness boundary"
    )
    scope = SIM_SCOPE

    _CALLS = {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
    }
    _FROM_IMPORTS = {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "process_time"),
        ("datetime", "datetime"),
    }

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    if (module, alias.name) in self._FROM_IMPORTS:
                        yield self.violation(
                            ctx, node,
                            f"wall-clock import {module}.{alias.name} in a "
                            "simulation package",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted in self._CALLS:
                    yield self.violation(
                        ctx, node,
                        f"wall-clock read {dotted}() in a simulation package",
                    )


def _is_floaty(node: ast.AST) -> bool:
    """Conservatively: expressions that are textually float-valued."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.Call):
        return isinstance(node.func, ast.Name) and node.func.id == "float"
    if isinstance(node, ast.UnaryOp):
        return _is_floaty(node.operand)
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True  # true division always yields a float
        return _is_floaty(node.left) or _is_floaty(node.right)
    return False


@register
class FloatEqualityRule(Rule):
    """No ``==``/``!=`` against float values in the accounting layer.

    The CPI-stack identity is verified to 1e-9, not to equality;
    exact float comparison in the interval layer either works by
    accident or breaks on the first refactor that reassociates a sum.
    """

    id = "FLT001"
    name = "float-equality"
    description = (
        "no float == / != in interval/; compare with math.isclose or an "
        "explicit tolerance"
    )
    scope = ("interval",)

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floaty(left) or _is_floaty(right):
                    yield self.violation(
                        ctx, node,
                        "exact float comparison; use math.isclose or an "
                        "explicit tolerance",
                    )
                    break


@register
class MutableDefaultRule(Rule):
    """No mutable default arguments.

    A shared default list/dict/set leaks state between calls — in a
    sweep that means between experiment points, which is exactly the
    cross-contamination the lab's process isolation exists to prevent.
    """

    id = "MUT001"
    name = "mutable-default"
    description = "no mutable (list/dict/set) default arguments"

    _CTORS = {"list", "dict", "set", "bytearray"}

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in self._CTORS
        )

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.violation(
                        ctx, default,
                        f"mutable default argument in {node.name}(); "
                        "default to None and construct inside",
                    )


@register
class SetIterationRule(Rule):
    """No direct iteration over sets in the hot simulation packages.

    Set iteration order depends on element hashes and insertion
    history; iterating an event set directly can reorder tie-breaking
    decisions between runs or Python builds. Iterate a list/deque/heap,
    or wrap in ``sorted(...)``.
    """

    id = "ORD001"
    name = "set-iteration"
    description = (
        "no iteration over sets in pipeline/ or interval/ hot paths; "
        "use sorted(...) or an ordered container"
    )
    scope = ("pipeline", "interval")

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )

    def _set_names_in(self, func: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(func):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not self._is_set_expr(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            set_names = self._set_names_in(func)
            for node in ast.walk(func):
                iters: List[ast.AST] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if self._is_set_expr(it) or (
                        isinstance(it, ast.Name) and it.id in set_names
                    ):
                        yield self.violation(
                            ctx, it,
                            "iteration over a set in a hot path; order is "
                            "hash-dependent — use sorted(...) or an ordered "
                            "container",
                        )


@register
class FrozenConfigRule(Rule):
    """Configuration dataclasses must be frozen.

    The lab's content-addressed store keys results by a canonical
    digest of the configuration; a mutable config could drift between
    digest time and run time, silently mis-filing results.
    """

    id = "CFG001"
    name = "frozen-config"
    description = "@dataclass classes named *Config must set frozen=True"

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not node.name.endswith("Config"):
                continue
            dataclass_deco = None
            frozen = False
            for deco in node.decorator_list:
                target = deco.func if isinstance(deco, ast.Call) else deco
                name = _dotted(target) or ""
                if name.split(".")[-1] == "dataclass":
                    dataclass_deco = deco
                    if isinstance(deco, ast.Call):
                        for kw in deco.keywords:
                            if (
                                kw.arg == "frozen"
                                and isinstance(kw.value, ast.Constant)
                                and kw.value.value is True
                            ):
                                frozen = True
            if dataclass_deco is not None and not frozen:
                yield self.violation(
                    ctx, node,
                    f"config dataclass {node.name} is not frozen; store "
                    "keys assume immutable configs",
                )


@register
class BareExceptRule(Rule):
    """No bare ``except:`` clauses.

    A bare except swallows KeyboardInterrupt and SystemExit, turning a
    stuck sweep unkillable and hiding the traceback the lab's error
    capture would otherwise record.
    """

    id = "EXC001"
    name = "bare-except"
    description = "no bare except:; catch a concrete exception type"

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    ctx, node,
                    "bare except; name the exception type (it also hides "
                    "KeyboardInterrupt)",
                )


@register
class PrintInLibraryRule(Rule):
    """No ``print`` outside the CLI layer.

    Library output belongs in return values; stray prints corrupt the
    machine-readable output of ``repro lint --format=json`` and the
    lab's captured job logs.
    """

    id = "PRT001"
    name = "print-in-library"
    description = "no print() outside cli.py/__main__.py"
    exempt = ("cli.py", "__main__.py")

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    ctx, node,
                    "print() in library code; return the text or use the "
                    "CLI layer",
                )


@register
class DirectPhaseTimingRule(Rule):
    """Harness-side wall timing must go through the obs layer.

    The lab and harness measure phases with ``repro.util.timing`` /
    ``repro.obs.phases`` so every measurement shares one clock and
    lands in the profiler's report. Ad-hoc ``time.perf_counter()``
    pairs drift out of the report and get copy-pasted wrong
    (``time.time`` and ``time.sleep`` are unaffected — they are
    timestamps and pacing, not phase timing).
    """

    id = "OBS001"
    name = "direct-phase-timing"
    description = (
        "no direct time.perf_counter/monotonic/process_time phase "
        "timing in lab/ or harness/; use util.timing.Stopwatch or "
        "obs.phases"
    )
    scope = ("lab", "harness")
    exempt = ("util/timing.py", "obs/phases.py")

    _TIMERS = {
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if (node.module or "") != "time":
                    continue
                for alias in node.names:
                    if alias.name in self._TIMERS:
                        yield self.violation(
                            ctx, node,
                            f"direct import of time.{alias.name}; time "
                            "phases with util.timing.Stopwatch or "
                            "obs.phases.PhaseProfiler",
                        )
            elif isinstance(node, ast.Attribute):
                dotted = _dotted(node)
                if dotted and dotted.startswith("time.") and (
                    dotted.split(".", 1)[1] in self._TIMERS
                ):
                    yield self.violation(
                        ctx, node,
                        f"direct {dotted}() phase timing; use "
                        "util.timing.Stopwatch or obs.phases.PhaseProfiler",
                    )


@register
class MetricNameRule(Rule):
    """Metric names must follow the ``subsystem.noun_unit`` convention.

    The metrics registry validates names at runtime, but a misnamed
    metric on a cold path only explodes the first time that path runs
    with metrics enabled — in the middle of someone's overnight sweep.
    This catches literal names at lint time instead.
    """

    id = "OBS002"
    name = "metric-name"
    description = (
        "literal metric names passed to .counter()/.gauge()/"
        ".histogram() must match subsystem.noun_unit "
        "(e.g. core.penalty_cycles)"
    )

    _FACTORIES = {"counter", "gauge", "histogram"}

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        from repro.obs.metrics import METRIC_NAME_RE

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self._FACTORIES
            ):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (
                isinstance(first, ast.Constant)
                and isinstance(first.value, str)
            ):
                continue
            if METRIC_NAME_RE.match(first.value) is None:
                yield self.violation(
                    ctx, first,
                    f"metric name {first.value!r} does not match "
                    "subsystem.noun_unit (lowercase, dotted, "
                    "unit-suffixed: e.g. core.penalty_cycles)",
                )


@register
class PerRecordLoopRule(Rule):
    """No per-record Python loops over ``trace.records`` in ``perf/``.

    The perf package exists to keep hot paths columnar; a Python loop
    over the record objects silently reintroduces the very overhead the
    :class:`~repro.perf.packed.PackedTrace` layout removes. Loops over
    an ``.unpack()`` result are the same regression through the other
    door — unpacking a column store back to records to iterate them —
    so they are flagged too (``batchcore``/``checkpoint`` must go
    through :class:`~repro.perf.batchcore.TraceColumns`, never back to
    record objects). The legitimate record walks — packing itself and
    the scalar baselines the benchmarks measure against — carry
    ``# repro: noqa[PERF001]`` with a justification.
    """

    id = "PERF001"
    name = "per-record-loop"
    description = (
        "no Python for-loops/comprehensions over trace.records or "
        ".unpack() results in perf/; operate on PackedTrace/"
        "TraceColumns columns (escape hatch: # repro: noqa[PERF001])"
    )
    scope = ("perf",)

    def _is_records(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Attribute) and node.attr == "records":
            return True
        if isinstance(node, ast.Call):
            func = node.func
            # packed.unpack() hands back per-record objects; iterating
            # the result (Trace is iterable) is a per-record loop.
            if isinstance(func, ast.Attribute) and func.attr == "unpack":
                return True
            # enumerate(t.records), zip(...), iter(packed.unpack()), ...
            return any(self._is_records(arg) for arg in node.args)
        return False

    def _records_names_in(self, func: ast.AST) -> Set[str]:
        """Local names bound to a ``.records`` expression."""
        names: Set[str] = set()
        for node in ast.walk(func):
            value = None
            targets: List[ast.AST] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            if value is None or not self._is_records(value):
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            records_names = self._records_names_in(func)

            def loops_records(it: ast.AST) -> bool:
                if self._is_records(it):
                    return True
                if isinstance(it, ast.Name) and it.id in records_names:
                    return True
                if isinstance(it, ast.Call):
                    return any(loops_records(arg) for arg in it.args)
                return False

            for node in ast.walk(func):
                iters: List[ast.AST] = []
                if isinstance(node, ast.For):
                    iters.append(node.iter)
                elif isinstance(node, (ast.ListComp, ast.SetComp,
                                       ast.DictComp, ast.GeneratorExp)):
                    iters.extend(gen.iter for gen in node.generators)
                for it in iters:
                    if loops_records(it):
                        yield self.violation(
                            ctx, it,
                            "per-record Python loop over trace.records in "
                            "perf/; use PackedTrace columns (or justify "
                            "with # repro: noqa[PERF001])",
                        )


@register
class AtomicWriteRule(Rule):
    """Run-state files must go through the crash-safe write helpers.

    A bare ``open(..., "w")`` in the lab or resilience layers is a torn
    file waiting for a crash: the write-ahead journal, store objects,
    manifests, and heartbeats all promise "complete old file or
    complete new file, never truncated". That promise only holds if
    every writer goes through :mod:`repro.resilience.atomic`
    (``atomic_write_*`` for whole-file replace, ``AppendOnlyWriter``
    for fsynced JSONL appends). Read-mode opens are fine; the helper
    module itself is exempt, and a deliberate bypass carries
    ``# repro: noqa[RES001]`` with a justification.
    """

    id = "RES001"
    name = "non-atomic-write"
    description = (
        "no direct open(..., 'w'/'a'/'x'/'+') in lab/ or resilience/; "
        "write run-state files via repro.resilience.atomic (escape "
        "hatch: # repro: noqa[RES001])"
    )
    scope = ("lab", "resilience")
    exempt = ("resilience/atomic.py",)

    _WRITE_CHARS = ("w", "a", "x", "+")

    @staticmethod
    def _mode_of(node: ast.Call, positional_index: int) -> Optional[str]:
        """The call's mode string, '' when defaulted, None when dynamic."""
        mode: Optional[ast.AST] = None
        if len(node.args) > positional_index:
            mode = node.args[positional_index]
        else:
            for keyword in node.keywords:
                if keyword.arg == "mode":
                    mode = keyword.value
        if mode is None:
            return ""  # defaulted: read mode
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._mode_of(node, 1)  # open(file, mode)
            elif isinstance(func, ast.Attribute) and func.attr == "fdopen":
                mode = self._mode_of(node, 1)  # os.fdopen(fd, mode)
            elif isinstance(func, ast.Attribute) and func.attr == "open":
                mode = self._mode_of(node, 0)  # Path.open(mode)
            else:
                continue
            if mode is None:
                yield self.violation(
                    ctx, node,
                    "open() with a dynamic mode in lab/resilience; use "
                    "repro.resilience.atomic helpers for writes (or "
                    "justify with # repro: noqa[RES001])",
                )
                continue
            if not any(ch in mode for ch in self._WRITE_CHARS):
                continue
            yield self.violation(
                ctx, node,
                f"open(..., {mode!r}) bypasses the crash-safe atomic "
                "write helpers; use repro.resilience.atomic "
                "(atomic_write_* or AppendOnlyWriter), or justify with "
                "# repro: noqa[RES001]",
            )


@register
class BlockingCallInServeRule(Rule):
    """No blocking calls inside ``serve`` coroutines.

    The serve front door multiplexes every client on one event loop;
    a single ``time.sleep`` or synchronous store read inside a
    coroutine stalls *all* of them at once — the failure is invisible
    under light load and catastrophic under the query traffic the
    service exists to absorb. Blocking work belongs in helper
    functions driven through ``asyncio.to_thread`` (disk, executors)
    or ``asyncio.wrap_future`` (pool futures).

    Flagged inside ``async def`` bodies (nested synchronous ``def``
    bodies are excluded — those run off-loop by construction):

    - ``time.sleep``;
    - ``subprocess.run/call/check_call/check_output`` and ``Popen``,
      ``os.system``, ``os.wait*``;
    - file I/O: builtin ``open`` and ``Path.read_text/read_bytes/
      write_text/write_bytes/open``;
    - synchronous store/cache/shard traffic: method calls named
      ``get``/``put``/``lookup``/``submit`` on ``store``/``cache``/
      ``shard``-ish receivers, plus ``journal_state`` and executor
      ``shutdown``/``restart`` — the serve-layer operations that do
      disk or process work.

    A deliberate exception (e.g. an in-memory dict named ``cache``)
    carries ``# repro: noqa[SRV001]`` with a justification.
    """

    id = "SRV001"
    name = "blocking-call-in-coroutine"
    description = (
        "no blocking calls (time.sleep, subprocess, sync file/store "
        "I/O) inside src/repro/serve/ coroutines; wrap them in "
        "asyncio.to_thread (escape hatch: # repro: noqa[SRV001])"
    )
    scope = ("serve",)

    _MODULE_CALLS = {
        "time.sleep": "time.sleep blocks the event loop",
        "subprocess.run": "subprocess.run blocks the event loop",
        "subprocess.call": "subprocess.call blocks the event loop",
        "subprocess.check_call": "subprocess.check_call blocks the loop",
        "subprocess.check_output": "subprocess.check_output blocks the loop",
        "subprocess.Popen": "spawn subprocesses off-loop",
        "os.system": "os.system blocks the event loop",
        "os.wait": "os.wait blocks the event loop",
        "os.waitpid": "os.waitpid blocks the event loop",
    }
    _PATH_METHODS = (
        "read_text", "read_bytes", "write_text", "write_bytes", "open",
    )
    _BLOCKING_METHODS = ("get", "put", "lookup", "submit")
    _BLOCKING_RECEIVERS = ("store", "cache", "backend", "shard", "tier")
    _ALWAYS_BLOCKING_METHODS = ("journal_state", "shutdown", "restart")

    def _receiver_name(self, func: ast.Attribute) -> str:
        node = func.value
        while isinstance(node, ast.Attribute):
            node = node.value
        return node.id if isinstance(node, ast.Name) else ""

    def _blocking_reason(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "open":
            return "builtin open() blocks the event loop"
        dotted = _dotted(func)
        if dotted in self._MODULE_CALLS:
            return f"{dotted}: {self._MODULE_CALLS[dotted]}"
        if not isinstance(func, ast.Attribute):
            return None
        if func.attr in self._PATH_METHODS and isinstance(
            func.value, (ast.Name, ast.Attribute)
        ):
            # Path-flavoured file I/O; builtin-module calls (json.load
            # on an handle etc.) need an open() first and are caught
            # there.
            if func.attr != "open" or not node.args or isinstance(
                node.args[0], ast.Constant
            ):
                return f".{func.attr}() does file I/O on the event loop"
        if func.attr in self._ALWAYS_BLOCKING_METHODS:
            return f".{func.attr}() does disk/process work on the loop"
        if func.attr in self._BLOCKING_METHODS:
            receiver = self._receiver_name(func).lower()
            if any(hint in receiver for hint in self._BLOCKING_RECEIVERS):
                return (
                    f"{receiver}.{func.attr}() is synchronous store/"
                    "cache traffic on the event loop"
                )
        return None

    def _scan(self, body: List[ast.stmt]) -> Iterator[ast.Call]:
        """Calls lexically inside coroutine code, skipping nested
        synchronous ``def`` bodies (they run off-loop)."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, ast.FunctionDef):
                continue  # sync helper: its body is not loop code
            if isinstance(node, ast.Call):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for call in self._scan(node.body):
                reason = self._blocking_reason(call)
                if reason is not None:
                    yield self.violation(
                        ctx, call,
                        f"blocking call in coroutine "
                        f"{node.name!r}: {reason}; wrap in "
                        "asyncio.to_thread (or justify with "
                        "# repro: noqa[SRV001])",
                    )


@register
class UnboundedShardAwaitRule(Rule):
    """Shard-future awaits in serve coroutines must be time-bounded.

    A coroutine that awaits a pool future raw (``await
    asyncio.wrap_future(f)``) or a shielded singleflight leader
    (``await asyncio.shield(existing)``) has no way out if the
    producer never resolves — a worker SIGKILL'd at the wrong moment,
    a leader abandoned by cancellation. The request hangs, its client
    hangs, and the deadline it carried is silently ignored. Every
    such await must go through ``asyncio.wait_for`` (``timeout=None``
    is acceptable when the request genuinely carries no deadline —
    the point is that the bound is *decided*, not forgotten).

    Flagged inside ``async def`` bodies:

    - ``await asyncio.wrap_future(...)`` / ``await asyncio.shield(...)``
      (any receiver spelling) not directly wrapped in ``wait_for``;
    - a bare ``await <name>`` where the name contains ``fut``
      (``future``, ``fut``, ``leader_future``, ...).

    A deliberate exception carries ``# repro: noqa[SRV003]`` with a
    justification.
    """

    id = "SRV003"
    name = "unbounded-shard-await"
    description = (
        "awaits of pool/shard futures (asyncio.wrap_future, "
        "asyncio.shield, future-named values) in src/repro/serve/ "
        "coroutines must be bounded by asyncio.wait_for (escape "
        "hatch: # repro: noqa[SRV003])"
    )
    scope = ("serve",)

    _WRAPPERS = ("wrap_future", "shield")

    def _unbounded_reason(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Attribute):
                attr = func.attr
            elif isinstance(func, ast.Name):
                attr = func.id
            else:
                return None
            if attr == "wait_for":
                return None  # the bound we require
            if attr in self._WRAPPERS:
                return f"asyncio.{attr}(...) awaited without a bound"
            return None
        if isinstance(value, ast.Name) and "fut" in value.id.lower():
            return f"future-like name {value.id!r} awaited without a bound"
        return None

    def _scan(self, body: List[ast.stmt]) -> Iterator[ast.Await]:
        """Awaits lexically inside this coroutine, skipping nested
        function bodies (reported against their own def)."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(node, ast.Await):
                yield node
            stack.extend(ast.iter_child_nodes(node))

    def check(self, ctx: FileContext) -> Iterator[LintViolation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for awaited in self._scan(node.body):
                reason = self._unbounded_reason(awaited.value)
                if reason is not None:
                    yield self.violation(
                        ctx, awaited,
                        f"unbounded shard-future await in coroutine "
                        f"{node.name!r}: {reason}; wrap it in "
                        "asyncio.wait_for (timeout=None when no "
                        "deadline applies; or justify with "
                        "# repro: noqa[SRV003])",
                    )


__all__ = [
    "AtomicWriteRule",
    "BareExceptRule",
    "BlockingCallInServeRule",
    "DirectPhaseTimingRule",
    "FloatEqualityRule",
    "FrozenConfigRule",
    "MetricNameRule",
    "MutableDefaultRule",
    "PerRecordLoopRule",
    "PrintInLibraryRule",
    "SIM_SCOPE",
    "SetIterationRule",
    "UnboundedShardAwaitRule",
    "UnseededRandomRule",
    "WallClockRule",
]
