"""The whole-program rule family: races, reachability, taint.

These rules ride on :mod:`repro.analysis.program` rather than the
per-file engine because each one needs facts a single file cannot
provide — a call graph, a taint fixpoint, or (for the RACE rules) the
await-annotated control flow of :mod:`repro.analysis.cfg`:

=========  ==========================================================
RACE001    shared-attribute read-modify-write spanning an ``await``
           without a lock (the serve singleflight/shard maps are
           exactly this shape when written wrong)
RACE002    fire-and-forget ``create_task``/``ensure_future`` with no
           exception sink — failures vanish, tasks may be GC'd
SRV002     blocking-call *reachability*: a serve coroutine calls a
           helper that (transitively) blocks, one or more frames deep
           — generalizes SRV001 beyond direct calls
RES002     interprocedural atomic-write enforcement: lab/resilience
           code must not reach a raw ``open(..., "w")`` through any
           call chain that bypasses ``repro.resilience.atomic``
DET001    determinism taint: wall-clock / unseeded-RNG values flowing
           through assignments and return values into a
           pipeline/interval/frontend call
OBS003     trace-context propagation: serve/lab code recording spans
           must link them into the request tree (``parent_id=``) —
           an orphan span renders as a detached root in every export
=========  ==========================================================

RACE rules run at extraction time (they need the AST) and their
violations are cached in the per-file summary; the other three run on
the cached :class:`~repro.analysis.callgraph.FunctionSummary` graph on
every invocation, which is what makes warm ``repro lint`` reruns
near-instant. All five honour the standard ``# repro: noqa[...]``
suppressions at the violation's statement.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Type

from repro.analysis.callgraph import (
    CallSite,
    FunctionSummary,
    SymbolTable,
)
from repro.analysis.cfg import scan_orphan_tasks, scan_race_windows
from repro.analysis.engine import LintViolation

#: Module components marking determinism-critical simulation code.
SIM_PARTS = frozenset({"pipeline", "interval", "frontend"})

#: Module components owning event-loop code (SRV002 callers).
SERVE_PARTS = frozenset({"serve",})

#: Module components whose writes must be crash-safe (RES002 callers).
DURABLE_PARTS = frozenset({"lab", "resilience"})


def _module_parts(module: str) -> Set[str]:
    return set(module.split("."))


def _is_atomic_module(module: str) -> bool:
    parts = module.split(".")
    return parts[-1] == "atomic" and "resilience" in parts


class ProgramIndex:
    """What a program-level rule sees: summaries + module locations."""

    def __init__(
        self,
        symtab: SymbolTable,
        module_paths: Dict[str, str],
    ) -> None:
        self.symtab = symtab
        self.module_paths = module_paths

    def path_of(self, module: str) -> str:
        return self.module_paths.get(module, module)

    def functions(self) -> Iterable[FunctionSummary]:
        return self.symtab.functions.values()


class ProgramRule:
    """Base class for whole-program rules.

    ``check_module`` runs at extraction time with the AST in hand (its
    findings are cached per file); ``check_program`` runs on the
    assembled summary graph each invocation. A rule implements one or
    both.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    scope: Optional[Tuple[str, ...]] = None

    def check_module(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[LintViolation]:
        return iter(())

    def check_program(self, index: ProgramIndex) -> Iterator[LintViolation]:
        return iter(())


PROGRAM_RULE_REGISTRY: Dict[str, Type[ProgramRule]] = {}


def register_program(rule_cls: Type[ProgramRule]) -> Type[ProgramRule]:
    if not rule_cls.id:
        raise ValueError(f"program rule {rule_cls.__name__} has no id")
    if rule_cls.id in PROGRAM_RULE_REGISTRY:
        raise ValueError(f"duplicate program rule id {rule_cls.id!r}")
    PROGRAM_RULE_REGISTRY[rule_cls.id] = rule_cls
    return rule_cls


def all_program_rules() -> List[ProgramRule]:
    return [cls() for _, cls in sorted(PROGRAM_RULE_REGISTRY.items())]


# -- RACE001 / RACE002 (extraction-time, AST-backed) -------------------


@register_program
class SharedStateRaceRule(ProgramRule):
    """Read-modify-write of shared state across an ``await``.

    On one event loop, an ``await`` is the only place another handler
    can run. ``v = self.x`` … ``await …`` … ``self.x = f(v)`` silently
    discards every update that landed during the suspension — the
    classic lost-update race that corrupts singleflight and shard maps
    under concurrent load. Claim before the await (write first) or
    hold an ``async with`` lock across the window.
    """

    id = "RACE001"
    name = "await-spanning-rmw"
    description = (
        "no shared self.<attr> read-modify-write spanning an await "
        "without a lock; claim synchronously before awaiting or hold "
        "an async lock (escape hatch: # repro: noqa[RACE001])"
    )

    def check_module(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            for window in scan_race_windows(node):
                yield LintViolation(
                    rule=self.id,
                    path=path,
                    line=window.write_line,
                    col=window.write_col,
                    end_line=window.write_end_line,
                    message=(
                        f"write to self.{window.attr} in {node.name!r} "
                        f"completes a read-modify-write started on line "
                        f"{window.read_line} across the await on line "
                        f"{window.await_line}; another handler may have "
                        "updated it in between — claim before awaiting "
                        "or hold a lock"
                    ),
                )


@register_program
class OrphanTaskRule(ProgramRule):
    """Fire-and-forget tasks with no exception sink.

    A task nobody awaits, gathers, stores, or attaches a callback to
    drops its exception on the floor (asyncio logs it at teardown, at
    best) and may be garbage-collected mid-flight. Keep a reference
    and give it a sink.
    """

    id = "RACE002"
    name = "orphan-task"
    description = (
        "every create_task/ensure_future result needs an exception "
        "sink: await it, gather it, store it, or add_done_callback "
        "(escape hatch: # repro: noqa[RACE002])"
    )

    def check_module(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[LintViolation]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.AsyncFunctionDef, ast.FunctionDef)):
                continue
            for orphan in scan_orphan_tasks(node):
                bound = (
                    f"task {orphan.name!r}" if orphan.name
                    else "the task"
                )
                yield LintViolation(
                    rule=self.id,
                    path=path,
                    line=orphan.line,
                    col=orphan.col,
                    end_line=orphan.end_line,
                    message=(
                        f"{orphan.spawn}(...) in {node.name!r} spawns "
                        f"{bound} with no exception sink — await it, "
                        "gather it, store it, or add_done_callback"
                    ),
                )


# -- reachability helpers ----------------------------------------------


def _reachability(
    symtab: SymbolTable,
    seeds: Dict[str, Tuple[str, str, int]],
    blocked_modules: Optional[Set[str]] = None,
) -> Dict[str, Tuple[str, ...]]:
    """Qualnames that can reach a seed, with the shortest hop chain.

    ``seeds`` maps qualname → (what, reason, line). The result maps
    every reaching function (including the seeds themselves, with an
    empty chain) to the tuple of intermediate qualnames ending at a
    seed. Edges into ``blocked_modules`` are not followed.
    """
    reach: Dict[str, Tuple[str, ...]] = {q: () for q in seeds}
    # Reverse edges: callee -> callers.
    callers: Dict[str, List[str]] = {}
    for summary in symtab.functions.values():
        for _, target in symtab.edges_from(summary):
            if blocked_modules and target.module in blocked_modules:
                continue
            callers.setdefault(target.qualname, []).append(summary.qualname)
    frontier = sorted(reach)
    while frontier:
        next_frontier: List[str] = []
        for reached in frontier:
            chain = reach[reached]
            for caller in callers.get(reached, ()):
                if caller in reach:
                    continue
                reach[caller] = (reached,) + chain
                next_frontier.append(caller)
        frontier = sorted(next_frontier)
    return reach


def _chain_text(chain: Tuple[str, ...], limit: int = 3) -> str:
    if not chain:
        return ""
    shown = list(chain[:limit])
    if len(chain) > limit:
        shown.append("…")
    return " -> ".join(shown)


# -- SRV002: blocking-call reachability --------------------------------


@register_program
class BlockingReachabilityRule(ProgramRule):
    """Serve coroutines must not reach blocking calls through helpers.

    SRV001 flags ``time.sleep`` *directly* inside a serve coroutine;
    this rule walks the call graph so the same sleep hidden one (or
    five) frames deep in a synchronous helper is flagged at the
    coroutine's call site. Calls dispatched through
    ``asyncio.to_thread`` / ``run_in_executor`` never create an edge,
    so the blessed pattern stays clean by construction.
    """

    id = "SRV002"
    name = "blocking-reachability"
    description = (
        "no serve/ coroutine may call a helper that transitively "
        "performs blocking I/O or sleeps; route through "
        "asyncio.to_thread (escape hatch: # repro: noqa[SRV002])"
    )
    scope = ("serve",)

    def check_program(self, index: ProgramIndex) -> Iterator[LintViolation]:
        seeds: Dict[str, Tuple[str, str, int]] = {}
        for summary in index.functions():
            if summary.blocking:
                dotted, reason, line = summary.blocking[0]
                seeds[summary.qualname] = (dotted, reason, line)
        reach = _reachability(index.symtab, seeds)
        for summary in index.functions():
            if not summary.is_async:
                continue
            if not (_module_parts(summary.module) & SERVE_PARTS):
                continue
            for site, target in index.symtab.edges_from(summary):
                if target.qualname not in reach:
                    continue
                if target.is_async and (
                    _module_parts(target.module) & SERVE_PARTS
                ):
                    # The callee is serve-scoped loop code itself: the
                    # violation is reported inside it, not at every
                    # caller up the stack.
                    continue
                chain = (target.qualname,) + reach[target.qualname]
                seed_qual = chain[-1]
                dotted, reason, line = seeds[seed_qual]
                where = (
                    f"{index.path_of(index.symtab.functions[seed_qual].module)}"
                    f":{line}"
                )
                yield LintViolation(
                    rule=self.id,
                    path=index.path_of(summary.module),
                    line=site.line,
                    col=site.col,
                    end_line=site.end_line,
                    message=(
                        f"coroutine {summary.name!r} calls "
                        f"{site.callee!r}, which reaches blocking "
                        f"{dotted} at {where} ({reason}) via "
                        f"{_chain_text(chain)}; wrap the call in "
                        "asyncio.to_thread"
                    ),
                )


# -- RES002: interprocedural atomic-write enforcement ------------------


@register_program
class AtomicWriteReachabilityRule(ProgramRule):
    """Lab/resilience code must not reach raw writes via helpers.

    RES001 polices direct ``open(..., "w")`` inside ``lab/`` and
    ``resilience/``; this rule follows call chains out of those
    packages, so a lab job writing its trace through
    ``repro.obs.export`` is held to the same crash-safety bar. The
    violation lands on the *boundary* call site — the first edge out
    of the durable packages that can reach a raw write without passing
    through ``repro.resilience.atomic``.
    """

    id = "RES002"
    name = "non-atomic-write-reachability"
    description = (
        "writes reachable from lab/ or resilience/ call chains must "
        "route through repro.resilience.atomic (escape hatch: "
        "# repro: noqa[RES002])"
    )
    scope = ("lab", "resilience")

    def check_program(self, index: ProgramIndex) -> Iterator[LintViolation]:
        atomic_modules = {
            module for module in index.module_paths
            if _is_atomic_module(module)
        }
        seeds: Dict[str, Tuple[str, str, int]] = {}
        for summary in index.functions():
            if _is_atomic_module(summary.module):
                continue
            if summary.raw_writes:
                what, line = summary.raw_writes[0]
                seeds[summary.qualname] = (what, "raw write", line)
        reach = _reachability(
            index.symtab, seeds, blocked_modules=atomic_modules
        )
        for summary in index.functions():
            parts = _module_parts(summary.module)
            if not (parts & DURABLE_PARTS):
                continue
            for site, target in index.symtab.edges_from(summary):
                if target.qualname not in reach:
                    continue
                target_parts = _module_parts(target.module)
                if target_parts & DURABLE_PARTS:
                    # Still inside the durable packages: the boundary
                    # edge (or RES001 for the direct write) reports it.
                    continue
                chain = (target.qualname,) + reach[target.qualname]
                seed_qual = chain[-1]
                what, _, line = seeds[seed_qual]
                where = (
                    f"{index.path_of(index.symtab.functions[seed_qual].module)}"
                    f":{line}"
                )
                yield LintViolation(
                    rule=self.id,
                    path=index.path_of(summary.module),
                    line=site.line,
                    col=site.col,
                    end_line=site.end_line,
                    message=(
                        f"{summary.name!r} calls {site.callee!r}, which "
                        f"reaches non-atomic {what} at {where} via "
                        f"{_chain_text(chain)}; run-state writes must "
                        "use repro.resilience.atomic"
                    ),
                )


# -- DET001: determinism taint -----------------------------------------


class _TaintState:
    """Fixpoint state: tainted locals per function, tainted returns."""

    def __init__(self, symtab: SymbolTable) -> None:
        self.symtab = symtab
        self.tainted_fns: Set[str] = set()
        self.tainted_locals: Dict[str, Set[str]] = {}

    def _token_tainted(self, token: str, qualname: str) -> bool:
        if token == "entropy":
            return True
        kind, _, value = token.partition(":")
        if kind == "name":
            return value in self.tainted_locals.get(qualname, ())
        if kind == "call":
            target = self.symtab.resolve_call(value)
            return target is not None and target.qualname in self.tainted_fns
        return False

    def tokens_tainted(self, tokens: Iterable[str], qualname: str) -> bool:
        return any(self._token_tainted(t, qualname) for t in tokens)

    def solve(self) -> None:
        """Iterate assignment + return propagation to a fixpoint."""
        changed = True
        while changed:
            changed = False
            for summary in self.symtab.functions.values():
                local = self.tainted_locals.setdefault(
                    summary.qualname, set()
                )
                for name, tokens in summary.assigns:
                    if name not in local and self.tokens_tainted(
                        tokens, summary.qualname
                    ):
                        local.add(name)
                        changed = True
                if summary.qualname not in self.tainted_fns:
                    direct = bool(summary.entropy) and any(
                        "entropy" in tokens for tokens in summary.returns
                    )
                    flowing = any(
                        self.tokens_tainted(tokens, summary.qualname)
                        for tokens in summary.returns
                    )
                    if direct or flowing:
                        self.tainted_fns.add(summary.qualname)
                        changed = True


@register_program
class DeterminismTaintRule(ProgramRule):
    """Wall-clock / unseeded-RNG values must not enter simulation state.

    CLK001 and RNG001 ban entropy *inside* the simulation packages;
    this rule follows the value: a harness helper returning
    ``time.time()`` that ends up as an argument to a
    pipeline/interval/frontend call makes every measured penalty
    machine- and load-dependent, even though no banned call appears in
    the simulation code itself.
    """

    id = "DET001"
    name = "determinism-taint"
    description = (
        "no wall-clock or unseeded-RNG value may flow (through "
        "assignments, returns, call chains) into a pipeline/, "
        "interval/, or frontend/ call (escape hatch: "
        "# repro: noqa[DET001])"
    )
    scope = ("pipeline", "interval", "frontend")

    def check_program(self, index: ProgramIndex) -> Iterator[LintViolation]:
        taint = _TaintState(index.symtab)
        taint.solve()
        for summary in index.functions():
            caller_sim = bool(_module_parts(summary.module) & SIM_PARTS)
            for site in summary.calls:
                target = index.symtab.resolve_call(site.callee)
                target_sim = target is not None and bool(
                    _module_parts(target.module) & SIM_PARTS
                )
                if target_sim:
                    for position, tokens in enumerate(site.arg_tokens):
                        if taint.tokens_tainted(tokens, summary.qualname):
                            yield LintViolation(
                                rule=self.id,
                                path=index.path_of(summary.module),
                                line=site.line,
                                col=site.col,
                                end_line=site.end_line,
                                message=(
                                    f"argument {position + 1} of "
                                    f"{site.callee!r} derives from a "
                                    "wall-clock or unseeded-RNG value; "
                                    "simulation inputs must be "
                                    "deterministic (seed them "
                                    "explicitly)"
                                ),
                            )
                            break
                elif caller_sim and target is not None and (
                    target.qualname in taint.tainted_fns
                ):
                    yield LintViolation(
                        rule=self.id,
                        path=index.path_of(summary.module),
                        line=site.line,
                        col=site.col,
                        end_line=site.end_line,
                        message=(
                            f"{summary.name!r} calls {site.callee!r}, "
                            "whose return value derives from a "
                            "wall-clock or unseeded-RNG source; "
                            "simulation state must be a pure function "
                            "of trace + config"
                        ),
                    )


# -- OBS003: trace-context propagation ----------------------------------

#: Module components whose span recording must stay tree-linked.
TRACED_PARTS = frozenset({"serve", "lab"})


@register_program
class TraceContextPropagationRule(ProgramRule):
    """Spans recorded on the serve/lab path must join the request tree.

    A ``SpanCollector.start(trace_id=...)`` or ``add_complete(...)``
    call that omits ``parent_id=`` creates a span that shares the
    request's trace id but hangs off nothing — Perfetto renders it as
    a second root, and :func:`fold_latency_stack` cannot attribute its
    time, silently breaking the sum-to-wall identity. Only the one
    request-root span per trace may be parentless, and that is the
    service's job; every other recording site must thread
    ``parent_id`` from the ambient :func:`current_context`.

    Runs at extraction time (it only needs the call expression), self-
    scoped to serve/ and lab/ modules like the other whole-program
    rules scope their reports.
    """

    id = "OBS003"
    name = "trace-context-propagation"
    description = (
        "serve/lab span recordings (collector.start/add_complete with "
        "an explicit trace_id) must pass parent_id= so the span joins "
        "the request tree; thread it from "
        "repro.obs.context.current_context() (escape hatch: "
        "# repro: noqa[OBS003])"
    )
    scope = ("serve", "lab")

    def check_module(
        self, tree: ast.Module, module: str, path: str
    ) -> Iterator[LintViolation]:
        if not (_module_parts(module) & TRACED_PARTS):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("start", "add_complete"):
                continue
            kwargs = {kw.arg for kw in node.keywords if kw.arg is not None}
            # A **splat may carry parent_id; give it the benefit of
            # the doubt rather than false-positive on dynamic kwargs.
            has_splat = any(kw.arg is None for kw in node.keywords)
            if "trace_id" not in kwargs:
                # `.start()` is a common lifecycle verb (shards,
                # servers); only the span-recording signature — which
                # requires trace_id — is in scope.
                continue
            if "parent_id" in kwargs or has_splat:
                continue
            yield LintViolation(
                rule=self.id,
                path=path,
                line=node.lineno,
                col=node.col_offset,
                end_line=getattr(node, "end_lineno", node.lineno),
                message=(
                    f"span recording {func.attr!r} passes trace_id but "
                    "no parent_id — the span detaches from the request "
                    "tree (a second root in the export; excluded from "
                    "the latency stack); thread parent_id from "
                    "current_context().span_id"
                ),
            )


def program_rule_catalogue() -> List[Dict[str, str]]:
    rows = []
    for rule in all_program_rules():
        rows.append(
            {
                "id": rule.id,
                "name": rule.name,
                "description": rule.description,
                "scope": ", ".join(rule.scope) if rule.scope else "everywhere",
            }
        )
    return rows


__all__ = [
    "AtomicWriteReachabilityRule",
    "BlockingReachabilityRule",
    "DeterminismTaintRule",
    "OrphanTaskRule",
    "PROGRAM_RULE_REGISTRY",
    "ProgramIndex",
    "ProgramRule",
    "SharedStateRaceRule",
    "TraceContextPropagationRule",
    "all_program_rules",
    "program_rule_catalogue",
    "register_program",
    "SIM_PARTS",
    "TRACED_PARTS",
]
