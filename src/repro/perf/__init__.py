"""repro.perf: the columnar trace engine and vectorized fast paths.

Every figure in the reproduction walks dynamic traces; the rest of the
library stores them as lists of :class:`~repro.trace.record.TraceRecord`
objects and pays Python-interpreter overhead per instruction. This
package is the performance layer on top of that representation:

* :mod:`repro.perf.packed` — :class:`PackedTrace`, a lossless columnar
  (NumPy structured array + CSR dependence) form of a trace;
* :mod:`repro.perf.cache` — a content-addressed compiled-trace cache so
  synthetic generation + packing happens once per (profile, seed,
  length), keyed with the lab store's hashing;
* :mod:`repro.perf.kernels` — vectorized
  :class:`~repro.trace.stream.TraceStatistics` and critical-path
  evaluation over the packed columns;
* :mod:`repro.perf.replay` — whole-branch-column predictor replay for
  the bimodal/gshare/local predictors, bit-identical to the scalar
  predictor classes;
* :mod:`repro.perf.fast` — :class:`VectorizedIntervalSimulator`, a
  column-oriented rewrite of interval simulation producing exactly the
  same :class:`~repro.interval.fast_sim.FastEstimate`;
* :mod:`repro.perf.annotate_fast` — the packed-array oracle-annotation
  fast path the detailed core reads on its hot path;
* :mod:`repro.perf.batchcore` — the batched structure-of-arrays
  detailed core: lockstep multi-config simulation over shared trace
  columns, bit-exact against the scalar
  :class:`~repro.pipeline.core.SuperscalarCore` oracle;
* :mod:`repro.perf.checkpoint` — interval-boundary checkpointing:
  shard a long trace at mispredict drain points, simulate the shards
  independently, and stitch the per-shard results bit-identically;
* :mod:`repro.perf.bench` — the ``repro bench`` throughput harness and
  the ``BENCH_simulator.json`` regression baseline format.

The lint rule PERF001 polices this package: vectorized modules must
stay vectorized — no per-record Python loops over ``trace.records``
outside the explicitly marked pack/unpack boundary.
"""

from repro.perf.batchcore import (
    BatchedSuperscalarCore,
    TraceColumns,
    batch_supported,
    run_batch,
)
from repro.perf.cache import PackedTraceCache, packed_trace_for
from repro.perf.checkpoint import (
    PipelineCheckpoint,
    ShardResult,
    interval_boundaries,
    simulate_shard,
    simulate_sharded,
    stitch,
)
from repro.perf.fast import VectorizedIntervalSimulator
from repro.perf.kernels import packed_critical_path_length, packed_statistics
from repro.perf.packed import PackedTrace
from repro.perf.replay import ReplayResult, replay

__all__ = [
    "BatchedSuperscalarCore",
    "PackedTrace",
    "PackedTraceCache",
    "PipelineCheckpoint",
    "ReplayResult",
    "ShardResult",
    "TraceColumns",
    "VectorizedIntervalSimulator",
    "batch_supported",
    "interval_boundaries",
    "packed_critical_path_length",
    "packed_statistics",
    "packed_trace_for",
    "replay",
    "run_batch",
    "simulate_shard",
    "simulate_sharded",
    "stitch",
]
