"""Packed-array oracle annotation for the detailed core's hot path.

``OracleAnnotator.annotate`` is called once per dispatched record and
builds a fresh frozen dataclass each time, even though — for a given
configuration — an oracle annotation is fully determined by four bits
of the record: mispredicted-control, I-cache miss, and the two-bit
D-cache miss class. :func:`oracle_annotations` exploits that: it
computes the 4-bit key for every record as one column expression over
the trace's packed form and gathers from a table of 16 canonical
:class:`~repro.pipeline.annotate.Annotation` instances.

The returned annotations are equal (``==``, frozen-dataclass equality)
to what ``OracleAnnotator`` would produce record by record — the
equivalence suite proves the resulting ``SimulationResult`` is
byte-identical — they are just shared instead of constructed ``n``
times.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.memory.hierarchy import MissClass
from repro.perf.packed import (
    BRANCH_CODE,
    JUMP_CODE,
    LOAD_CODE,
    STORE_CODE,
)
from repro.pipeline.annotate import Annotation
from repro.pipeline.config import CoreConfig
from repro.trace.stream import Trace

_DCODE_NONE, _DCODE_L1_HIT, _DCODE_SHORT, _DCODE_LONG = 0, 1, 2, 3
_DCODE_CLASS = {
    _DCODE_L1_HIT: MissClass.L1_HIT,
    _DCODE_SHORT: MissClass.SHORT,
    _DCODE_LONG: MissClass.LONG,
}


def annotation_table(config: CoreConfig) -> List[Annotation]:
    """The 16 canonical annotations, indexed by
    ``(mispredicted << 3) | (il1_miss << 2) | dcache_code``."""
    table: List[Annotation] = []
    for key in range(16):
        mispredicted = bool(key & 8)
        il1_miss = bool(key & 4)
        dcode = key & 3
        dcache_class = _DCODE_CLASS.get(dcode)
        table.append(
            Annotation(
                mispredicted=mispredicted,
                icache_latency=config.l2_latency if il1_miss else None,
                icache_long=False,
                dcache_class=dcache_class,
                dcache_latency=(
                    config.load_latency(dcache_class.value)
                    if dcache_class is not None
                    else 0
                ),
            )
        )
    return table


def oracle_annotations(trace: Trace, config: CoreConfig) -> List[Annotation]:
    """Per-record oracle annotations, computed columnarly.

    Equal, record for record, to calling
    ``OracleAnnotator(config).annotate`` on each record.
    """
    packed = trace.pack()
    op = packed.op
    is_control = (op == BRANCH_CODE) | (op == JUMP_CODE)
    is_memory = (op == LOAD_CODE) | (op == STORE_CODE)
    mispredicted = is_control & (packed.mispredict == 1)
    il1_miss = packed.il1_miss == 1
    dcode = np.where(
        is_memory,
        np.where(
            packed.dl2_miss == 1,
            _DCODE_LONG,
            np.where(packed.dl1_miss == 1, _DCODE_SHORT, _DCODE_L1_HIT),
        ),
        _DCODE_NONE,
    )
    keys = (
        (mispredicted.astype(np.int64) << 3)
        | (il1_miss.astype(np.int64) << 2)
        | dcode
    )
    table = annotation_table(config)
    return [table[key] for key in keys.tolist()]
