"""Content-addressed compiled-trace cache.

Synthetic trace generation walks the SplitMix stream one instruction at
a time; packing walks the records once more. Both are pure functions of
``(profile, length, seed)``, so the lab's content-addressing applies:
this module stores the *packed* form of a generated trace under a
SHA-256 digest of the canonical profile plus the generation parameters,
the pack schema version, and the lab code salt
(:data:`repro.lab.store.CODE_SALT`). A warm
:func:`packed_trace_for` call is one ``np.load`` instead of a
per-instruction generation loop.

Layout mirrors the result store, under the same root
(``REPRO_CACHE_DIR``, default ``.repro-cache``)::

    .repro-cache/
      packed/<digest[:2]>/<digest>.npz

Writes are atomic (:func:`repro.resilience.atomic.atomic_write_bytes`)
and carry an embedded content checksum (a ``__sha256__`` array over
every other array's name, dtype, shape, and bytes — the zip container
itself is not byte-stable, so the checksum covers the *contents*).
Reads verify the checksum; a corrupt object is quarantined under
``<root>/quarantine/`` and counts as a miss, so the next build simply
re-stores it. ``repro lab fsck`` scans the same checksum via
:func:`verify_npz_bytes`. The ``cache.npz`` fault site
(:mod:`repro.resilience.faults`) passes both the serialized bytes on
write and the raw bytes on read, so corruption handling is testable
end to end. ``REPRO_NO_CACHE`` bypasses the disk entirely, same as the
result store.
"""

from __future__ import annotations

import dataclasses
import hashlib
import io
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.lab.store import (
    CODE_SALT,
    caching_disabled,
    default_store_root,
    payload_digest,
    quarantine_file,
)
from repro.obs import runtime as _obs
from repro.perf.packed import PACK_SCHEMA_VERSION, PackedTrace
from repro.resilience import faults
from repro.resilience.atomic import atomic_write_bytes
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace

#: Name of the embedded checksum entry inside each npz object.
CHECKSUM_KEY = "__sha256__"


def canonical_profile(profile: WorkloadProfile) -> Dict[str, Any]:
    """Order-independent, JSON-ready form of a workload profile.

    Mirrors :func:`repro.lab.store.canonical_config`: fields in sorted
    name order, with the ``mix`` dict flattened to
    ``{op-class value: fraction}`` in sorted op-class order so dict
    insertion order never leaks into the digest.
    """
    out: Dict[str, Any] = {}
    for f in sorted(dataclasses.fields(profile), key=lambda f: f.name):
        value = getattr(profile, f.name)
        if f.name == "mix":
            value = {
                op.value: fraction
                for op, fraction in sorted(
                    value.items(), key=lambda kv: kv[0].value
                )
            }
        out[f.name] = value
    return out


def trace_key(profile: WorkloadProfile, length: int, seed: int) -> str:
    """Content address of one generated-and-packed trace."""
    return payload_digest(
        {
            "kind": "packed-trace",
            "profile": canonical_profile(profile),
            "length": length,
            "seed": seed,
            "pack_schema": PACK_SCHEMA_VERSION,
            "salt": CODE_SALT,
        }
    )


def _arrays_digest(arrays: Dict[str, np.ndarray]) -> str:
    """Container-independent SHA-256 over the arrays' contents."""
    digest = hashlib.sha256()
    for name in sorted(arrays):
        if name == CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode("utf-8"))
        digest.update(str(arr.dtype).encode("utf-8"))
        digest.update(str(arr.shape).encode("utf-8"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def serialize_npz(packed: PackedTrace) -> bytes:
    """``packed`` as checksummed npz bytes (what :meth:`put` writes)."""
    arrays = packed.to_arrays()
    arrays[CHECKSUM_KEY] = np.asarray(_arrays_digest(arrays))
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _load_verified(raw: bytes) -> Tuple[str, Optional[Dict[str, np.ndarray]]]:
    """Parse and verify npz bytes: (status, arrays-or-None).

    Status is one of ``ok`` / ``stale-schema`` / ``checksum-mismatch``
    / ``unreadable``, checked in that order of detectability.
    """
    try:
        with np.load(io.BytesIO(raw), allow_pickle=False) as handle:
            arrays = {name: handle[name] for name in handle.files}
    except Exception:
        return "unreadable", None
    if "schema" not in arrays:
        return "unreadable", None
    try:
        schema = int(arrays["schema"])
    except (TypeError, ValueError):
        return "unreadable", None
    if schema != PACK_SCHEMA_VERSION:
        return "stale-schema", None
    recorded = arrays.get(CHECKSUM_KEY)
    if recorded is None or str(recorded) != _arrays_digest(arrays):
        return "checksum-mismatch", None
    return "ok", arrays


def verify_npz_bytes(raw: bytes) -> str:
    """Integrity status of one packed-trace object (used by fsck)."""
    status, _ = _load_verified(raw)
    return status


class PackedTraceCache:
    """npz object store for packed traces under ``root``/packed."""

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else default_store_root()
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    @property
    def packed_dir(self) -> Path:
        return self.root / "packed"

    def _object_path(self, key: str) -> Path:
        return self.packed_dir / key[:2] / f"{key}.npz"

    def contains(self, key: str) -> bool:
        return self._object_path(key).is_file()

    def get(self, key: str) -> Optional[PackedTrace]:
        """The packed trace stored under ``key``, or None on a miss.

        Schema-stale objects count as misses and are left for a later
        :meth:`put` to overwrite; unreadable or checksum-failing
        objects are quarantined so the evidence survives while the key
        becomes rebuildable.
        """
        path = self._object_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            self._count("perf.pack_cache_misses_total")
            return None
        try:
            raw = faults.fault_point("cache.npz", raw)
        except faults.InjectedFault:
            self.misses += 1
            self._count("perf.pack_cache_misses_total")
            return None
        status, arrays = _load_verified(raw)
        if status == "ok":
            self.hits += 1
            self._count("perf.pack_cache_hits_total")
            return PackedTrace.from_arrays(arrays)
        if status != "stale-schema":
            self.corrupt += 1
            self._count("resilience.store_corruptions_total")
            quarantine_file(self.root, path, reason=f"packed get: {status}")
        self.misses += 1
        self._count("perf.pack_cache_misses_total")
        return None

    def put(self, key: str, packed: PackedTrace) -> Path:
        """Atomically store ``packed`` under ``key`` (checksummed)."""
        path = self._object_path(key)
        blob = serialize_npz(packed)
        blob = faults.fault_point("cache.npz", blob)
        atomic_write_bytes(path, blob)
        self.puts += 1
        self._count("perf.pack_cache_puts_total")
        return path

    def get_or_build(
        self, profile: WorkloadProfile, length: int, seed: int
    ) -> PackedTrace:
        """The packed trace for ``(profile, length, seed)``.

        Generated, packed, and stored on first request; loaded from the
        npz object on every later one. With ``REPRO_NO_CACHE`` set the
        disk is never touched and the trace is always rebuilt.
        """
        if caching_disabled():
            return self._build(profile, length, seed)
        key = trace_key(profile, length, seed)
        packed = self.get(key)
        if packed is None:
            packed = self._build(profile, length, seed)
            self.put(key, packed)
        return packed

    def _build(
        self, profile: WorkloadProfile, length: int, seed: int
    ) -> PackedTrace:
        self._count("perf.pack_cache_builds_total")
        return PackedTrace.pack(generate_trace(profile, length, seed))

    @staticmethod
    def _count(name: str) -> None:
        metrics = _obs.current_metrics()
        if metrics is not None:
            metrics.counter(name).inc()

    def describe(self) -> Dict[str, Any]:
        """Status summary (mirrors ``ResultStore.describe``)."""
        objects = (
            sorted(self.packed_dir.glob("*/*.npz"))
            if self.packed_dir.is_dir()
            else []
        )
        return {
            "root": str(self.root),
            "objects": len(objects),
            "size_bytes": sum(p.stat().st_size for p in objects),
            "salt": CODE_SALT,
            "stats": {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "corrupt": self.corrupt,
            },
        }


def packed_trace_for(
    profile: WorkloadProfile,
    length: int,
    seed: int,
    root: Optional[Path] = None,
) -> PackedTrace:
    """Module-level convenience wrapper over :class:`PackedTraceCache`."""
    return PackedTraceCache(root).get_or_build(profile, length, seed)
