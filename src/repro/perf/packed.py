"""Columnar trace representation: NumPy structured arrays + CSR deps.

A :class:`PackedTrace` holds the same information as a
:class:`~repro.trace.stream.Trace` — losslessly, round-trip tested —
but in columns: one structured array with a field per
:class:`~repro.trace.record.TraceRecord` attribute, plus the dynamic
dependence lists flattened into a CSR-style (indptr, data) pair. The
vectorized kernels in this package operate on these columns instead of
walking Python objects.

Encoding notes:

* ``op`` is the index of the record's :class:`OpClass` in enum
  definition order (:data:`OP_CLASSES`);
* the optional booleans (``mispredict``, ``il1_miss``, ``dl1_miss``,
  ``dl2_miss``) are tri-state ``int8``: -1 encodes ``None`` (not
  annotated), 0/1 encode the oracle outcome;
* optional integers (``mem_addr``, ``target``) carry a companion
  presence bit so ``None`` and 0 stay distinguishable;
* ``dep_indptr[i]:dep_indptr[i+1]`` slices ``dep_data`` to the
  dependence distances of record ``i`` (distances are >= 1, stored in
  record order).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.isa.opcodes import OpClass
from repro.trace.record import TraceRecord
from repro.trace.stream import Trace

#: Op classes in enum definition order; ``op`` column values index this.
OP_CLASSES: Tuple[OpClass, ...] = tuple(OpClass)

#: OpClass -> column code.
OP_CODE: Dict[OpClass, int] = {cls: i for i, cls in enumerate(OP_CLASSES)}

BRANCH_CODE = OP_CODE[OpClass.BRANCH]
JUMP_CODE = OP_CODE[OpClass.JUMP]
LOAD_CODE = OP_CODE[OpClass.LOAD]
STORE_CODE = OP_CODE[OpClass.STORE]

#: One row per dynamic instruction.
RECORD_DTYPE = np.dtype(
    [
        ("op", np.uint8),
        ("pc", np.int64),
        ("mem_addr", np.int64),
        ("has_mem_addr", np.bool_),
        ("taken", np.bool_),
        ("target", np.int64),
        ("has_target", np.bool_),
        ("mispredict", np.int8),
        ("il1_miss", np.int8),
        ("dl1_miss", np.int8),
        ("dl2_miss", np.int8),
    ]
)

#: Bumped when the column encoding changes; folded into cache keys.
PACK_SCHEMA_VERSION = 2  # 2: npz objects carry an embedded content checksum


def _tri(value) -> int:
    """Tri-state encode: None -> -1, False -> 0, True -> 1."""
    if value is None:
        return -1
    return 1 if value else 0


def _untri(code: int):
    """Inverse of :func:`_tri`."""
    if code < 0:
        return None
    return bool(code)


class PackedTrace:
    """A trace as columns; see the module docstring for the encoding."""

    __slots__ = ("columns", "dep_indptr", "dep_data", "name")

    def __init__(
        self,
        columns: np.ndarray,
        dep_indptr: np.ndarray,
        dep_data: np.ndarray,
        name: str = "trace",
    ):
        if columns.dtype != RECORD_DTYPE:
            raise ValueError(f"columns must have dtype {RECORD_DTYPE}")
        if len(dep_indptr) != len(columns) + 1:
            raise ValueError(
                f"dep_indptr length {len(dep_indptr)} != n+1 "
                f"({len(columns) + 1})"
            )
        self.columns = columns
        self.dep_indptr = dep_indptr
        self.dep_data = dep_data
        self.name = name

    def __len__(self) -> int:
        return len(self.columns)

    @property
    def nbytes(self) -> int:
        """Total array payload size in bytes."""
        return (
            self.columns.nbytes + self.dep_indptr.nbytes + self.dep_data.nbytes
        )

    # -- column views ------------------------------------------------------

    @property
    def op(self) -> np.ndarray:
        return self.columns["op"]

    @property
    def pc(self) -> np.ndarray:
        return self.columns["pc"]

    @property
    def taken(self) -> np.ndarray:
        return self.columns["taken"]

    @property
    def mispredict(self) -> np.ndarray:
        return self.columns["mispredict"]

    @property
    def il1_miss(self) -> np.ndarray:
        return self.columns["il1_miss"]

    @property
    def dl1_miss(self) -> np.ndarray:
        return self.columns["dl1_miss"]

    @property
    def dl2_miss(self) -> np.ndarray:
        return self.columns["dl2_miss"]

    def deps_of(self, seq: int) -> Tuple[int, ...]:
        """Dependence distances of record ``seq`` (for tests/inspection)."""
        lo, hi = int(self.dep_indptr[seq]), int(self.dep_indptr[seq + 1])
        return tuple(int(d) for d in self.dep_data[lo:hi])

    # -- conversion --------------------------------------------------------

    @classmethod
    def pack(cls, trace: Trace) -> "PackedTrace":
        """Pack a record-list trace into columns (lossless)."""
        records = trace.records
        n = len(records)
        columns = np.zeros(n, dtype=RECORD_DTYPE)
        indptr = np.zeros(n + 1, dtype=np.int64)
        rows = []
        dep_data = []
        dep_counts = []
        # The one blessed per-record loop in this package: packing is the
        # boundary between the object and columnar worlds, so it must
        # walk the records once.
        for r in records:  # repro: noqa[PERF001]
            rows.append(
                (
                    OP_CODE[r.op_class],
                    r.pc,
                    r.mem_addr if r.mem_addr is not None else 0,
                    r.mem_addr is not None,
                    r.taken,
                    r.target if r.target is not None else 0,
                    r.target is not None,
                    _tri(r.mispredict),
                    _tri(r.il1_miss),
                    _tri(r.dl1_miss),
                    _tri(r.dl2_miss),
                )
            )
            dep_data.extend(r.deps)
            dep_counts.append(len(r.deps))
        if n:
            columns[:] = rows
            np.cumsum(
                np.asarray(dep_counts, dtype=np.int64), out=indptr[1:]
            )
        return cls(
            columns=columns,
            dep_indptr=indptr,
            dep_data=np.asarray(dep_data, dtype=np.int32),
            name=trace.name,
        )

    def unpack(self) -> Trace:
        """Reconstruct the record-list trace (inverse of :meth:`pack`)."""
        cols = self.columns
        op = cols["op"].tolist()
        pc = cols["pc"].tolist()
        mem = cols["mem_addr"].tolist()
        has_mem = cols["has_mem_addr"].tolist()
        taken = cols["taken"].tolist()
        target = cols["target"].tolist()
        has_target = cols["has_target"].tolist()
        misp = cols["mispredict"].tolist()
        il1 = cols["il1_miss"].tolist()
        dl1 = cols["dl1_miss"].tolist()
        dl2 = cols["dl2_miss"].tolist()
        indptr = self.dep_indptr.tolist()
        dep_data = self.dep_data.tolist()
        records = [
            TraceRecord(
                op_class=OP_CLASSES[op[i]],
                pc=pc[i],
                deps=tuple(dep_data[indptr[i]:indptr[i + 1]]),
                mem_addr=mem[i] if has_mem[i] else None,
                taken=taken[i],
                target=target[i] if has_target[i] else None,
                mispredict=_untri(misp[i]),
                il1_miss=_untri(il1[i]),
                dl1_miss=_untri(dl1[i]),
                dl2_miss=_untri(dl2[i]),
            )
            for i in range(len(cols))
        ]
        return Trace(records, name=self.name)

    # -- array (de)serialization ------------------------------------------

    def to_arrays(self) -> Dict[str, np.ndarray]:
        """Plain-array form for ``np.savez`` (see :mod:`repro.perf.cache`)."""
        return {
            "columns": self.columns,
            "dep_indptr": self.dep_indptr,
            "dep_data": self.dep_data,
            "name": np.asarray(self.name),
            "schema": np.asarray(PACK_SCHEMA_VERSION),
        }

    @classmethod
    def from_arrays(cls, arrays) -> "PackedTrace":
        """Inverse of :meth:`to_arrays`; validates the schema version."""
        schema = int(arrays["schema"])
        if schema != PACK_SCHEMA_VERSION:
            raise ValueError(
                f"packed-trace schema {schema} != {PACK_SCHEMA_VERSION}"
            )
        return cls(
            columns=np.asarray(arrays["columns"], dtype=RECORD_DTYPE),
            dep_indptr=np.asarray(arrays["dep_indptr"], dtype=np.int64),
            dep_data=np.asarray(arrays["dep_data"], dtype=np.int32),
            name=str(arrays["name"]),
        )

    def equals(self, other: "PackedTrace") -> bool:
        """Exact column equality (name included)."""
        return (
            self.name == other.name
            and np.array_equal(self.columns, other.columns)
            and np.array_equal(self.dep_indptr, other.dep_indptr)
            and np.array_equal(self.dep_data, other.dep_data)
        )

    def __repr__(self) -> str:
        return (
            f"PackedTrace({self.name!r}, n={len(self)}, "
            f"deps={len(self.dep_data)}, {self.nbytes} bytes)"
        )
