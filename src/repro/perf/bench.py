"""The ``repro bench`` throughput harness and its regression baseline.

Measures instruction throughput (instr/sec) of the simulator's main
paths — detailed core, scalar and vectorized interval simulation,
scalar and vectorized predictor replay, pack/unpack — and writes the
results to ``BENCH_simulator.json``.

Raw instr/sec numbers are machine-bound, so the harness also measures a
fixed pure-Python + NumPy **calibration workload** and records every
benchmark as ``normalized = instr_per_sec / machine_score``. Normalized
values are comparable across machines of different speeds (to first
order) and are what the ``--compare`` regression gate judges: a
benchmark regresses when its normalized throughput falls more than
``REGRESSION_THRESHOLD`` below the committed baseline.

Speedups (vectorized over scalar, measured in the same process on the
same trace) are machine-independent and recorded alongside.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.frontend.bimodal import BimodalPredictor
from repro.frontend.gshare import GSharePredictor
from repro.frontend.local import LocalPredictor
from repro.interval.fast_sim import FastIntervalSimulator
from repro.perf.batchcore import BatchedSuperscalarCore
from repro.perf.cache import PackedTraceCache
from repro.perf.fast import VectorizedIntervalSimulator
from repro.perf.kernels import packed_statistics
from repro.perf.packed import PackedTrace
from repro.perf.replay import replay
from repro.pipeline.annotate import OracleAnnotator
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace
from repro.util.timing import Stopwatch

BENCH_SCHEMA_VERSION = 1

#: --compare fails when a benchmark's normalized throughput drops more
#: than this fraction below the baseline.
REGRESSION_THRESHOLD = 0.15

#: Fixed generation parameters so every run benches the same trace.
BENCH_SEED = 2006
FULL_LENGTH = 60_000
QUICK_LENGTH = 12_000

_PREDICTOR_SCALARS = {
    "bimodal": BimodalPredictor,
    "gshare": GSharePredictor,
    "local": LocalPredictor,
}


def _bench_profile() -> WorkloadProfile:
    return WorkloadProfile(
        name="bench",
        mispredict_rate=0.06,
        il1_mpki=2.0,
        dl1_miss_rate=0.05,
        dl2_miss_rate=0.01,
    )


#: Each timing sample spans at least this long; sub-millisecond kernels
#: are looped until they do, so best-of-N is judged on stable samples.
_MIN_SAMPLE_SECONDS = 0.05


#: Sampling stops early once the two best samples agree this closely;
#: otherwise it continues up to ``_MAX_REPEATS``. Bounds the
#: measurement noise the regression gate has to absorb.
_CONVERGENCE = 0.05
_MAX_REPEATS = 6

#: Round-robin passes over the whole suite; each benchmark keeps its
#: best cycle, so a slow host phase must span every cycle to bias it.
_CYCLES = 2


def _time_best(fn: Callable[[], Any], repeats: int) -> float:
    """Converged best-sample wall seconds for one call of ``fn``.

    Two defenses against a noisy host, both needed in practice:

    * fast functions are auto-calibrated — a sample loops ``fn`` enough
      times to span :data:`_MIN_SAMPLE_SECONDS` and the per-call time
      is the sample mean, so sub-millisecond kernels don't measure
      scheduler noise;
    * sampling continues past ``repeats`` (up to :data:`_MAX_REPEATS`)
      until the two best samples agree within :data:`_CONVERGENCE`, so
      one lucky sample never defines the result.
    """
    iterations = 1
    while True:
        watch = Stopwatch()
        for _ in range(iterations):
            fn()
        elapsed = watch.elapsed
        if elapsed >= _MIN_SAMPLE_SECONDS or iterations >= 4096:
            break
        shortfall = _MIN_SAMPLE_SECONDS / max(elapsed, 1e-9)
        iterations = min(4096, max(iterations * 2, int(iterations * shortfall) + 1))
    samples = [elapsed / iterations]
    while len(samples) < _MAX_REPEATS:
        first, second = sorted(samples)[:2] if len(samples) > 1 else (None, None)
        if (
            len(samples) >= repeats
            and first is not None
            and second <= first * (1 + _CONVERGENCE)
        ):
            break
        watch = Stopwatch()
        for _ in range(iterations):
            fn()
        samples.append(watch.elapsed / iterations)
    return min(samples)


def machine_score(repeats: int = 2) -> float:
    """Throughput of a fixed CPU-bound calibration workload.

    Half pure-Python bytecode, half NumPy, mirroring the mix of work in
    the real benchmarks; the unit is arbitrary (iterations/sec) — only
    ratios against it are ever used. Machine speed drifts on a scale of
    minutes (shared hosts, frequency scaling), so the harness measures
    this *adjacent to every benchmark* and normalizes each one by its
    own local score rather than by a single per-run calibration.
    """
    import numpy as np

    size = 200_000

    def workload() -> None:
        total = 0
        for i in range(size):
            total += i & 7
        a = np.arange(size, dtype=np.int64)
        for _ in range(8):
            a = (a * 3 + 1) & 0xFFFF
        if total < 0:  # keep both halves observable
            raise AssertionError

    return size / _time_best(workload, repeats)


def run_benchmarks(
    quick: bool = False, repeats: Optional[int] = None
) -> Dict[str, Any]:
    """Run the suite; returns one mode's run payload.

    Quick and full runs measure different trace lengths, and per-item
    throughput is *not* length-independent (fixed NumPy dispatch
    overhead amortizes differently), so the two modes are kept as
    separate baseline sections and only ever compared like-with-like.
    """
    length = QUICK_LENGTH if quick else FULL_LENGTH
    if repeats is None:
        repeats = 2
    profile = _bench_profile()
    config = CoreConfig(record_timeline=False)
    trace = generate_trace(profile, length, BENCH_SEED)
    packed = PackedTrace.pack(trace)
    branch_count = trace.statistics().branch_count
    n = len(trace)

    specs: List[Tuple[str, Callable[[], Any], int]] = []

    def spec(name: str, fn: Callable[[], Any], items: int) -> None:
        specs.append((name, fn, items))

    # Detailed core: packed-annotation fast path vs per-record annotator.
    spec("detailed_core", lambda: simulate(trace, config), n)
    spec(
        "detailed_core_scalar_annotate",
        lambda: simulate(trace, config, annotator=OracleAnnotator(config)),
        n,
    )

    # Lockstep batched detailed core: 8 ROB sweep points per call, so
    # per-point throughput counts n instructions per config. The core
    # is built once (a sweep reuses it the same way) and its column/
    # plan caches warm on the first timed call, matching steady-state
    # sweep behaviour.
    batch_configs = [
        config.with_overrides(rob_size=r)
        for r in (32, 48, 64, 96, 128, 160, 192, 256)
    ]
    batch_core = BatchedSuperscalarCore(batch_configs)
    spec(
        "detailed_core_batched",
        lambda: batch_core.run(trace),
        n * len(batch_configs),
    )

    # Interval simulation.
    scalar_sim = FastIntervalSimulator(config)
    vector_sim = VectorizedIntervalSimulator(config)
    spec("fast_sim_scalar", lambda: scalar_sim.estimate(trace), n)
    spec("fast_sim_vectorized", lambda: vector_sim.estimate(packed), n)

    # Predictor replay (throughput counted in branches).
    def scalar_replay(name: str) -> Callable[[], None]:
        def run() -> None:
            predictor = _PREDICTOR_SCALARS[name]()
            # The scalar baseline being measured against — the one loop
            # this package exists to beat.
            for r in trace.records:  # repro: noqa[PERF001]
                if r.is_branch:
                    predictor.predict_and_update(r.pc, r.taken)

        return run

    for name in ("bimodal", "gshare", "local"):
        spec(f"replay_{name}_scalar", scalar_replay(name), branch_count)
        spec(
            f"replay_{name}_vectorized",
            lambda name=name: replay(packed, name),
            branch_count,
        )

    # Columnar conversions and statistics.
    spec("pack", lambda: PackedTrace.pack(trace), n)
    spec("unpack", lambda: packed.unpack(), n)
    spec("statistics_scalar", lambda: trace._compute_statistics(), n)
    spec("statistics_vectorized", lambda: packed_statistics(packed), n)

    # End to end: cold scalar pipeline (generate, then scalar interval
    # estimate) vs the perf pipeline (content-addressed packed trace,
    # then the vectorized estimate) with a warm compiled-trace cache.
    tmp = tempfile.mkdtemp(prefix="repro-bench-")
    cache = PackedTraceCache(root=tmp)
    cache.get_or_build(profile, length, BENCH_SEED)  # warm it
    spec(
        "end_to_end_scalar",
        lambda: FastIntervalSimulator(config).estimate(
            generate_trace(profile, length, BENCH_SEED)
        ),
        n,
    )
    spec(
        "end_to_end_perf",
        lambda: VectorizedIntervalSimulator(config).estimate(
            cache.get_or_build(profile, length, BENCH_SEED)
        ),
        n,
    )

    # Shared hosts drift through slow phases lasting seconds, long
    # enough to swallow a benchmark's whole sample budget. Two defenses:
    # each measurement is normalized by a calibration taken right next
    # to it (cancels drift slower than one measurement), and the whole
    # suite runs in round-robin cycles minutes apart, keeping each
    # benchmark's best cycle (a slow phase would have to cover every
    # cycle to bias the result).
    benchmarks: Dict[str, Dict[str, float]] = {}
    scores: List[float] = []
    try:
        for _cycle in range(_CYCLES):
            for name, fn, items in specs:
                local_score = machine_score()
                scores.append(local_score)
                seconds = _time_best(fn, repeats)
                rate = items / seconds if seconds > 0 else float("inf")
                entry = {
                    "items_per_sec": rate,
                    "seconds": seconds,
                    "items": items,
                    "normalized": rate / local_score,
                }
                best = benchmarks.get(name)
                if best is None or entry["normalized"] > best["normalized"]:
                    benchmarks[name] = entry
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    scores.sort()
    score = scores[len(scores) // 2]  # median of the local calibrations

    def ratio(fast: str, slow: str) -> float:
        # Judged on the drift-cancelled normalized values: the scalar
        # and vectorized variants run minutes apart in a full suite.
        return (
            benchmarks[fast]["normalized"] / benchmarks[slow]["normalized"]
        )

    speedups = {
        "fast_sim": ratio("fast_sim_vectorized", "fast_sim_scalar"),
        "replay_bimodal": ratio("replay_bimodal_vectorized", "replay_bimodal_scalar"),
        "replay_gshare": ratio("replay_gshare_vectorized", "replay_gshare_scalar"),
        "replay_local": ratio("replay_local_vectorized", "replay_local_scalar"),
        "statistics": ratio("statistics_vectorized", "statistics_scalar"),
        "detailed_core": ratio("detailed_core", "detailed_core_scalar_annotate"),
        "detailed_core_batched": ratio("detailed_core_batched", "detailed_core"),
        "end_to_end": ratio("end_to_end_perf", "end_to_end_scalar"),
    }

    return {
        "schema": BENCH_SCHEMA_VERSION,
        "mode": "quick" if quick else "full",
        "length": length,
        "seed": BENCH_SEED,
        "repeats": repeats,
        "machine_score": score,
        "benchmarks": benchmarks,
        "speedups": speedups,
    }


def compare(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = REGRESSION_THRESHOLD,
) -> List[str]:
    """Regression messages; empty means the gate passes.

    ``current`` is one run payload; ``baseline`` is the committed
    document, whose matching mode section is judged (quick runs never
    compare against full-length numbers — amortization differs). Judged
    on machine-normalized throughput for benchmarks present in both
    payloads (new benchmarks pass trivially, removed ones are reported
    so a baseline refresh is deliberate).

    The default 15% threshold is meant for a dedicated perf machine.
    Shared/hosted runners drift 20-30% between machine-state epochs in
    ways the interleaved calibration cannot cancel; gate those with an
    explicit wider ``--threshold`` (CI uses 0.5) so only real
    regressions fail.
    """
    problems: List[str] = []
    mode = current.get("mode", "full")
    base_run = baseline.get("runs", {}).get(mode)
    if base_run is None:
        return [
            f"baseline has no '{mode}' section; refresh it with "
            f"'repro bench{' --quick' if mode == 'quick' else ''} --out'"
        ]
    base_benchmarks = base_run.get("benchmarks", {})
    cur_benchmarks = current.get("benchmarks", {})
    for name in sorted(base_benchmarks):
        if name not in cur_benchmarks:
            problems.append(f"{name}: present in baseline but not measured")
            continue
        base = base_benchmarks[name].get("normalized")
        cur = cur_benchmarks[name].get("normalized")
        if not base or cur is None:
            continue
        drop = 1.0 - cur / base
        if drop > threshold:
            problems.append(
                f"{name}: normalized throughput {cur:.3f} is "
                f"{100 * drop:.1f}% below baseline {base:.3f} "
                f"(threshold {100 * threshold:.0f}%)"
            )
    return problems


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def write_payload(payload: Dict[str, Any], path: str) -> None:
    """Merge one run payload into the baseline document at ``path``.

    The document keeps one section per mode (``runs.full`` /
    ``runs.quick``); writing a quick run refreshes only the quick
    section. The write itself is atomic and deterministically
    formatted.
    """
    document: Dict[str, Any] = {
        "schema": BENCH_SCHEMA_VERSION,
        "seed": payload["seed"],
        "runs": {},
    }
    try:
        existing = load_baseline(path)
        if existing.get("schema") == BENCH_SCHEMA_VERSION:
            document["runs"] = dict(existing.get("runs", {}))
    except (OSError, ValueError):
        pass
    run = {key: payload[key] for key in payload if key not in ("schema", "seed")}
    document["runs"][payload.get("mode", "full")] = run
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-", suffix=".json")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def render(payload: Dict[str, Any]) -> str:
    """Human-readable summary for the CLI."""
    lines = [
        f"bench[{payload.get('mode', 'full')}]: length={payload['length']} "
        f"repeats={payload['repeats']} "
        f"machine_score={payload['machine_score']:.0f}",
        f"{'benchmark':<32} {'items/sec':>14} {'normalized':>12}",
    ]
    for name in sorted(payload["benchmarks"]):
        entry = payload["benchmarks"][name]
        lines.append(
            f"{name:<32} {entry['items_per_sec']:>14.0f} "
            f"{entry['normalized']:>12.3f}"
        )
    lines.append("speedups (vectorized / scalar):")
    for name, value in sorted(payload["speedups"].items()):
        lines.append(f"  {name:<30} {value:6.2f}x")
    return "\n".join(lines)
