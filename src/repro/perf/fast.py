"""Column-oriented interval simulation.

:class:`VectorizedIntervalSimulator` is the packed-trace rewrite of
:class:`~repro.interval.fast_sim.FastIntervalSimulator`. Event
extraction (which records are miss events, their kinds, the
inter-event gaps, and each mispredict's window start) happens as whole-
column NumPy expressions, and every mispredicted branch's resolution
DP runs in lockstep across all windows at once
(:func:`_batch_resolutions`). The only remaining Python loop walks the
rare long D-cache misses for overlap merging.

The output is the very same :class:`~repro.interval.fast_sim.
FastEstimate` — equal in every field, including the float cycle
components, because every accumulation here is a sum of the same
integers the scalar path adds one at a time (exactly representable, so
the order of summation cannot change the value). The equivalence suite
asserts ``==`` on the full estimate, not approximate closeness.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.analysis import sanitizer as _sanitizer
from repro.interval.fast_sim import FastEstimate
from repro.obs import runtime as _obs
from repro.perf.kernels import steady_latency_column
from repro.perf.packed import BRANCH_CODE, LOAD_CODE, PackedTrace
from repro.pipeline.config import CoreConfig
from repro.util.timing import Stopwatch

_BPRED, _ICACHE, _LONG = 0, 1, 2


class VectorizedIntervalSimulator:
    """One-pass interval simulation over a :class:`PackedTrace`."""

    def __init__(self, config: CoreConfig = CoreConfig()):
        self.config = config

    def estimate(self, packed: PackedTrace) -> FastEstimate:
        """Interval-simulate the packed trace; equals the scalar estimate."""
        watch = Stopwatch()
        config = self.config
        n = len(packed)

        # Event extraction: per-record kind with the same shadowing
        # priority as the scalar stream (bpred > icache > long).
        bpred = (packed.op == BRANCH_CODE) & (packed.mispredict == 1)
        icache = (packed.il1_miss == 1) & ~bpred
        long_miss = (
            (packed.op == LOAD_CODE)
            & (packed.dl2_miss == 1)
            & ~bpred
            & ~icache
        )
        event_seqs = np.flatnonzero(bpred | icache | long_miss)
        kinds = np.where(
            bpred[event_seqs], _BPRED, np.where(icache[event_seqs], _ICACHE, _LONG)
        )

        # Inter-event gaps -> each mispredict's window start, as columns.
        previous = np.empty(len(event_seqs), dtype=np.int64)
        previous[0:1] = -1
        previous[1:] = event_seqs[:-1]
        occupancy = np.minimum(event_seqs - previous - 1, config.rob_size)
        window_starts = np.maximum(0, event_seqs - occupancy)

        lat = steady_latency_column(packed, config)
        is_bpred_event = kinds == _BPRED
        resolutions = _batch_resolutions(
            window_starts[is_bpred_event],
            event_seqs[is_bpred_event],
            lat,
            packed.dep_indptr,
            packed.dep_data,
        )
        long_independent = self._walk_longs(
            kinds, event_seqs, packed.dep_indptr, packed.dep_data
        )

        mispredict_count = len(resolutions)
        icache_count = int(icache.sum())
        long_count = int(long_miss.sum())

        estimate = FastEstimate(
            instructions=n,
            base_cycles=n / config.dispatch_width,
            mispredict_cycles=float(
                sum(resolutions) + mispredict_count * config.frontend_depth
            ),
            icache_cycles=float(icache_count * config.l2_latency),
            long_dmiss_cycles=float(long_independent * config.memory_latency),
            mispredict_count=mispredict_count,
            icache_count=icache_count,
            long_dmiss_count=long_count,
            resolutions=resolutions,
            wall_seconds=watch.elapsed,
        )
        prof = _obs.current_profiler()
        if prof is not None:
            prof.add("fast_sim.estimate", estimate.wall_seconds)
        metrics = _obs.current_metrics()
        if metrics is not None:
            metrics.counter("fast_sim.estimates_total").inc()
            metrics.counter("fast_sim.mispredicts_total").inc(mispredict_count)
            metrics.counter("fast_sim.instructions_total").inc(n)
            metrics.counter("perf.vectorized_estimates_total").inc()
        san = _sanitizer.current()
        if san is not None:
            san.check_fast_estimate(estimate, config.frontend_depth)
        return estimate

    def _walk_longs(self, kinds, event_seqs, indptr_arr, dep_arr) -> int:
        """Scalar overlap-merging pass over the long-miss events only.

        Long misses are rare (tenths of a percent of records) and the
        dependence probe walks a short slice, so this stays a Python
        loop; everything per-record is already columnar by the time we
        get here.
        """
        rob_size = self.config.rob_size
        long_independent = 0
        previous_long = None
        for seq in event_seqs[kinds == _LONG].tolist():
            if (
                previous_long is None
                or seq - previous_long > rob_size
                or _reaches(indptr_arr, dep_arr, seq, previous_long)
            ):
                long_independent += 1
            previous_long = seq
        return long_independent


def _batch_resolutions(
    window_starts: np.ndarray,
    branch_seqs: np.ndarray,
    lat: np.ndarray,
    indptr: np.ndarray,
    dep: np.ndarray,
) -> List[int]:
    """Resolution latencies of every mispredicted branch, in lockstep.

    Each branch's resolution is the finish-time DP over its window
    ``[window_start, branch_seq]`` (equal to
    :func:`~repro.interval.ilp.backward_slice_latency`, since the
    branch's finish time depends only on its backward slice). Windows
    are independent of each other, so instead of running one Python DP
    per branch, all windows advance together: step ``t`` computes
    ``finish[t] = lat[t] + max(finish[t - d])`` for offset ``t`` of
    *every* window in a handful of whole-array operations.

    The dependence lists are re-laid into per-slot matrices (slot ``j``
    holds each record's ``j``-th dependence; real traces have at most
    two or three), producer offsets that fall before a window or do not
    exist point at a sentinel row that stays zero, and offsets past a
    window's branch compute garbage that nothing valid ever reads —
    valid cells only look strictly upstream within their own column.
    All arithmetic is int64, so results match the scalar DP exactly.
    """
    count = len(branch_seqs)
    if not count:
        return []
    sizes = (branch_seqs - window_starts + 1).astype(np.int64)
    steps = int(sizes.max())
    n = len(lat)

    # Global record index for (offset t, window w), clipped past the end.
    offsets = np.arange(steps, dtype=np.int64)[:, None]
    seq_at = np.minimum(window_starts[None, :] + offsets, n - 1)

    # Per-slot dependence distances for every record (0 = no dependence).
    counts = np.diff(indptr)
    max_slots = int(counts.max()) if len(counts) else 0
    producers = []
    for slot in range(max_slots):
        has = counts > slot
        dist = np.zeros(n, dtype=np.int64)
        dist[has] = dep[indptr[:-1][has] + slot]
        dist_at = dist[seq_at]
        prod = offsets - dist_at
        # Sentinel row `steps` (always zero) for absent slots and
        # producers upstream of the window.
        producers.append(np.where((dist_at <= 0) | (prod < 0), steps, prod))

    lat_at = lat[seq_at]
    cols = np.arange(count)
    finish = np.zeros((steps + 1, count), dtype=np.int64)
    for t in range(steps):
        begin = np.zeros(count, dtype=np.int64)
        for prod in producers:
            np.maximum(begin, finish[prod[t], cols], out=begin)
        finish[t] = begin + lat_at[t]
    return finish[sizes - 1, cols].tolist()


def _reaches(indptr_arr, dep_arr, consumer: int, producer: int) -> bool:
    """CSR transcription of ``FastIntervalSimulator._depends_on``.

    Offsets are relative to ``producer``: an upstream offset of 0 is a
    hit, negative offsets fall outside the explored range (the scalar
    BFS prunes there too).
    """
    indptr = indptr_arr[producer:consumer + 2].tolist()
    base = indptr[0]
    dep = dep_arr[base:indptr[-1]].tolist()
    frontier = [consumer - producer]
    seen = set()
    while frontier:
        offset = frontier.pop()
        for k in range(indptr[offset] - base, indptr[offset + 1] - base):
            upstream = offset - dep[k]
            if upstream == 0:
                return True
            if upstream > 0 and upstream not in seen:
                seen.add(upstream)
                frontier.append(upstream)
    return False
