"""Interval-boundary checkpointing and bit-identical shard stitching.

The paper's interval model segments execution at miss events because
the machine *drains* there: a mispredicted branch stops dispatch at the
branch, the window empties while it resolves, and the frontend refills
before the next instruction enters. Those drain points are exactly
where a long simulation can be cut: when every pre-boundary
instruction has committed and every functional unit is free by the
cycle the post-boundary instruction would dispatch, the machine state
at the boundary is a *fresh* pipeline shifted in time. A shard can
then be simulated from a fresh kernel on its sub-trace — with no state
carried in at all — and its cycles, events, and timelines shifted by a
constant offset during stitching.

Cleanliness is a runtime property (a long D-cache miss issued just
before the branch can straddle the boundary), so every shard *proves*
it: the kernel reports its end state
(:class:`~repro.perf.batchcore.KernelEndState`) and the stitcher
verifies ``last commit < resume cycle`` and ``FU reservations <=
resume cycle`` before accepting the cut. A dirty boundary is healed by
merging the shard with its successor and re-simulating the union —
correctness never depends on the boundary choice.

Because clean shards need no incoming state, they are *independent*
units of work: :class:`~repro.lab.jobs.ShardSimJob` runs one shard in
a lab pool worker and the per-shard results are stitched here,
bit-identically to the unsharded run (the equivalence suite asserts
field-exact equality at every boundary).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.perf.batchcore import (
    TraceColumns,
    _CacheColumns,
    _FUTables,
    _assemble_result,
    _observability_active,
    _simulate_columns,
    batch_supported,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import SuperscalarCore
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEvent,
)
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace

#: Bumped when the checkpoint payload layout changes.
CHECKPOINT_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class PipelineCheckpoint:
    """Serialized pipeline state at one clean interval boundary.

    A clean boundary's state is canonical — empty window, free
    functional units, refilling frontend — so the checkpoint is the
    *proof* plus the time base: the boundary sequence number, the
    absolute cycle the next instruction dispatches, and the residual
    activity bounds that establish cleanliness. ``from_payload`` /
    ``to_payload`` round-trip through JSON so checkpoints can ride the
    lab store between pool workers.
    """

    boundary: int
    resume_cycle: int
    last_commit_cycle: int
    max_fu_free: int
    clean: bool

    def to_payload(self) -> Dict[str, Any]:
        return {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "boundary": self.boundary,
            "resume_cycle": self.resume_cycle,
            "last_commit_cycle": self.last_commit_cycle,
            "max_fu_free": self.max_fu_free,
            "clean": self.clean,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PipelineCheckpoint":
        schema = payload.get("schema")
        if schema != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError(
                f"checkpoint schema {schema!r} != {CHECKPOINT_SCHEMA_VERSION}"
            )
        return cls(
            boundary=payload["boundary"],
            resume_cycle=payload["resume_cycle"],
            last_commit_cycle=payload["last_commit_cycle"],
            max_fu_free=payload["max_fu_free"],
            clean=payload["clean"],
        )


@dataclass(frozen=True)
class ShardResult:
    """One simulated shard in its own (relative) time base.

    ``result`` is the shard's :class:`SimulationResult` as if its
    sub-trace were a whole program; ``resume_cycle`` is the relative
    cycle the next shard's first instruction would dispatch, and
    ``clean`` whether the end state proved drained (always True for the
    final shard, whose resume cycle is unused).
    """

    start: int
    stop: int
    result: SimulationResult
    resume_cycle: int
    clean: bool


@dataclass
class ShardReport:
    """How a sharded run went: spans, checkpoints, healed boundaries."""

    spans: List[Tuple[int, int]]
    checkpoints: List[PipelineCheckpoint]
    merged_boundaries: int = 0
    fallback: bool = False


def interval_boundaries(
    source, min_gap: int = 1, limit: Optional[int] = None
) -> List[int]:
    """Candidate shard cuts: positions right after mispredicted controls.

    ``source`` is a :class:`~repro.trace.stream.Trace` or prebuilt
    :class:`TraceColumns`. Boundaries are strictly inside the trace and
    at least ``min_gap`` records apart; ``limit`` keeps only the first
    N. The list is a *candidate* set — stitching verifies each cut at
    runtime and heals dirty ones.
    """
    cols = source if isinstance(source, TraceColumns) else TraceColumns.build(source)
    candidates = (np.flatnonzero(np.asarray(cols.misp, dtype=bool)) + 1).tolist()
    boundaries: List[int] = []
    previous = 0
    for position in candidates:
        if position >= cols.n:
            break
        if position - previous < min_gap:
            continue
        boundaries.append(position)
        previous = position
        if limit is not None and len(boundaries) >= limit:
            break
    return boundaries


def plan_shards(source, shards: int) -> List[int]:
    """Pick ~evenly spaced boundaries yielding about ``shards`` shards."""
    cols = source if isinstance(source, TraceColumns) else TraceColumns.build(source)
    if shards <= 1 or cols.n == 0:
        return []
    candidates = interval_boundaries(cols)
    if not candidates:
        return []
    picks: List[int] = []
    array = np.asarray(candidates)
    for k in range(1, shards):
        target = cols.n * k // shards
        nearest = int(array[np.argmin(np.abs(array - target))])
        if not picks or nearest > picks[-1]:
            picks.append(nearest)
    return picks


def simulate_shard(
    trace: Trace, config: CoreConfig, start: int, stop: int
) -> ShardResult:
    """Simulate records ``[start, stop)`` from a fresh pipeline.

    The shard's own time base starts at cycle 0 (first dispatch at
    ``frontend_depth``, like any whole-program run); dependences
    reaching before ``start`` are dropped, which is exactly what a
    clean boundary guarantees the full run would observe.
    """
    cols = TraceColumns.build(trace).slice(start, stop)
    return _simulate_shard_columns(cols, config, start, stop)


def _simulate_shard_columns(
    cols: TraceColumns, config: CoreConfig, start: int, stop: int
) -> ShardResult:
    output = _simulate_columns(
        cols, _CacheColumns(cols, config), _FUTables(config), config
    )
    end = output.end_state
    return ShardResult(
        start=start,
        stop=stop,
        result=_assemble_result(output, config, cols.n),
        resume_cycle=end.resume_cycle,
        clean=end.clean,
    )


def _shift_event(event: MissEvent, seq_off: int, cyc_off: int) -> MissEvent:
    if isinstance(event, BranchMispredictEvent):
        return replace(
            event,
            seq=event.seq + seq_off,
            cycle=event.cycle + cyc_off,
            resolve_cycle=event.resolve_cycle + cyc_off,
        )
    if isinstance(event, LongDMissEvent):
        return replace(
            event,
            seq=event.seq + seq_off,
            cycle=event.cycle + cyc_off,
            complete_cycle=event.complete_cycle + cyc_off,
        )
    if isinstance(event, ICacheMissEvent):
        return replace(
            event, seq=event.seq + seq_off, cycle=event.cycle + cyc_off
        )
    raise TypeError(f"unknown event type {type(event).__name__}")


def stitch(pieces: Sequence[ShardResult], config: CoreConfig) -> SimulationResult:
    """Merge contiguous clean shards into one absolute-time result.

    Every non-final piece must be ``clean`` (heal dirty cuts by merging
    before calling); pieces must tile ``[0, n)`` in order. The output
    is field-for-field what the unsharded simulation produces: shard
    k's time base shifts by the accumulated resume offsets, events
    concatenate in dispatch order (a clean boundary orders all of shard
    k-1's events before shard k's), counters sum, peaks take the max.
    """
    if not pieces:
        return SimulationResult(instructions=0, cycles=0)
    record_timeline = config.record_timeline
    events: List[MissEvent] = []
    dispatch_cycle: Optional[List[int]] = [] if record_timeline else None
    issue_cycle: Optional[List[int]] = [] if record_timeline else None
    complete_cycle: Optional[List[int]] = [] if record_timeline else None
    commit_cycle: Optional[List[int]] = [] if record_timeline else None
    fu_counts: Dict[str, int] = {}
    rob_peak = 0
    offset = 0
    expected_start = 0
    total_cycles = 0
    for index, piece in enumerate(pieces):
        if piece.start != expected_start:
            raise ValueError(
                f"shard {index} starts at {piece.start}, expected "
                f"{expected_start}"
            )
        final = index == len(pieces) - 1
        if not final and not piece.clean:
            raise ValueError(
                f"shard {index} ([{piece.start}, {piece.stop})) ended dirty; "
                "merge it with its successor before stitching"
            )
        result = piece.result
        events.extend(_shift_event(e, piece.start, offset) for e in result.events)
        if record_timeline:
            dispatch_cycle.extend(v + offset for v in result.dispatch_cycle)
            issue_cycle.extend(v + offset for v in result.issue_cycle)
            complete_cycle.extend(v + offset for v in result.complete_cycle)
            commit_cycle.extend(v + offset for v in result.commit_cycle)
        for name, count in result.fu_issue_counts.items():
            fu_counts[name] = fu_counts.get(name, 0) + count
        if result.rob_peak_occupancy > rob_peak:
            rob_peak = result.rob_peak_occupancy
        if final:
            total_cycles = offset + result.cycles
        else:
            offset += piece.resume_cycle - config.frontend_depth
        expected_start = piece.stop
    return SimulationResult(
        instructions=expected_start,
        cycles=total_cycles,
        events=events,
        dispatch_cycle=dispatch_cycle,
        issue_cycle=issue_cycle,
        complete_cycle=complete_cycle,
        commit_cycle=commit_cycle,
        fu_issue_counts=fu_counts,
        rob_peak_occupancy=rob_peak,
        squashed_ghosts=0,
    )


def checkpoints_of(pieces: Sequence[ShardResult], config: CoreConfig) -> List[PipelineCheckpoint]:
    """Absolute-time checkpoints at each accepted boundary."""
    checkpoints: List[PipelineCheckpoint] = []
    offset = 0
    for piece in pieces[:-1]:
        resume_abs = offset + piece.resume_cycle
        checkpoints.append(
            PipelineCheckpoint(
                boundary=piece.stop,
                resume_cycle=resume_abs,
                last_commit_cycle=offset + (piece.result.cycles - 1),
                max_fu_free=resume_abs,  # clean: reservations are bounded by it
                clean=piece.clean,
            )
        )
        offset += piece.resume_cycle - config.frontend_depth
    return checkpoints


def simulate_sharded_detailed(
    trace: Trace,
    config: Optional[CoreConfig] = None,
    boundaries: Optional[Sequence[int]] = None,
    shards: int = 4,
) -> Tuple[SimulationResult, ShardReport]:
    """Sharded simulation plus the report of how it was cut.

    Configurations the SoA kernel does not model (wrong path, random
    issue) and runs under ambient observability use the scalar core
    unsharded — sharding is a performance feature, never a semantic
    one. Dirty boundaries are healed by merging shards; the merged
    count lands in the report.
    """
    if config is None:
        config = CoreConfig()
    n = len(trace)
    if n == 0 or not batch_supported(config) or _observability_active():
        return (
            SuperscalarCore(config).run(trace),
            ShardReport(spans=[(0, n)], checkpoints=[], fallback=True),
        )
    cols = TraceColumns.build(trace)
    if boundaries is None:
        bounds = plan_shards(cols, shards)
    else:
        bounds = sorted({b for b in boundaries if 0 < b < n})
    pieces: List[ShardResult] = []
    merged = 0
    start = 0
    cursor = 0
    while start < n:
        stop = bounds[cursor] if cursor < len(bounds) else n
        cursor += 1
        while True:
            piece = _simulate_shard_columns(
                cols.slice(start, stop), config, start, stop
            )
            if stop >= n or piece.clean:
                break
            merged += 1
            stop = bounds[cursor] if cursor < len(bounds) else n
            cursor += 1
        pieces.append(piece)
        start = stop
    return (
        stitch(pieces, config),
        ShardReport(
            spans=[(p.start, p.stop) for p in pieces],
            checkpoints=checkpoints_of(pieces, config),
            merged_boundaries=merged,
        ),
    )


def simulate_sharded(
    trace: Trace,
    config: Optional[CoreConfig] = None,
    boundaries: Optional[Sequence[int]] = None,
    shards: int = 4,
) -> SimulationResult:
    """Sharded simulation, bit-identical to the unsharded run."""
    result, _ = simulate_sharded_detailed(
        trace, config, boundaries=boundaries, shards=shards
    )
    return result


__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "PipelineCheckpoint",
    "ShardReport",
    "ShardResult",
    "checkpoints_of",
    "interval_boundaries",
    "plan_shards",
    "simulate_shard",
    "simulate_sharded",
    "simulate_sharded_detailed",
    "stitch",
]
