"""Batched structure-of-arrays detailed core.

:class:`~repro.pipeline.core.SuperscalarCore` walks one Python object
per dynamic instruction and pays heap/tuple/attribute overhead for
every scheduling decision. This module is the columnar rewrite of that
hot loop, built on the :class:`~repro.perf.packed.PackedTrace`
machinery, in three layers:

* **Structure-of-arrays pipeline state** — completion, base-ready,
  pending-producer, and dispatch columns live in flat arrays indexed by
  dynamic sequence number; the scalar core's per-event heaps are
  replaced by cycle-bucketed scans (a dict of per-cycle buckets plus a
  small heap of *distinct* pending cycles), and the ROB degenerates to
  a pair of integers because on the correct path dispatched
  instructions are consecutive.
* **Lockstep multi-config batching** — :func:`run_batch` simulates N
  sweep points over one set of shared trace columns. Everything that
  depends only on the trace (the packed columns, the filtered CSR
  producer lists, the miss-class codes) is computed once; per-config
  derived columns (load latencies, I-cache refill latencies, FU tables)
  are deduplicated across configs by **divergence group** — configs
  whose cache or FU parameters agree share the same column objects, so
  a ROB/width/frontend sweep derives its columns exactly once.
* **Bit-exactness by construction** — the kernel replays the scalar
  core's scheduling decisions in the same order (oldest-first issue,
  in-order commit, identical time-advance candidates), so the
  :class:`~repro.pipeline.result.SimulationResult` it produces is
  field-for-field equal to the scalar core's, events and timelines
  included. The scalar core remains the oracle: configurations the
  kernel does not model (wrong-path ghost dispatch, the random-issue
  ablation) and runs under ambient observability or sanitizing fall
  back to it per config, keeping observable behavior identical.

The kernel also reports its **end state** (final frontend-ready cycle,
last commit cycle, residual functional-unit reservations), which is
what :mod:`repro.perf.checkpoint` uses to prove an interval boundary
drained cleanly and stitch sharded runs bit-identically.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis import sanitizer as _sanitizer
from repro.obs import runtime as _obs
from repro.perf.packed import (
    BRANCH_CODE,
    JUMP_CODE,
    LOAD_CODE,
    OP_CLASSES,
    STORE_CODE,
    PackedTrace,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import SuperscalarCore
from repro.pipeline.events import (
    BranchMispredictEvent,
    ICacheMissEvent,
    LongDMissEvent,
    MissEvent,
)
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace

#: D-cache miss-class codes (match repro.perf.annotate_fast).
_DCODE_NONE, _DCODE_L1_HIT, _DCODE_SHORT, _DCODE_LONG = 0, 1, 2, 3


def batch_supported(config: CoreConfig) -> bool:
    """True when the SoA kernel models ``config`` exactly.

    Wrong-path ghost dispatch and the random-issue ablation stay on the
    scalar oracle: ghosts break the consecutive-seq ROB encoding, and
    the random policy's SplitMix shuffle is defined over the scalar
    core's ready-pool ordering.
    """
    return config.issue_policy == "oldest" and not config.dispatch_wrong_path


def _observability_active() -> bool:
    """Ambient tracer/metrics/profiler/sanitizer force the oracle path."""
    return (
        _obs.current_tracer() is not None
        or _obs.current_metrics() is not None
        or _obs.current_profiler() is not None
        or _sanitizer.current() is not None
    )


class TraceColumns:
    """Config-independent columns of one trace, shared across a batch.

    Builds once per trace from its :class:`PackedTrace` form: op codes,
    the oracle miss flags, the D-cache miss-class code per record, and
    the dependence CSR rewritten from *distances* to absolute *producer
    indices* (negative producers — before the trace start — already
    filtered out). Slicing for checkpoint shards re-filters producers
    against the shard base, which is exactly the fresh-start semantics
    a clean interval boundary guarantees.
    """

    __slots__ = (
        "n",
        "op",
        "op_np",
        "misp",
        "il1",
        "is_load",
        "is_long",
        "dcode",
        "prod_indptr",
        "prod_data",
        "prod_lists",
        "_owners",
        "_producers",
    )

    def __init__(
        self,
        n: int,
        op: List[int],
        op_np: np.ndarray,
        misp: List[bool],
        il1: np.ndarray,
        is_load: np.ndarray,
        is_long: List[bool],
        dcode: np.ndarray,
        prod_indptr: List[int],
        prod_data: List[int],
        owners: np.ndarray,
        producers: np.ndarray,
    ):
        self.n = n
        self.op = op
        self.op_np = op_np
        self.misp = misp
        self.il1 = il1
        self.is_load = is_load
        self.is_long = is_long
        self.dcode = dcode
        self.prod_indptr = prod_indptr
        self.prod_data = prod_data
        # Per-seq producer tuples, materialized once per trace and
        # shared by every config in a batch — the kernel's dispatch walk
        # then skips CSR slicing entirely (tuples iterate faster than
        # list slices and are safely shareable).
        self.prod_lists: List[Tuple[int, ...]] = [
            tuple(prod_data[prod_indptr[i]:prod_indptr[i + 1]])
            for i in range(n)
        ]
        self._owners = owners
        self._producers = producers

    #: Bounded (packed-trace -> columns) memo. Keyed by object identity
    #: — ``Trace.pack`` memoizes the packed form with invalidation on
    #: mutation, so identity is a correct proxy for content here. The
    #: values hold strong references to their keys, which both bounds
    #: the memo and keeps the ids stable while entries live.
    _memo: "Dict[int, Tuple[PackedTrace, TraceColumns]]" = {}
    _MEMO_LIMIT = 4

    @classmethod
    def build(cls, trace: Trace) -> "TraceColumns":
        packed = trace.pack()
        entry = cls._memo.get(id(packed))
        if entry is not None and entry[0] is packed:
            return entry[1]
        cols = cls.from_packed(packed)
        if len(cls._memo) >= cls._MEMO_LIMIT:
            cls._memo.pop(next(iter(cls._memo)))
        cls._memo[id(packed)] = (packed, cols)
        return cols

    @classmethod
    def from_packed(cls, packed: PackedTrace) -> "TraceColumns":
        n = len(packed)
        op = packed.op
        is_control = (op == BRANCH_CODE) | (op == JUMP_CODE)
        is_memory = (op == LOAD_CODE) | (op == STORE_CODE)
        is_load = op == LOAD_CODE
        misp = is_control & (packed.mispredict == 1)
        il1 = packed.il1_miss == 1
        dcode = np.where(
            is_memory,
            np.where(
                packed.dl2_miss == 1,
                _DCODE_LONG,
                np.where(packed.dl1_miss == 1, _DCODE_SHORT, _DCODE_L1_HIT),
            ),
            _DCODE_NONE,
        )
        is_long = is_load & (dcode == _DCODE_LONG)
        counts = np.diff(packed.dep_indptr)
        owners = np.repeat(np.arange(n, dtype=np.int64), counts)
        producers = owners - packed.dep_data.astype(np.int64)
        indptr, data = cls._producer_csr(owners, producers, 0, n)
        return cls(
            n=n,
            op=op.tolist(),
            op_np=op,
            misp=misp.tolist(),
            il1=il1,
            is_load=is_load,
            is_long=is_long.tolist(),
            dcode=dcode,
            prod_indptr=indptr,
            prod_data=data,
            owners=owners,
            producers=producers,
        )

    @staticmethod
    def _producer_csr(
        owners: np.ndarray, producers: np.ndarray, start: int, stop: int
    ) -> Tuple[List[int], List[int]]:
        """CSR (indptr, data) of in-range producers, rebased to ``start``."""
        length = stop - start
        keep = (owners >= start) & (owners < stop) & (producers >= start)
        kept_owners = owners[keep] - start
        kept_producers = producers[keep] - start
        counts = np.bincount(kept_owners, minlength=length)
        indptr = np.zeros(length + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr.tolist(), kept_producers.tolist()

    def slice(self, start: int, stop: int) -> "TraceColumns":
        """Columns of records ``[start, stop)`` with rebased producers."""
        if not (0 <= start <= stop <= self.n):
            raise ValueError(f"bad slice [{start}, {stop}) of {self.n}")
        keep = (self._owners >= start) & (self._owners < stop)
        owners = self._owners[keep] - start
        producers = self._producers[keep] - start
        indptr, data = self._producer_csr(owners, producers, 0, stop - start)
        return TraceColumns(
            n=stop - start,
            op=self.op[start:stop],
            op_np=self.op_np[start:stop],
            misp=self.misp[start:stop],
            il1=self.il1[start:stop],
            is_load=self.is_load[start:stop],
            is_long=self.is_long[start:stop],
            dcode=self.dcode[start:stop],
            prod_indptr=indptr,
            prod_data=data,
            owners=owners,
            producers=producers,
        )


class _CacheColumns:
    """Per-seq latency columns derived from one cache-latency group."""

    __slots__ = ("exec_extra", "icache_lat")

    def __init__(self, cols: TraceColumns, config: CoreConfig):
        dtable = np.array(
            [0, config.l1_latency, config.l2_latency, config.memory_latency],
            dtype=np.int64,
        )
        # Loads pay their miss class on top of the FU latency; stores
        # and non-memory ops pay nothing (matches OracleAnnotator).
        self.exec_extra: List[int] = np.where(
            cols.is_load, dtable[cols.dcode], 0
        ).tolist()
        self.icache_lat: List[int] = np.where(
            cols.il1, config.l2_latency, 0
        ).tolist()


class _FUTables:
    """Flat per-op-code FU parameter tables for one fu-spec group."""

    __slots__ = ("latency", "interval", "count")

    def __init__(self, config: CoreConfig):
        self.latency = [config.fu_specs[c].latency for c in OP_CLASSES]
        self.interval = [config.fu_specs[c].issue_interval for c in OP_CLASSES]
        self.count = [config.fu_specs[c].count for c in OP_CLASSES]


def _combined_latency(
    cols: TraceColumns, cache_cols: "_CacheColumns", fu: "_FUTables"
) -> List[int]:
    """Per-seq total execute latency: FU latency + D-cache extra."""
    return (
        np.asarray(fu.latency, dtype=np.int64)[cols.op_np]
        + np.asarray(cache_cols.exec_extra, dtype=np.int64)
    ).tolist()


def _cache_group_key(config: CoreConfig) -> Tuple[int, int, int]:
    return (config.l1_latency, config.l2_latency, config.memory_latency)


def _fu_group_key(config: CoreConfig) -> Tuple:
    return tuple(
        (c.value, s.count, s.latency, s.issue_interval)
        for c, s in sorted(config.fu_specs.items(), key=lambda kv: kv[0].value)
    )


class BatchPlan:
    """Divergence bookkeeping for one batch of configs.

    Derived columns are deduplicated by group key; two configs in the
    same cache group share the *same* column lists (tested by identity).
    :meth:`divergence_mask` exposes, per config, a boolean column
    marking where its latency columns differ from config 0's — the
    positions where lockstep points actually diverge.
    """

    def __init__(self, cols: TraceColumns, configs: Sequence[CoreConfig]):
        self.cols = cols
        self.configs = list(configs)
        self._cache_groups: Dict[Tuple, _CacheColumns] = {}
        self._fu_groups: Dict[Tuple, _FUTables] = {}
        self._lat_groups: Dict[Tuple, List[int]] = {}
        self.cache_group_of: List[Tuple] = []
        self.fu_group_of: List[Tuple] = []
        for config in self.configs:
            ckey = _cache_group_key(config)
            if ckey not in self._cache_groups:
                self._cache_groups[ckey] = _CacheColumns(cols, config)
            self.cache_group_of.append(ckey)
            fkey = _fu_group_key(config)
            if fkey not in self._fu_groups:
                self._fu_groups[fkey] = _FUTables(config)
            self.fu_group_of.append(fkey)
            pair = (ckey, fkey)
            if pair not in self._lat_groups:
                self._lat_groups[pair] = _combined_latency(
                    cols, self._cache_groups[ckey], self._fu_groups[fkey]
                )

    @property
    def cache_group_count(self) -> int:
        return len(self._cache_groups)

    @property
    def fu_group_count(self) -> int:
        return len(self._fu_groups)

    def cache_columns(self, index: int) -> _CacheColumns:
        return self._cache_groups[self.cache_group_of[index]]

    def fu_tables(self, index: int) -> _FUTables:
        return self._fu_groups[self.fu_group_of[index]]

    def lat_column(self, index: int) -> List[int]:
        return self._lat_groups[
            (self.cache_group_of[index], self.fu_group_of[index])
        ]

    def divergence_mask(self, index: int) -> np.ndarray:
        """Where config ``index``'s latency columns differ from config 0's."""
        base = self.cache_columns(0)
        mine = self.cache_columns(index)
        if mine is base:
            return np.zeros(self.cols.n, dtype=bool)
        return (
            np.asarray(mine.exec_extra) != np.asarray(base.exec_extra)
        ) | (np.asarray(mine.icache_lat) != np.asarray(base.icache_lat))


class KernelEndState:
    """What the kernel left behind — the checkpoint layer's evidence.

    ``resume_cycle`` is when the *next* instruction after this column
    range would dispatch (the final frontend-ready cycle);
    ``last_commit_cycle`` and ``max_fu_free`` bound the straggler work
    still in flight at that point. A boundary is *clean* — the suffix
    can be simulated from a fresh kernel and shifted — exactly when all
    residual activity lands strictly before (commits) or at latest at
    (FU reservations) the resume cycle. ``max_fu_free`` covers only FU
    groups that can actually bind (multi-cycle issue intervals or fewer
    units than the issue width); an unconstrained group's newest
    reservation is at most its last issue cycle + 1, which the commit
    conjunct already bounds below the resume cycle, so omitting those
    groups never flips ``clean``.
    """

    __slots__ = ("resume_cycle", "last_commit_cycle", "max_fu_free")

    def __init__(
        self, resume_cycle: int, last_commit_cycle: int, max_fu_free: int
    ):
        self.resume_cycle = resume_cycle
        self.last_commit_cycle = last_commit_cycle
        self.max_fu_free = max_fu_free

    @property
    def clean(self) -> bool:
        return (
            self.last_commit_cycle < self.resume_cycle
            and self.max_fu_free <= self.resume_cycle
        )


class KernelOutput:
    """Raw kernel products before assembly into a SimulationResult."""

    __slots__ = (
        "events",
        "dispatch_cycle",
        "issue_cycle",
        "complete_cycle",
        "commit_cycle",
        "fu_issued",
        "rob_peak",
        "last_commit_cycle",
        "end_state",
    )

    def __init__(self, **fields):
        for name, value in fields.items():
            setattr(self, name, value)


def _simulate_columns(
    cols: TraceColumns,
    cache_cols: _CacheColumns,
    fu: _FUTables,
    config: CoreConfig,
    lat_total: Optional[List[int]] = None,
) -> KernelOutput:
    """The SoA kernel: one config over one column set, scalar-exact.

    Mirrors ``SuperscalarCore.run`` phase for phase (completions,
    commit, dispatch, wakeup, issue, time advance) with identical
    ordering rules, so every produced field is equal to the scalar
    core's. See that module's docstring for the machine model.

    Instead of materializing completion events, commit reads the
    completion column directly (an instruction with ``comp[seq] <=
    cycle`` has, by phase order, already been processed by the scalar
    core's completion drain at this point), so the completion queue
    degenerates to a lazily stale-dropped heap of cycles that exists
    only to feed the time-advance candidate set.
    """
    n = cols.n
    op = cols.op
    misp = cols.misp
    is_long = cols.is_long
    icache_lat = cache_cols.icache_lat
    prod_lists = cols.prod_lists
    if lat_total is None:
        lat_total = _combined_latency(cols, cache_cols, fu)
    fu_interval = fu.interval

    dispatch_width = config.dispatch_width
    issue_width = config.issue_width
    commit_width = config.commit_width
    rob_size = config.rob_size
    frontend_depth = config.frontend_depth
    record_timeline = config.record_timeline

    fu_free: List[List[int]] = [[0] * c for c in fu.count]
    fu_scan = [range(c) for c in fu.count]
    # A single-cycle-interval FU group with at least issue_width units
    # can never be the binding constraint: at most issue_width - 1
    # same-cycle reservations exist when a unit is sought, and every
    # earlier reservation (made at c' < cycle, free at c' + 1) has
    # already expired — the scan always succeeds. Those codes skip the
    # reservation bookkeeping entirely. The checkpoint cleanliness
    # probe stays exact without them: such a reservation is at most
    # (last issue cycle) + 1 <= that instruction's completion cycle <=
    # the last commit cycle, which the probe's first conjunct already
    # bounds below the resume cycle, so an unconstrained group can
    # never flip ``clean``. ``op_bind`` is the complement of that
    # property mapped per seq, so the issue loop pays one truthy column
    # read instead of two table lookups.
    fu_bind = [
        0 if (fu_interval[i] == 1 and c >= issue_width) else 1
        for i, c in enumerate(fu.count)
    ]
    op_bind = np.asarray(fu_bind, dtype=np.uint8)[cols.op_np].tolist()

    comp = [-1] * n  # completion cycle; -1 = not issued yet
    base_ready = [0] * n
    pending = [0] * n
    waiters: List[Optional[List[int]]] = [None] * n
    icache_done = bytearray(n)
    dispatch_of = [0] * n
    commit_cycle = [0] * n if record_timeline else None

    # Cycle-bucketed ready queue: the bucket dict maps a cycle to the
    # seqs that become ready then; the key heap holds each *distinct*
    # pending cycle once, so time advance peeks in O(1) and a bucket
    # drain replaces per-event heap traffic with one heapify.
    # The overwhelmingly common ready cycle is `cycle + 1` (dispatch
    # with satisfied deps, single-cycle producers), so that one bucket
    # lives outside the dict as (nr_cycle, nr_list) and is drained at
    # the top of each iteration — the steady-state path then touches no
    # dict and no key heap at all. Completions need no queue either:
    # commit reads `comp` directly and time advance only ever waits on
    # the head's completion.
    ready_buckets: Dict[int, List[int]] = {}
    ready_keys: List[int] = []
    ready_now: List[int] = []  # min-heap of ready, un-issued seqs
    nr_list: List[int] = []  # the cycle+1 ready bucket, drained next iter
    deferred: List[int] = []
    heappush_ = heappush  # locals: the loop below runs per cycle
    heappop_ = heappop
    heapify_ = heapify

    events: List[MissEvent] = []
    rob_head = 0  # oldest in-flight seq; occupancy = next_dispatch - rob_head
    rob_peak = 0
    next_dispatch = 0
    frontend_ready = frontend_depth
    cycle = frontend_ready
    stall_branch = -1  # seq of the blocking mispredict, -1 = none
    window_occ = 0
    last_commit_cycle = 0

    while rob_head < n:
        nxt = cycle + 1

        # --- drain the next-cycle ready bucket ---------------------------
        # Entries were filed at some earlier cycle c with key c+1 <= the
        # current cycle, so they are always due here; moving them into
        # the issue pool at the iteration top (the scalar core does it
        # in its wakeup phase) is equivalent because nothing in between
        # reads the pool.
        if nr_list:
            if ready_now:
                for seq in nr_list:
                    heappush_(ready_now, seq)
                nr_list = []
            else:
                ready_now = nr_list
                heapify_(ready_now)
                nr_list = []

        # --- commit (in-order commit count == rob_head) -------------------
        # Guard on the head's completion first: cycles that commit
        # nothing (head in flight, or window empty with comp == -1)
        # skip the limit math and the scan entirely.
        done = comp[rob_head]
        if 0 <= done <= cycle:
            limit = rob_head + commit_width
            if limit > next_dispatch:
                limit = next_dispatch
            head = rob_head + 1
            while head < limit:
                done = comp[head]
                if done < 0 or done > cycle:
                    break
                head += 1
            if record_timeline:
                for seq in range(rob_head, head):
                    commit_cycle[seq] = cycle
            rob_head = head
            last_commit_cycle = cycle

        # --- dispatch ----------------------------------------------------
        if stall_branch < 0 and frontend_ready <= cycle:
            burst = rob_size - (next_dispatch - rob_head)
            if burst > dispatch_width:
                burst = dispatch_width
            remaining = n - next_dispatch
            if burst > remaining:
                burst = remaining
            dispatch_end = next_dispatch + burst
            for seq in range(next_dispatch, dispatch_end):
                lat = icache_lat[seq]
                if lat and not icache_done[seq]:
                    icache_done[seq] = 1
                    frontend_ready = cycle + lat
                    events.append(
                        ICacheMissEvent(
                            seq=seq, cycle=cycle, latency=lat, long_miss=False
                        )
                    )
                    next_dispatch = seq
                    break
                dispatch_of[seq] = cycle
                unresolved = 0
                ready_at = nxt
                for producer in prod_lists[seq]:
                    done = comp[producer]
                    if done < 0:
                        w = waiters[producer]
                        if w is None:
                            waiters[producer] = [seq]
                        else:
                            w.append(seq)
                        unresolved += 1
                    elif done > ready_at:
                        ready_at = done
                if unresolved:
                    # Only instructions with in-flight producers are
                    # ever read back through base_ready/pending (the
                    # consumer wakeup path); resolved ones go straight
                    # to a ready bucket.
                    base_ready[seq] = ready_at
                    pending[seq] = unresolved
                else:
                    if ready_at == nxt:
                        nr_list.append(seq)
                    else:
                        bucket = ready_buckets.get(ready_at)
                        if bucket is None:
                            ready_buckets[ready_at] = [seq]
                            heappush_(ready_keys, ready_at)
                        else:
                            bucket.append(seq)
                if misp[seq]:
                    stall_branch = seq
                    window_occ = seq - rob_head
                    next_dispatch = seq + 1
                    break
            else:
                next_dispatch = dispatch_end
            occupancy = next_dispatch - rob_head
            if occupancy > rob_peak:
                rob_peak = occupancy

        # --- wakeup ------------------------------------------------------
        while ready_keys and ready_keys[0] <= cycle:
            bucket = ready_buckets.pop(heappop_(ready_keys))
            if ready_now:
                for seq in bucket:
                    heappush_(ready_now, seq)
            else:
                ready_now = bucket
                heapify_(ready_now)

        # --- issue (oldest-first) ----------------------------------------
        issued = 0
        while ready_now and issued < issue_width:
            seq = heappop_(ready_now)
            if op_bind[seq]:
                code = op[seq]
                free = fu_free[code]
                # First-free beats argmin: a reservation that already
                # expired stays satisfiable forever, so replacing *any*
                # expired slot leaves the multiset of future
                # reservations — the only thing later issue decisions
                # can observe — identical to the scalar core's
                # pick-the-minimum.
                for unit in fu_scan[code]:
                    if free[unit] <= cycle:
                        free[unit] = cycle + fu_interval[code]
                        break
                else:
                    deferred.append(seq)
                    continue
            issued += 1
            done = cycle + lat_total[seq]
            comp[seq] = done
            w = waiters[seq]
            if w is not None:
                waiters[seq] = None
                for consumer in w:
                    if done > base_ready[consumer]:
                        base_ready[consumer] = done
                    pending[consumer] -= 1
                    if not pending[consumer]:
                        ready_at = base_ready[consumer]
                        if ready_at == nxt:
                            nr_list.append(consumer)
                        else:
                            bucket = ready_buckets.get(ready_at)
                            if bucket is None:
                                ready_buckets[ready_at] = [consumer]
                                heappush_(ready_keys, ready_at)
                            else:
                                bucket.append(consumer)
            if is_long[seq]:
                events.append(
                    LongDMissEvent(
                        seq=seq, cycle=dispatch_of[seq], complete_cycle=done
                    )
                )
            if stall_branch == seq:
                events.append(
                    BranchMispredictEvent(
                        seq=seq,
                        cycle=dispatch_of[seq],
                        resolve_cycle=done,
                        refill_cycles=frontend_depth,
                        window_occupancy=window_occ,
                    )
                )
                frontend_ready = done + frontend_depth
                stall_branch = -1
        if deferred:
            for seq in deferred:
                heappush_(ready_now, seq)
            del deferred[:]

        # --- advance time ------------------------------------------------
        # After the wakeup drain every candidate is >= cycle + 1, so
        # pending ready work makes cycle + 1 the minimum outright — the
        # common case exits here. The scalar core also wakes at
        # completions of non-head instructions, but those cycles are
        # provably inert (consumer wakeups were scheduled into the
        # ready queues at producer issue; FU retries ride the
        # ready_now -> cycle+1 candidate; commit only ever waits on the
        # head), so the completion candidate collapses to the head's
        # completion cycle and every *acting* cycle — hence every
        # result field — is unchanged.
        if ready_now or nr_list:
            cycle = nxt
            continue
        best = ready_keys[0] if ready_keys else -1
        if rob_head < next_dispatch:
            done = comp[rob_head]
            if done >= 0:
                candidate = done if done > nxt else nxt
                if best < 0 or candidate < best:
                    best = candidate
        if (
            next_dispatch < n
            and stall_branch < 0
            and next_dispatch - rob_head < rob_size
        ):
            candidate = frontend_ready if frontend_ready > nxt else nxt
            if best < 0 or candidate < best:
                best = candidate
        if best < 0:
            if rob_head < n:
                raise RuntimeError(
                    f"simulator deadlock at cycle {cycle}: "
                    f"{rob_head}/{n} committed"
                )
            break
        cycle = nxt if nxt > best else best

    max_fu_free = 0
    for free in fu_free:
        for value in free:
            if value > max_fu_free:
                max_fu_free = value
    # Every dispatched instruction issues exactly once, so the per-FU
    # issue counts are just the op-code histogram of the trace — no
    # per-issue counter needed in the loop.
    fu_issued = np.bincount(
        cols.op_np, minlength=len(fu.count)
    ).tolist()
    # Same reasoning collapses three of the four timeline columns:
    # dispatch_of *is* the dispatch timeline, `comp` *is* the
    # completion timeline, and issue = completion - execute latency.
    if record_timeline:
        dispatch_cycle = dispatch_of
        complete_cycle = comp
        issue_cycle = np.subtract(comp, lat_total).tolist()
    else:
        dispatch_cycle = issue_cycle = complete_cycle = None
    return KernelOutput(
        events=events,
        dispatch_cycle=dispatch_cycle,
        issue_cycle=issue_cycle,
        complete_cycle=complete_cycle,
        commit_cycle=commit_cycle,
        fu_issued=fu_issued,
        rob_peak=rob_peak,
        last_commit_cycle=last_commit_cycle,
        end_state=KernelEndState(
            resume_cycle=frontend_ready,
            last_commit_cycle=last_commit_cycle,
            max_fu_free=max_fu_free,
        ),
    )


def _assemble_result(
    output: KernelOutput, config: CoreConfig, n: int
) -> SimulationResult:
    fu_counts = {
        op_class.value: output.fu_issued[code]
        for code, op_class in enumerate(OP_CLASSES)
        if op_class in config.fu_specs
    }
    return SimulationResult(
        instructions=n,
        cycles=output.last_commit_cycle + 1,
        events=output.events,
        dispatch_cycle=output.dispatch_cycle,
        issue_cycle=output.issue_cycle,
        complete_cycle=output.complete_cycle,
        commit_cycle=output.commit_cycle,
        fu_issue_counts=fu_counts,
        rob_peak_occupancy=output.rob_peak,
        squashed_ghosts=0,
    )


class BatchedSuperscalarCore:
    """Lockstep executor for N configurations over one trace.

    Construct with the sweep's configurations, then :meth:`run` a trace
    to get one :class:`SimulationResult` per configuration, in config
    order. Trace columns are shared across all points, derived columns
    across each divergence group; configurations the kernel cannot
    model exactly (see :func:`batch_supported`) silently use the scalar
    oracle so a mixed sweep still returns uniformly exact results.
    """

    def __init__(self, configs: Sequence[CoreConfig]):
        self.configs = list(configs)
        self._plan: Optional[BatchPlan] = None

    def _plan_for(self, cols: TraceColumns) -> BatchPlan:
        plan = self._plan
        if plan is None or plan.cols is not cols:
            plan = BatchPlan(cols, self.configs)
            self._plan = plan
        return plan

    def run(self, trace: Trace) -> List[SimulationResult]:
        configs = self.configs
        if not configs:
            return []
        n = len(trace)
        if n == 0:
            return [
                SimulationResult(instructions=0, cycles=0) for _ in configs
            ]
        oracle_all = _observability_active()
        plan: Optional[BatchPlan] = None
        results: List[Optional[SimulationResult]] = [None] * len(configs)
        for index, config in enumerate(configs):
            if oracle_all or not batch_supported(config):
                results[index] = SuperscalarCore(config).run(trace)
                continue
            if plan is None:
                plan = self._plan_for(TraceColumns.build(trace))
            output = _simulate_columns(
                plan.cols,
                plan.cache_columns(index),
                plan.fu_tables(index),
                config,
                lat_total=plan.lat_column(index),
            )
            results[index] = _assemble_result(output, config, n)
        return results  # type: ignore[return-value]


def run_batch(
    trace: Trace, configs: Sequence[CoreConfig]
) -> List[SimulationResult]:
    """Simulate ``trace`` under every config in one batched call."""
    return BatchedSuperscalarCore(configs).run(trace)


__all__ = [
    "BatchPlan",
    "BatchedSuperscalarCore",
    "KernelEndState",
    "TraceColumns",
    "batch_supported",
    "run_batch",
]
