"""Vectorized trace kernels over :class:`PackedTrace` columns.

Two families live here:

* :func:`packed_statistics` — the columnar rewrite of
  :meth:`Trace.statistics`, producing a value-identical
  :class:`~repro.trace.stream.TraceStatistics` (counts and ratios come
  out of the same integer arithmetic, so even the floats match
  exactly);
* :func:`packed_critical_path_length` / :func:`packed_dataflow_ipc` —
  the dataflow-limit measures. The longest-path recurrence is a serial
  scan by construction (a chain of distance-1 dependences admits no
  parallel evaluation), so the win here comes from evaluating it over
  flat CSR integer arrays with a precomputed per-class latency table
  instead of per-record attribute walks and latency callbacks.

Shared helpers used by the predictor replay and fast-sim modules —
per-record latency columns and the op-class lookup tables — also live
here so every kernel prices instructions identically.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

#: Below this many live groups, the lockstep counter scan switches to a
#: scalar tail — per-step NumPy dispatch would cost more than int math.
_MIN_ACTIVE = 64

from repro.pipeline.config import CoreConfig
from repro.perf.packed import (
    BRANCH_CODE,
    LOAD_CODE,
    OP_CLASSES,
    PackedTrace,
)
from repro.trace.stream import TraceStatistics
from repro.util.stats import Histogram


def op_class_table(fn, dtype=np.int64) -> np.ndarray:
    """Evaluate ``fn(op_class)`` once per class into a lookup array.

    The result is indexable by the packed ``op`` column, replacing a
    per-record callback with one gather.
    """
    return np.asarray([fn(cls) for cls in OP_CLASSES], dtype=dtype)


def steady_latency_column(
    packed: PackedTrace, config: CoreConfig
) -> np.ndarray:
    """Per-record steady-state latencies, one gather + one mask.

    Matches ``FastIntervalSimulator._steady_latency``: the op class's
    functional-unit latency, plus the L1 (hit) or L2 (short-miss)
    latency for loads.
    """
    fu = op_class_table(lambda cls: config.fu_specs[cls].latency)
    lat = fu[packed.op]
    is_load = packed.op == LOAD_CODE
    short = packed.dl1_miss == 1
    lat[is_load & short] += config.l2_latency
    lat[is_load & ~short] += config.l1_latency
    return lat


def packed_statistics(packed: PackedTrace) -> TraceStatistics:
    """Columnar :meth:`Trace.statistics`; value-identical to the scalar.

    All counts are integer reductions over columns; the derived ratios
    use the same expressions as the scalar implementation, so results
    compare equal (not merely close).
    """
    n = len(packed)
    op = packed.op
    class_counts = np.bincount(op, minlength=len(OP_CLASSES))
    mix = (
        {
            OP_CLASSES[i].value: int(class_counts[i]) / n
            for i in np.flatnonzero(class_counts)
        }
        if n
        else {}
    )

    is_branch = op == BRANCH_CODE
    branch_count = int(is_branch.sum())
    taken_count = int((packed.taken & is_branch).sum())
    mispredict_count = int(((packed.mispredict == 1) & is_branch).sum())
    il1_count = int((packed.il1_miss == 1).sum())
    is_load = op == LOAD_CODE
    load_count = int(is_load.sum())
    dl1_count = int(((packed.dl1_miss == 1) & is_load).sum())
    dl2_count = int(((packed.dl2_miss == 1) & is_load).sum())

    dep_hist = Histogram()
    if len(packed.dep_data):
        values, counts = np.unique(packed.dep_data, return_counts=True)
        for value, count in zip(values.tolist(), counts.tolist()):
            dep_hist.add(value, count)

    per_ki = 1000.0 / n if n else 0.0
    return TraceStatistics(
        instruction_count=n,
        mix=mix,
        branch_count=branch_count,
        taken_fraction=taken_count / branch_count if branch_count else 0.0,
        mispredict_count=mispredict_count,
        mispredictions_per_ki=mispredict_count * per_ki,
        il1_misses_per_ki=il1_count * per_ki,
        dl1_miss_rate=dl1_count / load_count if load_count else 0.0,
        dl2_miss_rate=dl2_count / load_count if load_count else 0.0,
        mean_dependence_distance=dep_hist.mean,
        dependence_histogram=dep_hist,
    )


def packed_critical_path_length(
    packed: PackedTrace, latency_of=None
) -> int:
    """Dataflow critical path of the whole packed trace, in cycles.

    Same contract as :meth:`Trace.critical_path_length`. The recurrence
    ``finish[i] = latency[i] + max(finish[i - d])`` is evaluated over
    flat CSR lists: no record objects, no attribute lookups, and the
    latency callback collapses to an 11-entry table evaluated once.
    """
    n = len(packed)
    if not n:
        return 0
    if latency_of is None:
        lat_table = np.ones(len(OP_CLASSES), dtype=np.int64)
    else:
        lat_table = op_class_table(latency_of)
    lat = lat_table[packed.op].tolist()
    indptr = packed.dep_indptr.tolist()
    dep = packed.dep_data.tolist()
    finish = [0] * n
    longest = 0
    for i in range(n):
        start = 0
        for k in range(indptr[i], indptr[i + 1]):
            producer = i - dep[k]
            if producer >= 0:
                done = finish[producer]
                if done > start:
                    start = done
        done = start + lat[i]
        finish[i] = done
        if done > longest:
            longest = done
    return longest


def packed_dataflow_ipc(
    packed: PackedTrace, latency_of=None
) -> float:
    """Instructions per cycle at the dataflow limit (infinite window)."""
    n = len(packed)
    if not n:
        return 0.0
    length = packed_critical_path_length(packed, latency_of)
    return n / length if length else float(n)


def counter_table_scan(
    indices: np.ndarray,
    taken: np.ndarray,
    counter_bits: int = 2,
    initial: Optional[int] = None,
) -> np.ndarray:
    """Simulate a table of saturating counters over whole columns.

    ``indices[k]`` is the table entry consulted by the ``k``-th access
    (program order) and ``taken[k]`` the outcome it trains on. Returns
    the per-access predictions, bit-identical to updating one
    :class:`~repro.frontend.bimodal.SaturatingCounter` per entry
    sequentially.

    Accesses to *different* entries never interact, so the scan groups
    accesses by entry (stable sort) and advances all groups in
    lockstep: step ``t`` updates element ``t`` of every group still
    that long, each step one vector operation. Once fewer than
    ``_MIN_ACTIVE`` groups remain live (a few entries hog most
    accesses — typical for pattern tables), the lockstep tail would
    degenerate into per-element NumPy calls, so the survivors finish in
    a scalar integer loop instead. Total work stays O(n) plus one sort.
    """
    n = len(indices)
    predictions = np.empty(n, dtype=bool)
    if not n:
        return predictions
    if initial is None:
        initial = 1 << (counter_bits - 1)  # weakly taken
    maximum = (1 << counter_bits) - 1
    threshold = 1 << (counter_bits - 1)

    order = np.argsort(indices, kind="stable")
    sorted_taken = np.asarray(taken, dtype=bool)[order]
    sorted_idx = np.asarray(indices)[order]
    is_start = np.empty(n, dtype=bool)
    is_start[0] = True
    np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=is_start[1:])
    group_starts = np.flatnonzero(is_start)
    group_sizes = np.diff(np.append(group_starts, n))

    # Largest groups first: the active set at step t is then a prefix.
    by_size = np.argsort(-group_sizes, kind="stable")
    starts_desc = group_starts[by_size]
    sizes_desc = group_sizes[by_size]

    # Lockstep while at least _MIN_ACTIVE groups still have elements:
    # active(t) >= k  iff  the k-th largest group is longer than t.
    group_count = len(starts_desc)
    if group_count >= _MIN_ACTIVE:
        lockstep_steps = int(sizes_desc[_MIN_ACTIVE - 1])
    else:
        lockstep_steps = 0

    states = np.full(group_count, initial, dtype=np.int64)
    sorted_predictions = np.empty(n, dtype=bool)
    for step in range(lockstep_steps):
        active = int(np.searchsorted(-sizes_desc, -step, side="left"))
        slots = starts_desc[:active] + step
        outcome = sorted_taken[slots]
        state = states[:active]
        sorted_predictions[slots] = state >= threshold
        states[:active] = np.where(
            outcome,
            np.minimum(state + 1, maximum),
            np.maximum(state - 1, 0),
        )

    # Scalar tail for the few groups longer than the lockstep phase.
    tail_groups = int(
        np.searchsorted(-sizes_desc, -lockstep_steps, side="left")
    )
    if tail_groups:
        taken_list = sorted_taken.tolist()
        pred_tail: List[bool] = []
        slot_tail: List[int] = []
        for g in range(tail_groups):
            base = int(starts_desc[g])
            state = int(states[g])
            for slot in range(base + lockstep_steps, base + int(sizes_desc[g])):
                pred_tail.append(state >= threshold)
                if taken_list[slot]:
                    if state < maximum:
                        state += 1
                elif state > 0:
                    state -= 1
                slot_tail.append(slot)
        sorted_predictions[slot_tail] = pred_tail
    predictions[order] = sorted_predictions
    return predictions
