"""Whole-column predictor replay for bimodal / gshare / local.

Replays a packed trace's conditional-branch stream through a direction
predictor without instantiating one: the per-branch table indices are
computed as columns, and :func:`repro.perf.kernels.counter_table_scan`
advances all saturating counters in lockstep. The resulting
prediction/misprediction bitstreams are identical — bit for bit — to
feeding the same branches through the scalar
:class:`~repro.frontend.bimodal.BimodalPredictor`,
:class:`~repro.frontend.gshare.GSharePredictor`, or
:class:`~repro.frontend.local.LocalPredictor` one
``predict_and_update`` call at a time (the property suite asserts
this).

History reconstruction notes:

* gshare's global register after ``k`` branches is the last
  ``history_bits`` outcomes with the most recent in bit 0:
  ``hist[k] = sum(taken[k-j] << (j-1) for j = 1..history_bits)``.
  That is ``history_bits`` shifted ORs over the outcome column —
  no sequential scan.
* the local predictor's per-branch registers evolve the same way but
  *within* each history-table entry; a stable sort by entry makes each
  register's accesses contiguous so the same shifted-OR trick applies
  with shifts clipped at group boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs import runtime as _obs
from repro.perf.kernels import counter_table_scan
from repro.perf.packed import BRANCH_CODE, PackedTrace


@dataclass
class ReplayResult:
    """Outcome of one vectorized predictor replay."""

    predictor: str
    branch_count: int
    predictions: np.ndarray = field(repr=False)
    taken: np.ndarray = field(repr=False)

    @property
    def correct(self) -> np.ndarray:
        """Per-branch "prediction was correct" bits, program order."""
        return self.predictions == self.taken

    @property
    def mispredicted(self) -> np.ndarray:
        """Per-branch misprediction bits, program order."""
        return self.predictions != self.taken

    @property
    def mispredict_count(self) -> int:
        return int(self.mispredicted.sum())

    @property
    def accuracy(self) -> float:
        if not self.branch_count:
            return 1.0
        return (self.branch_count - self.mispredict_count) / self.branch_count

    @property
    def mispredict_rate(self) -> float:
        return 1.0 - self.accuracy


def branch_columns(packed: PackedTrace):
    """(pc, taken) columns of the conditional branches, program order."""
    mask = packed.op == BRANCH_CODE
    return (
        packed.pc[mask].astype(np.int64),
        packed.taken[mask].astype(bool),
    )


def _global_history_column(
    taken: np.ndarray, history_bits: int
) -> np.ndarray:
    """gshare's history register value *before* each branch trains it."""
    n = len(taken)
    hist = np.zeros(n, dtype=np.int64)
    bits = taken.astype(np.int64)
    for j in range(1, min(history_bits, n) + 1):
        hist[j:] |= bits[:-j] << (j - 1)
    return hist


def replay_bimodal(
    packed: PackedTrace, entries: int = 4096, counter_bits: int = 2
) -> ReplayResult:
    """Vectorized :class:`~repro.frontend.bimodal.BimodalPredictor`."""
    pc, taken = branch_columns(packed)
    indices = (pc >> 2) & (entries - 1)
    predictions = counter_table_scan(indices, taken, counter_bits)
    return _result("bimodal", predictions, taken)


def replay_gshare(
    packed: PackedTrace,
    entries: int = 4096,
    history_bits: int = 12,
    counter_bits: int = 2,
) -> ReplayResult:
    """Vectorized :class:`~repro.frontend.gshare.GSharePredictor`."""
    pc, taken = branch_columns(packed)
    hist = _global_history_column(taken, history_bits)
    indices = ((pc >> 2) ^ hist) & (entries - 1)
    predictions = counter_table_scan(indices, taken, counter_bits)
    return _result("gshare", predictions, taken)


def replay_local(
    packed: PackedTrace,
    history_entries: int = 1024,
    history_bits: int = 10,
    pattern_entries: int = 1024,
    counter_bits: int = 2,
) -> ReplayResult:
    """Vectorized :class:`~repro.frontend.local.LocalPredictor`."""
    pc, taken = branch_columns(packed)
    n = len(pc)
    h_index = (pc >> 2) & (history_entries - 1)

    # Per-entry history registers: group accesses by history-table
    # entry (stable sort keeps program order within each entry), then
    # build each register with shifted ORs clipped at group starts.
    order = np.argsort(h_index, kind="stable")
    sorted_taken = taken[order].astype(np.int64)
    sorted_idx = h_index[order]
    hist_sorted = np.zeros(n, dtype=np.int64)
    if n:
        is_start = np.empty(n, dtype=bool)
        is_start[0] = True
        np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=is_start[1:])
        group_starts = np.flatnonzero(is_start)
        start_of = np.repeat(
            group_starts, np.diff(np.append(group_starts, n))
        )
        pos_in_group = np.arange(n, dtype=np.int64) - start_of
        for j in range(1, min(history_bits, n) + 1):
            same_group = pos_in_group[j:] >= j
            hist_sorted[j:] |= (sorted_taken[:-j] * same_group) << (j - 1)
    history = np.empty(n, dtype=np.int64)
    history[order] = hist_sorted

    pattern_idx = history & (pattern_entries - 1)
    predictions = counter_table_scan(pattern_idx, taken, counter_bits)
    return _result("local", predictions, taken)


_REPLAYERS = {
    "bimodal": replay_bimodal,
    "gshare": replay_gshare,
    "local": replay_local,
}


def replay(packed: PackedTrace, predictor: str, **params) -> ReplayResult:
    """Replay the packed trace's branches through a named predictor."""
    try:
        fn = _REPLAYERS[predictor]
    except KeyError:
        raise ValueError(
            f"unknown predictor {predictor!r}; "
            f"choose from {sorted(_REPLAYERS)}"
        ) from None
    return fn(packed, **params)


def _result(
    name: str, predictions: np.ndarray, taken: np.ndarray
) -> ReplayResult:
    result = ReplayResult(
        predictor=name,
        branch_count=len(taken),
        predictions=predictions,
        taken=taken,
    )
    metrics = _obs.current_metrics()
    if metrics is not None:
        metrics.counter("perf.replay_branches_total").inc(result.branch_count)
        metrics.counter("perf.replay_mispredicts_total").inc(
            result.mispredict_count
        )
    return result
