"""Two-level cache hierarchy: split L1I/L1D over a unified L2 + memory.

The hierarchy classifies every data access into the categories interval
analysis cares about:

* ``L1_HIT`` — no impact on interval behaviour;
* ``SHORT`` — L1 miss that hits in L2 (contributor C5: inflates branch
  resolution time but is *not* a miss event);
* ``LONG`` — L2 miss served by memory (a miss event in its own right).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.memory.cache import Cache
from repro.memory.main_memory import MainMemory
from repro.obs import runtime as _obs
from repro.util.validation import check_positive


class MissClass(enum.Enum):
    """Interval-analysis classification of a data access."""

    L1_HIT = "l1_hit"
    SHORT = "short"  # L1 miss, L2 hit
    LONG = "long"  # L2 miss (a miss event)


@dataclass(frozen=True)
class DataAccessOutcome:
    """Result of one data access through the hierarchy."""

    miss_class: MissClass
    latency: int


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latencies of the memory hierarchy (paper baseline)."""

    l1i_size: int = 64 * 1024
    l1i_ways: int = 2
    l1d_size: int = 64 * 1024
    l1d_ways: int = 2
    l2_size: int = 1024 * 1024
    l2_ways: int = 8
    line_bytes: int = 64
    l1_latency: int = 2
    l2_latency: int = 10
    memory_latency: int = 250
    policy: str = "lru"

    def __post_init__(self) -> None:
        check_positive("l1_latency", self.l1_latency)
        check_positive("l2_latency", self.l2_latency)
        check_positive("memory_latency", self.memory_latency)
        if not self.l1_latency < self.l2_latency < self.memory_latency:
            raise ValueError(
                "latencies must satisfy L1 < L2 < memory, got "
                f"{self.l1_latency}/{self.l2_latency}/{self.memory_latency}"
            )


class CacheHierarchy:
    """Split L1s over a unified L2 backed by main memory."""

    def __init__(self, config: HierarchyConfig = HierarchyConfig(), seed: int = 0):
        self.config = config
        self.l1i = Cache(
            config.l1i_size,
            config.l1i_ways,
            config.line_bytes,
            policy=config.policy,
            name="L1I",
            seed=seed,
        )
        self.l1d = Cache(
            config.l1d_size,
            config.l1d_ways,
            config.line_bytes,
            policy=config.policy,
            name="L1D",
            seed=seed + 1,
        )
        self.l2 = Cache(
            config.l2_size,
            config.l2_ways,
            config.line_bytes,
            policy=config.policy,
            name="L2",
            seed=seed + 2,
        )
        self.memory = MainMemory(config.memory_latency)

    @staticmethod
    def _observe(outcome: DataAccessOutcome) -> DataAccessOutcome:
        metrics = _obs.current_metrics()
        if metrics is not None:
            metrics.counter("memory.accesses_total").inc()
            if outcome.miss_class is MissClass.L1_HIT:
                metrics.counter("memory.l1_hits_total").inc()
            elif outcome.miss_class is MissClass.SHORT:
                metrics.counter("memory.short_misses_total").inc()
            else:
                metrics.counter("memory.long_misses_total").inc()
        return outcome

    def access_instruction(self, pc: int) -> DataAccessOutcome:
        """Fetch-side access: L1I, then L2, then memory.

        An L1I miss (whether it hits L2 or not) is the paper's I-cache
        miss event; the latency distinguishes how long the frontend
        stalls.
        """
        config = self.config
        if self.l1i.access(pc).hit:
            return self._observe(DataAccessOutcome(MissClass.L1_HIT, config.l1_latency))
        if self.l2.access(pc).hit:
            return self._observe(DataAccessOutcome(MissClass.SHORT, config.l2_latency))
        self.memory.read(pc)
        return self._observe(DataAccessOutcome(MissClass.LONG, config.memory_latency))

    def access_data(
        self, address: int, is_write: bool = False, pc: int = 0
    ) -> DataAccessOutcome:
        """Data-side access: L1D, then L2, then memory.

        ``pc`` is accepted (and ignored) so prefetching adapters that
        train on the accessing instruction's PC share the interface.
        """
        config = self.config
        l1_result = self.l1d.access(address, is_write=is_write)
        if l1_result.writeback:
            # Dirty victim written back into L2 (no extra latency charged:
            # writebacks are off the load's critical path).
            victim_writeback = self.l2.access(
                l1_result.evicted_address, is_write=True
            )
            if victim_writeback.writeback:
                self.memory.write(victim_writeback.evicted_address)
        if l1_result.hit:
            return self._observe(DataAccessOutcome(MissClass.L1_HIT, config.l1_latency))
        l2_result = self.l2.access(address, is_write=is_write)
        if l2_result.writeback:
            self.memory.write(address)
        if l2_result.hit:
            return self._observe(DataAccessOutcome(MissClass.SHORT, config.l2_latency))
        self.memory.read(address)
        return self._observe(DataAccessOutcome(MissClass.LONG, config.memory_latency))

    def miss_rates(self) -> dict:
        """Convenience summary of per-level miss rates."""
        return {
            "l1i": self.l1i.stats.miss_rate,
            "l1d": self.l1d.stats.miss_rate,
            "l2": self.l2.stats.miss_rate,
        }
