"""Cache hierarchy substrate.

A generic set-associative :class:`Cache` with pluggable replacement
policies, composed by :class:`CacheHierarchy` into the paper's memory
system: split L1I/L1D backed by a unified L2 and a fixed-latency main
memory. The hierarchy classifies each data access as an L1 hit, a
*short* miss (L1 miss, L2 hit — contributor C5) or a *long* miss
(L2 miss — a miss event in interval analysis).
"""

from repro.memory.replacement import (
    FIFOPolicy,
    LRUPolicy,
    PLRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
    make_policy,
)
from repro.memory.cache import AccessResult, Cache, CacheStats
from repro.memory.main_memory import MainMemory
from repro.memory.hierarchy import (
    CacheHierarchy,
    DataAccessOutcome,
    HierarchyConfig,
    MissClass,
)
from repro.memory.prefetch import (
    NextLinePrefetcher,
    PrefetchingHierarchyAdapter,
    PrefetchStats,
    StridePrefetcher,
)

__all__ = [
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PLRUPolicy",
    "make_policy",
    "Cache",
    "CacheStats",
    "AccessResult",
    "MainMemory",
    "CacheHierarchy",
    "HierarchyConfig",
    "DataAccessOutcome",
    "MissClass",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "PrefetchingHierarchyAdapter",
    "PrefetchStats",
]
