"""Generic set-associative cache with write-back, write-allocate policy."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.memory.replacement import ReplacementPolicy, make_policy
from repro.util.validation import check_positive, check_power_of_two


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        return 1.0 - self.miss_rate


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one cache access.

    ``evicted_address`` is the line-aligned byte address of the victim
    line, when one was evicted.
    """

    hit: bool
    evicted_address: Optional[int] = None
    writeback: bool = False


class Cache:
    """One level of a set-associative cache.

    Addresses are byte addresses; the cache operates on lines of
    ``line_bytes``. Write policy is write-back + write-allocate: a
    store miss fills the line and marks it dirty; evicting a dirty line
    counts a writeback.
    """

    def __init__(
        self,
        size_bytes: int,
        ways: int,
        line_bytes: int = 64,
        policy: str = "lru",
        name: str = "cache",
        seed: int = 0,
    ):
        check_positive("size_bytes", size_bytes)
        check_positive("ways", ways)
        check_power_of_two("line_bytes", line_bytes)
        if size_bytes % (ways * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_bytes})"
            )
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_bytes = line_bytes
        self.sets = size_bytes // (ways * line_bytes)
        check_power_of_two("sets", self.sets)
        self.name = name
        self.policy: ReplacementPolicy = make_policy(
            policy, self.sets, ways, seed=seed
        )
        self.stats = CacheStats()
        self._line_shift = line_bytes.bit_length() - 1
        self._set_mask = self.sets - 1
        self._tags: List[List[Optional[int]]] = [
            [None] * ways for _ in range(self.sets)
        ]
        self._dirty: List[List[bool]] = [[False] * ways for _ in range(self.sets)]

    def _decompose(self, address: int):
        line = address >> self._line_shift
        return line & self._set_mask, line >> self.sets.bit_length() - 1

    def _compose(self, set_index: int, tag: int) -> int:
        """Rebuild the line-aligned byte address from (set, tag)."""
        set_bits = self.sets.bit_length() - 1
        return ((tag << set_bits) | set_index) << self._line_shift

    def lookup(self, address: int) -> bool:
        """Probe without side effects (no stats, no replacement update)."""
        set_index, tag = self._decompose(address)
        return tag in self._tags[set_index]

    def access(self, address: int, is_write: bool = False) -> AccessResult:
        """Access one address; fills on miss; returns the outcome."""
        set_index, tag = self._decompose(address)
        tags = self._tags[set_index]
        dirty = self._dirty[set_index]
        self.stats.accesses += 1

        if tag in tags:
            way = tags.index(tag)
            self.stats.hits += 1
            self.policy.on_access(set_index, way)
            if is_write:
                dirty[way] = True
            return AccessResult(hit=True)

        self.stats.misses += 1
        evicted_address = None
        writeback = False
        if None in tags:
            way = tags.index(None)
        else:
            way = self.policy.victim_way(set_index)
            evicted_tag = tags[way]
            evicted_address = self._compose(set_index, evicted_tag)
            writeback = dirty[way]
            self.stats.evictions += 1
            if writeback:
                self.stats.writebacks += 1
        tags[way] = tag
        dirty[way] = is_write
        self.policy.on_fill(set_index, way)
        return AccessResult(
            hit=False, evicted_address=evicted_address, writeback=writeback
        )

    def invalidate(self, address: int) -> bool:
        """Drop the line containing ``address``; True if it was present."""
        set_index, tag = self._decompose(address)
        tags = self._tags[set_index]
        if tag in tags:
            way = tags.index(tag)
            tags[way] = None
            self._dirty[set_index][way] = False
            return True
        return False

    def flush(self) -> None:
        """Invalidate the entire cache (stats are preserved)."""
        for set_index in range(self.sets):
            self._tags[set_index] = [None] * self.ways
            self._dirty[set_index] = [False] * self.ways

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(
            sum(tag is not None for tag in tags) for tags in self._tags
        )

    def resident_lines(self) -> List[int]:
        """Line addresses of all resident lines (for inclusion tests)."""
        lines = []
        set_bits = self.sets.bit_length() - 1
        for set_index, tags in enumerate(self._tags):
            for tag in tags:
                if tag is not None:
                    lines.append(((tag << set_bits) | set_index) << self._line_shift)
        return lines
