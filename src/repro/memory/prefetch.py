"""Hardware prefetchers: next-line (I-side) and PC-indexed stride (D-side).

Prefetching changes interval behaviour in a way the paper's framework
predicts cleanly: a prefetch that converts a would-be miss into a hit
*removes a miss event*, lengthening inter-miss intervals; mistimed or
useless prefetches pollute the cache. The hierarchy integration keeps
the model simple — a prefetch moves a line into the target cache
immediately (no bandwidth/timeliness model), so the measured effect is
an upper bound, which is the right comparison point for interval
studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.memory.cache import Cache
from repro.util.validation import check_positive, check_power_of_two


@dataclass
class PrefetchStats:
    """Issue/use accounting for one prefetcher."""

    issued: int = 0
    useful: int = 0  # prefetched lines that were later demanded

    @property
    def accuracy(self) -> float:
        if not self.issued:
            return 0.0
        return self.useful / self.issued


class NextLinePrefetcher:
    """On a demand access to line L, prefetch lines L+1..L+degree.

    The classic instruction-side prefetcher: sequential fetch makes the
    next line overwhelmingly likely to be needed.
    """

    def __init__(self, cache: Cache, degree: int = 1):
        check_positive("degree", degree)
        self.cache = cache
        self.degree = degree
        self.stats = PrefetchStats()
        self._outstanding: set = set()

    def on_demand_access(self, address: int, hit: bool) -> List[int]:
        """Notify of a demand access; returns prefetched line addresses."""
        line_bytes = self.cache.line_bytes
        line = address - address % line_bytes
        if line in self._outstanding:
            self.stats.useful += 1
            self._outstanding.discard(line)
        issued = []
        for i in range(1, self.degree + 1):
            target = line + i * line_bytes
            if not self.cache.lookup(target):
                self.cache.access(target)
                self.stats.issued += 1
                self._outstanding.add(target)
                issued.append(target)
        return issued


class StridePrefetcher:
    """PC-indexed stride table (reference prediction table).

    Each load PC gets an entry tracking its last address and stride; two
    consecutive equal strides arm the entry, after which each access
    prefetches ``address + stride * (1..degree)``.
    """

    def __init__(self, cache: Cache, entries: int = 256, degree: int = 2):
        check_power_of_two("entries", entries)
        check_positive("degree", degree)
        self.cache = cache
        self.entries = entries
        self.degree = degree
        self.stats = PrefetchStats()
        self._table: Dict[int, List[int]] = {}  # pc_idx -> [last, stride, conf]
        self._outstanding: set = set()

    def _slot(self, pc: int) -> int:
        return (pc >> 2) & (self.entries - 1)

    def on_demand_access(self, pc: int, address: int, hit: bool) -> List[int]:
        """Train on a demand access; returns prefetched line addresses."""
        line_bytes = self.cache.line_bytes
        line = address - address % line_bytes
        if line in self._outstanding:
            self.stats.useful += 1
            self._outstanding.discard(line)

        slot = self._slot(pc)
        entry = self._table.get(slot)
        issued: List[int] = []
        if entry is None:
            self._table[slot] = [address, 0, 0]
            return issued
        last, stride, confidence = entry
        new_stride = address - last
        if new_stride == stride and stride != 0:
            confidence = min(confidence + 1, 3)
        else:
            confidence = 0
        self._table[slot] = [address, new_stride, confidence]
        if confidence >= 2:
            for i in range(1, self.degree + 1):
                target_line = (
                    address + new_stride * i
                ) // line_bytes * line_bytes
                if target_line >= 0 and not self.cache.lookup(target_line):
                    self.cache.access(target_line)
                    self.stats.issued += 1
                    self._outstanding.add(target_line)
                    issued.append(target_line)
        return issued


class PrefetchingHierarchyAdapter:
    """Wraps a :class:`~repro.memory.hierarchy.CacheHierarchy` with an
    optional next-line I-prefetcher and stride D-prefetcher.

    Exposes the same ``access_instruction`` / ``access_data`` interface
    so it drops into :class:`~repro.pipeline.annotate.StructuralAnnotator`.
    """

    def __init__(
        self,
        hierarchy,
        instruction_prefetcher: Optional[NextLinePrefetcher] = None,
        data_prefetcher: Optional[StridePrefetcher] = None,
    ):
        self.hierarchy = hierarchy
        self.config = hierarchy.config
        self.instruction_prefetcher = instruction_prefetcher
        self.data_prefetcher = data_prefetcher

    @property
    def l1i(self):
        return self.hierarchy.l1i

    @property
    def l1d(self):
        return self.hierarchy.l1d

    @property
    def l2(self):
        return self.hierarchy.l2

    @property
    def memory(self):
        return self.hierarchy.memory

    def access_instruction(self, pc: int):
        outcome = self.hierarchy.access_instruction(pc)
        if self.instruction_prefetcher is not None:
            self.instruction_prefetcher.on_demand_access(
                pc, outcome.miss_class.value == "l1_hit"
            )
        return outcome

    def access_data(self, address: int, is_write: bool = False, pc: int = 0):
        outcome = self.hierarchy.access_data(address, is_write=is_write)
        if self.data_prefetcher is not None and not is_write:
            self.data_prefetcher.on_demand_access(
                pc, address, outcome.miss_class.value == "l1_hit"
            )
        return outcome

    def miss_rates(self) -> dict:
        return self.hierarchy.miss_rates()
