"""Fixed-latency main memory model."""

from __future__ import annotations

from repro.util.validation import check_positive


class MainMemory:
    """DRAM stand-in: constant access latency, access counting.

    The paper's analysis treats memory as a fixed long latency (the
    defining property of a *long* D-cache miss); bandwidth and bank
    contention are second-order for interval behaviour and are not
    modelled.
    """

    def __init__(self, latency: int = 250):
        check_positive("latency", latency)
        self.latency = latency
        self.reads = 0
        self.writes = 0

    def read(self, address: int) -> int:
        """Account a read; returns the access latency in cycles."""
        self.reads += 1
        return self.latency

    def write(self, address: int) -> int:
        """Account a write (e.g. a writeback); returns the latency."""
        self.writes += 1
        return self.latency

    @property
    def accesses(self) -> int:
        return self.reads + self.writes
