"""Replacement policies for set-associative caches.

A policy instance is owned by one cache and keeps whatever per-set
metadata it needs. The cache calls :meth:`on_access` for every hit,
:meth:`on_fill` when a line is installed, and :meth:`victim_way` when a
set is full and a way must be evicted.
"""

from __future__ import annotations

import abc
from typing import List

from repro.util.rng import SplitMix


class ReplacementPolicy(abc.ABC):
    """Interface between a cache and its replacement state."""

    name = "abstract"

    def __init__(self, sets: int, ways: int):
        if sets < 1 or ways < 1:
            raise ValueError(f"bad geometry: {sets} sets x {ways} ways")
        self.sets = sets
        self.ways = ways

    @abc.abstractmethod
    def on_access(self, set_index: int, way: int) -> None:
        """A hit touched ``way`` of ``set_index``."""

    @abc.abstractmethod
    def on_fill(self, set_index: int, way: int) -> None:
        """A new line was installed into ``way`` of ``set_index``."""

    @abc.abstractmethod
    def victim_way(self, set_index: int) -> int:
        """Choose the way to evict from a full set."""


class LRUPolicy(ReplacementPolicy):
    """True least-recently-used via per-set recency stacks."""

    name = "lru"

    def __init__(self, sets: int, ways: int):
        super().__init__(sets, ways)
        # Most-recent last. Starts in way order (way 0 is evicted first).
        self._stacks: List[List[int]] = [list(range(ways)) for _ in range(sets)]

    def on_access(self, set_index: int, way: int) -> None:
        stack = self._stacks[set_index]
        stack.remove(way)
        stack.append(way)

    def on_fill(self, set_index: int, way: int) -> None:
        self.on_access(set_index, way)

    def victim_way(self, set_index: int) -> int:
        return self._stacks[set_index][0]


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: evicts the oldest fill regardless of reuse."""

    name = "fifo"

    def __init__(self, sets: int, ways: int):
        super().__init__(sets, ways)
        self._queues: List[List[int]] = [list(range(ways)) for _ in range(sets)]

    def on_access(self, set_index: int, way: int) -> None:
        pass  # hits do not reorder a FIFO

    def on_fill(self, set_index: int, way: int) -> None:
        queue = self._queues[set_index]
        queue.remove(way)
        queue.append(way)

    def victim_way(self, set_index: int) -> int:
        return self._queues[set_index][0]


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection (deterministic via seed)."""

    name = "random"

    def __init__(self, sets: int, ways: int, seed: int = 0):
        super().__init__(sets, ways)
        self._rng = SplitMix(seed)

    def on_access(self, set_index: int, way: int) -> None:
        pass

    def on_fill(self, set_index: int, way: int) -> None:
        pass

    def victim_way(self, set_index: int) -> int:
        return self._rng.randint(0, self.ways - 1)


class PLRUPolicy(ReplacementPolicy):
    """Tree pseudo-LRU; requires a power-of-two way count.

    A binary tree of direction bits per set: each access flips the bits
    on its path to point *away* from the accessed way; the victim is
    found by following the bits.
    """

    name = "plru"

    def __init__(self, sets: int, ways: int):
        super().__init__(sets, ways)
        if ways & (ways - 1):
            raise ValueError(f"PLRU requires power-of-two ways, got {ways}")
        self._levels = ways.bit_length() - 1
        self._trees: List[List[bool]] = [
            [False] * max(ways - 1, 1) for _ in range(sets)
        ]

    def _touch(self, set_index: int, way: int) -> None:
        if self.ways == 1:
            return
        tree = self._trees[set_index]
        node = 0
        span = self.ways
        while span > 1:
            half = span // 2
            go_right = way % span >= half
            tree[node] = not go_right  # point away from the touched half
            node = 2 * node + (2 if go_right else 1)
            span = half

    def on_access(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def on_fill(self, set_index: int, way: int) -> None:
        self._touch(set_index, way)

    def victim_way(self, set_index: int) -> int:
        if self.ways == 1:
            return 0
        tree = self._trees[set_index]
        node = 0
        way = 0
        span = self.ways
        while span > 1:
            half = span // 2
            go_right = tree[node]
            node = 2 * node + (2 if go_right else 1)
            if go_right:
                way += half
            span = half
        return way


_POLICIES = {
    "lru": LRUPolicy,
    "fifo": FIFOPolicy,
    "random": RandomPolicy,
    "plru": PLRUPolicy,
}


def make_policy(name: str, sets: int, ways: int, seed: int = 0) -> ReplacementPolicy:
    """Construct a policy by name (``lru``/``fifo``/``random``/``plru``)."""
    try:
        cls = _POLICIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(_POLICIES)}"
        ) from None
    if cls is RandomPolicy:
        return cls(sets, ways, seed=seed)
    return cls(sets, ways)
