"""Deterministic fault injection: every degradation path, on demand.

The lab's retry, quarantine, and degradation machinery only earns trust
if it can be *exercised*, reproducibly, in unit tests. This module
turns "what if the disk corrupts an object" and "what if a worker gets
OOM-killed" into a seeded plan string::

    REPRO_FAULTS="seed=2006;store.read:corrupt@2;pool.worker:kill@3"

Activation mirrors the sanitizer/obs ambient pattern: a forced plan
(:func:`enable`, used by tests and the CLI) wins over the
``REPRO_FAULTS`` environment variable, and enabling exports the spec to
the environment so lab pool workers inherit it. When neither is set,
:func:`fault_point` is a dict lookup plus a ``None`` check — the <1%
overhead budget on ``bench_lab_throughput``.

Grammar (clauses separated by ``;``)::

    spec    := clause (";" clause)*
    clause  := "seed=" INT | site ":" action ["@" INT] ["x" (INT | "*")]
    site    := "store.write" | "store.read" | "pool.worker"
             | "job.execute" | "cache.npz" | "serve.admit"
    action  := "raise" | "corrupt" | "kill" | "stop"
             | "delay(" FLOAT ")"

``@N`` arms the rule at the N-th hit of its site (1-based, default 1);
``xM`` keeps it armed for M consecutive hits (default 1, ``x*`` =
forever). Hit counters are per-process, so a plan is deterministic
given a deterministic sequence of site hits — which seeded simulations
provide.

Actions:

- ``raise`` — raise :class:`InjectedFault` (an ordinary ``Exception``,
  so the lab's error capture records it like any real failure);
- ``corrupt`` — deterministically flip bytes in the payload passing
  through the site (seeded by plan seed, site, and hit index); sites
  that carry no payload treat it as ``raise``;
- ``delay(s)`` — sleep ``s`` seconds (hang simulation; pair with the
  pool watchdog);
- ``kill`` — ``SIGKILL`` the current process (worker-death simulation;
  only honoured at the ``pool.worker`` site inside marked worker
  processes so a stray plan can never kill a test runner or the
  coordinator);
- ``stop`` — ``SIGSTOP`` the current process (hard-hang simulation:
  every thread freezes, including the worker's heartbeat pulse, so the
  watchdog sees a truly stale heartbeat; same worker-only gating as
  ``kill``, and it degrades to ``raise`` where ``SIGSTOP`` does not
  exist).
"""

from __future__ import annotations

import os
import re
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.util.rng import SplitMix, derive_seed

ENV_VAR = "REPRO_FAULTS"

#: The named injection sites wired into the codebase.
SITES: Tuple[str, ...] = (
    "store.write",
    "store.read",
    "pool.worker",
    "job.execute",
    "cache.npz",
    "serve.admit",
)

ACTIONS: Tuple[str, ...] = ("raise", "corrupt", "delay", "kill", "stop")

#: Forever marker for ``count``.
FOREVER = -1

_DELAY_RE = re.compile(r"^delay\((?P<seconds>[0-9.eE+-]+)\)$")


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec string failed to parse."""


class InjectedFault(RuntimeError):
    """The exception an armed ``raise``/``corrupt``-without-payload
    rule throws at its site."""

    def __init__(self, site: str, hit: int, detail: str = "") -> None:
        self.site = site
        self.hit = hit
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"injected fault at {site} (hit {hit}){suffix}"
        )


@dataclass(frozen=True)
class FaultRule:
    """One armed rule: which site, what to do, when."""

    site: str
    action: str
    at_hit: int = 1
    count: int = 1  # FOREVER = every hit from at_hit on
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; one of {', '.join(SITES)}"
            )
        if self.action not in ACTIONS:
            raise FaultSpecError(
                f"unknown fault action {self.action!r}; "
                f"one of {', '.join(ACTIONS)}"
            )
        if self.at_hit < 1:
            raise FaultSpecError("@N must be >= 1 (hits are 1-based)")
        if self.count != FOREVER and self.count < 1:
            raise FaultSpecError("xM must be >= 1 (or * for forever)")
        if self.action == "delay" and self.delay_s < 0:
            raise FaultSpecError("delay seconds must be >= 0")

    def armed_at(self, hit: int) -> bool:
        if hit < self.at_hit:
            return False
        if self.count == FOREVER:
            return True
        return hit < self.at_hit + self.count

    def render(self) -> str:
        action = (
            f"delay({self.delay_s:g})" if self.action == "delay"
            else self.action
        )
        text = f"{self.site}:{action}"
        if self.at_hit != 1:
            text += f"@{self.at_hit}"
        if self.count == FOREVER:
            text += "x*"
        elif self.count != 1:
            text += f"x{self.count}"
        return text


@dataclass
class FaultPlan:
    """A parsed spec plus this process's per-site hit counters."""

    seed: int = 2006
    rules: List[FaultRule] = field(default_factory=list)
    hits: Dict[str, int] = field(default_factory=dict)
    injected: int = 0

    def render(self) -> str:
        """Round-trippable spec string (what :func:`enable` exports)."""
        parts = [f"seed={self.seed}"]
        parts.extend(rule.render() for rule in self.rules)
        return ";".join(parts)

    def rules_for(self, site: str) -> List[FaultRule]:
        return [rule for rule in self.rules if rule.site == site]

    def corrupt_bytes(self, data: bytes, site: str, hit: int) -> bytes:
        """Deterministically damage ``data`` (always a real change)."""
        if not data:
            return b"\x00"
        rng = SplitMix(derive_seed(self.seed, "corrupt", site, hit))
        blob = bytearray(data)
        flips = max(1, min(len(blob) // 64, 16))
        for _ in range(flips):
            index = rng.randint(0, len(blob) - 1)
            # XOR with a non-zero mask so the byte always changes.
            blob[index] ^= rng.randint(1, 255)
        return bytes(blob)

    def hit(
        self,
        site: str,
        data: Optional[bytes] = None,
        allow_kill: bool = False,
    ) -> Optional[bytes]:
        """Record one hit of ``site`` and apply any armed rules.

        Returns ``data`` (possibly corrupted). Raises
        :class:`InjectedFault` for ``raise`` rules (and for ``corrupt``
        rules at payload-free sites). ``kill`` and ``stop`` rules are
        only honoured when the caller says the process is expendable
        (``allow_kill=True``, i.e. a marked pool worker); elsewhere
        they degrade to ``raise`` so a stray plan cannot take down the
        coordinator.
        """
        if site not in SITES:
            raise FaultSpecError(f"unknown fault site {site!r}")
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        for rule in self.rules:
            if rule.site != site or not rule.armed_at(hit):
                continue
            self.injected += 1
            _count_injection(site)
            if rule.action == "delay":
                time.sleep(rule.delay_s)
            elif rule.action == "corrupt":
                if data is None:
                    raise InjectedFault(site, hit, "corrupt at payload-free site")
                data = self.corrupt_bytes(data, site, hit)
            elif rule.action == "kill":
                if allow_kill:
                    os.kill(os.getpid(), signal.SIGKILL)
                raise InjectedFault(site, hit, "kill outside a worker")
            elif rule.action == "stop":
                sigstop = getattr(signal, "SIGSTOP", None)
                if allow_kill and sigstop is not None:
                    os.kill(os.getpid(), sigstop)
                    # Resumes only if something SIGCONTs us (the
                    # watchdog SIGKILLs instead); fall through benignly.
                else:
                    raise InjectedFault(site, hit, "stop outside a worker")
            else:  # "raise"
                raise InjectedFault(site, hit)
        return data


def _count_injection(site: str) -> None:
    """Count the injection through the obs metrics registry, if on."""
    from repro.obs import runtime as _obs

    metrics = _obs.current_metrics()
    if metrics is not None:
        metrics.counter("resilience.faults_injected_total").inc()


def parse_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    seed = 2006
    rules: List[FaultRule] = []
    for raw_clause in spec.split(";"):
        clause = raw_clause.strip()
        if not clause:
            continue
        if clause.startswith("seed="):
            try:
                seed = int(clause[len("seed="):], 0)
            except ValueError:
                raise FaultSpecError(
                    f"bad seed clause {clause!r}"
                ) from None
            continue
        if ":" not in clause:
            raise FaultSpecError(
                f"bad fault clause {clause!r}; expected site:action[@N][xM]"
            )
        site, rest = clause.split(":", 1)
        count = 1
        if "x" in rest:
            rest, raw_count = rest.rsplit("x", 1)
            if raw_count == "*":
                count = FOREVER
            else:
                try:
                    count = int(raw_count)
                except ValueError:
                    raise FaultSpecError(
                        f"bad repeat count {raw_count!r} in {clause!r}"
                    ) from None
        at_hit = 1
        if "@" in rest:
            rest, raw_hit = rest.rsplit("@", 1)
            try:
                at_hit = int(raw_hit)
            except ValueError:
                raise FaultSpecError(
                    f"bad hit index {raw_hit!r} in {clause!r}"
                ) from None
        action = rest.strip()
        delay_s = 0.0
        match = _DELAY_RE.match(action)
        if match:
            action = "delay"
            try:
                delay_s = float(match.group("seconds"))
            except ValueError:
                raise FaultSpecError(
                    f"bad delay seconds in {clause!r}"
                ) from None
        rules.append(
            FaultRule(
                site=site.strip(),
                action=action,
                at_hit=at_hit,
                count=count,
                delay_s=delay_s,
            )
        )
    return FaultPlan(seed=seed, rules=rules)


# -- ambient activation (mirrors analysis.sanitizer / obs.runtime) --------

_forced_plan: Optional[FaultPlan] = None
_forced_off = False
#: (spec string, parsed plan) cache so env activation keeps one plan —
#: and therefore one set of hit counters — per process.
_env_cache: Optional[Tuple[str, FaultPlan]] = None


def enable(spec_or_plan) -> FaultPlan:
    """Force-enable a fault plan and export it to worker processes."""
    global _forced_plan, _forced_off
    if isinstance(spec_or_plan, FaultPlan):
        plan = spec_or_plan
    else:
        plan = parse_spec(str(spec_or_plan))
    _forced_plan = plan
    _forced_off = False
    os.environ[ENV_VAR] = plan.render()
    return plan


def disable() -> None:
    """Force faults off for this process (env spec ignored)."""
    global _forced_plan, _forced_off
    _forced_plan = None
    _forced_off = True


def reset() -> None:
    """Drop forced state, the env switch, and the cached env plan."""
    global _forced_plan, _forced_off, _env_cache
    _forced_plan = None
    _forced_off = False
    _env_cache = None
    os.environ.pop(ENV_VAR, None)


def current_plan() -> Optional[FaultPlan]:
    """The active plan, or None when fault injection is off."""
    global _env_cache
    if _forced_plan is not None:
        return _forced_plan
    if _forced_off:
        return None
    spec = os.environ.get(ENV_VAR, "")
    if not spec.strip():
        return None
    if _env_cache is None or _env_cache[0] != spec:
        _env_cache = (spec, parse_spec(spec))
    return _env_cache[1]


def active() -> bool:
    return current_plan() is not None


def fault_point(
    site: str,
    data: Optional[bytes] = None,
    allow_kill: bool = False,
) -> Optional[bytes]:
    """The one hook injection sites call; passthrough when inactive."""
    plan = current_plan()
    if plan is None:
        return data
    return plan.hit(site, data, allow_kill=allow_kill)


class injected:
    """Context manager for tests: enable a plan, restore on exit."""

    def __init__(self, spec: str) -> None:
        self.spec = spec
        self.plan: Optional[FaultPlan] = None
        self._previous_env: Optional[str] = None

    def __enter__(self) -> FaultPlan:
        self._previous_env = os.environ.get(ENV_VAR)
        self.plan = enable(self.spec)
        return self.plan

    def __exit__(self, *exc_info) -> None:
        reset()
        if self._previous_env is not None:
            os.environ[ENV_VAR] = self._previous_env


__all__ = [
    "ACTIONS",
    "ENV_VAR",
    "FOREVER",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "SITES",
    "active",
    "current_plan",
    "disable",
    "enable",
    "fault_point",
    "injected",
    "parse_spec",
    "reset",
]
