"""Write-ahead run journal: what `--resume` reads after a crash.

Every journaled lab run appends one JSON record per state transition to
``<store root>/runs/<run_id>.journal.jsonl`` *before* acting on it
(write-ahead), through the fsync-per-record
:class:`~repro.resilience.atomic.AppendOnlyWriter`. After a SIGKILL at
any instant the journal is a complete prefix of the run's history plus
at most one torn final line, which the loader detects and drops.

Record shapes (``event`` discriminates)::

    {"event": "run_start", "run_id": ..., "salt": ..., "jobs": N}
    {"event": "queued",  "index": i, "key": ..., "label": ...}
    {"event": "started", "index": i, "key": ...}
    {"event": "done",    "index": i, "key": ..., "status": "ok"|"cached"
                                               |"resumed",
                         "payload_sha256": ..., "attempts": n}
    {"event": "failed",  "index": i, "key": ..., "error": "...",
                         "attempts": n}
    {"event": "interrupted"}           # graceful SIGINT/SIGTERM drain
    {"event": "run_end", "ok": n, "failed": n}

Resume semantics (:meth:`JournalState.classify`): a job whose latest
record is ``done`` is **complete** — its payload is fetched from the
content-addressed store (checksum-verified) and not re-run; every other
job (queued, started-but-not-done, failed, or never journaled) is
**re-queued**. Failed jobs are re-queued on purpose: a crash can
manufacture spurious failures, and re-running a deterministically
failing job reproduces the same failure anyway.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.resilience.atomic import AppendOnlyWriter, read_jsonl

JOURNAL_SUFFIX = ".journal.jsonl"


def journal_path(runs_dir: Union[str, os.PathLike], run_id: str) -> Path:
    return Path(runs_dir) / f"{run_id}{JOURNAL_SUFFIX}"


class RunJournal:
    """Appender for one run's journal (write-ahead, fsync per record)."""

    def __init__(self, runs_dir: Union[str, os.PathLike], run_id: str) -> None:
        self.run_id = run_id
        self.path = journal_path(runs_dir, run_id)
        self._writer = AppendOnlyWriter(self.path)

    def run_start(self, total_jobs: int, salt: str, resumed: bool) -> None:
        self._writer.append(
            {
                "event": "run_start",
                "run_id": self.run_id,
                "salt": salt,
                "jobs": total_jobs,
                "resumed": resumed,
            }
        )

    def queued(self, index: int, key: str, label: str) -> None:
        self._writer.append(
            {"event": "queued", "index": index, "key": key, "label": label}
        )

    def started(self, index: int, key: str) -> None:
        self._writer.append({"event": "started", "index": index, "key": key})

    def done(
        self,
        index: int,
        key: str,
        status: str,
        payload_sha256: Optional[str],
        attempts: int,
    ) -> None:
        self._writer.append(
            {
                "event": "done",
                "index": index,
                "key": key,
                "status": status,
                "payload_sha256": payload_sha256,
                "attempts": attempts,
            }
        )

    def failed(self, index: int, key: str, error: str, attempts: int) -> None:
        # Only the final line of the traceback; the manifest keeps the
        # full text, the journal just needs enough to triage.
        last = error.strip().splitlines()[-1] if error.strip() else "?"
        self._writer.append(
            {
                "event": "failed",
                "index": index,
                "key": key,
                "error": last,
                "attempts": attempts,
            }
        )

    def note(self, event: str, **fields: Any) -> None:
        """Append a free-form record (``event`` plus keyword fields).

        The serve shards use this to journal accepted request payloads
        alongside the standard lifecycle records; :class:`JournalState`
        ignores events it does not recognize, so notes never perturb
        resume classification.
        """
        record: Dict[str, Any] = {"event": event}
        record.update(fields)
        self._writer.append(record)

    def interrupted(self) -> None:
        self._writer.append({"event": "interrupted"})

    def run_end(self, ok: int, failed: int) -> None:
        self._writer.append({"event": "run_end", "ok": ok, "failed": failed})

    def close(self) -> None:
        self._writer.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass
class JournalState:
    """Parsed journal: per-key latest state, ready for resume triage."""

    run_id: Optional[str] = None
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: key -> final ``done`` record (completed jobs).
    done: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: key -> final ``failed`` record.
    failed: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: keys with a ``started`` but no terminal record (in-flight at crash).
    in_flight: List[str] = field(default_factory=list)
    #: keys only ever ``queued``.
    queued: List[str] = field(default_factory=list)
    ended: bool = False
    interrupted: bool = False

    @classmethod
    def load(cls, path: Union[str, os.PathLike]) -> "JournalState":
        state = cls()
        state.records = [
            r for r in read_jsonl(path) if isinstance(r, dict)
        ]
        started: Dict[str, bool] = {}
        queued_order: List[str] = []
        for record in state.records:
            event = record.get("event")
            key = record.get("key")
            if event == "run_start":
                state.run_id = record.get("run_id")
            elif event == "queued" and key:
                if key not in started:
                    started[key] = False
                    queued_order.append(key)
            elif event == "started" and key:
                started[key] = True
            elif event == "done" and key:
                state.done[key] = record
                state.failed.pop(key, None)
            elif event == "failed" and key:
                state.failed[key] = record
                state.done.pop(key, None)
            elif event == "interrupted":
                state.interrupted = True
            elif event == "run_end":
                state.ended = True
        for key in queued_order:
            if key in state.done or key in state.failed:
                continue
            if started.get(key):
                state.in_flight.append(key)
            else:
                state.queued.append(key)
        return state

    def classify(self, key: str) -> str:
        """``"complete"`` | ``"requeue"`` for one job key."""
        if key in self.done:
            return "complete"
        return "requeue"

    def summary(self) -> str:
        return (
            f"journal {self.run_id or '?'}: {len(self.done)} done, "
            f"{len(self.failed)} failed, {len(self.in_flight)} in-flight, "
            f"{len(self.queued)} queued"
            + (", interrupted" if self.interrupted else "")
            + (", ended" if self.ended else "")
        )


def load_journal(
    runs_dir: Union[str, os.PathLike], run_id: str
) -> Tuple[Path, JournalState]:
    """Locate and parse the journal for ``run_id`` (error if missing)."""
    path = journal_path(runs_dir, run_id)
    if not path.is_file():
        raise FileNotFoundError(
            f"no run journal {path}; was the run journaled "
            "(store-backed) and the id spelled fully?"
        )
    return path, JournalState.load(path)


def list_journals(runs_dir: Union[str, os.PathLike]) -> List[Path]:
    """Journals under ``runs_dir``, newest first."""
    base = Path(runs_dir)
    if not base.is_dir():
        return []
    return sorted(
        base.glob(f"*{JOURNAL_SUFFIX}"),
        key=lambda p: p.stat().st_mtime,
        reverse=True,
    )


__all__ = [
    "JOURNAL_SUFFIX",
    "JournalState",
    "RunJournal",
    "journal_path",
    "list_journals",
    "load_journal",
]
