"""repro.resilience — fault injection, crash-safe runs, store integrity.

The resilience subsystem makes the lab's degradation paths testable and
its long runs survivable:

- :mod:`repro.resilience.atomic` — crash-safe file primitives
  (tmp+fsync+``os.replace`` whole-file writes, fsync-per-record JSONL
  appends) every run-state file goes through (enforced by lint rule
  RES001);
- :mod:`repro.resilience.faults` — a deterministic, seeded
  fault-injection plan (``REPRO_FAULTS=...``, inherited by pool
  workers) with named sites that can raise, corrupt bytes, delay, or
  kill a worker at the N-th hit;
- :mod:`repro.resilience.journal` — the write-ahead run journal behind
  ``repro lab run --resume``;
- :mod:`repro.resilience.watchdog` — worker heartbeats and the
  parent-side hang detector the pool degrades through;
- :mod:`repro.resilience.fsck` — store integrity scanning, the
  quarantine, and ``repro lab fsck [--repair]``.

Layering note: this package's ``__init__`` only pulls in the modules
*below* ``repro.lab`` in the dependency stack, because the lab itself
imports them. :mod:`repro.resilience.fsck` sits *above* the lab (it
scans the store) and must be imported explicitly —
``from repro.resilience.fsck import fsck_store``.
"""

from repro.resilience.atomic import (
    AppendOnlyWriter,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    read_jsonl,
)
from repro.resilience.faults import (
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    fault_point,
    parse_spec,
)
from repro.resilience.journal import JournalState, RunJournal, load_journal
from repro.resilience.watchdog import (
    HeartbeatDir,
    Watchdog,
    WatchdogPolicy,
    worker_checkpoint,
)

__all__ = [
    "AppendOnlyWriter",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "HeartbeatDir",
    "InjectedFault",
    "JournalState",
    "RunJournal",
    "Watchdog",
    "WatchdogPolicy",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "fault_point",
    "load_journal",
    "parse_spec",
    "read_jsonl",
    "worker_checkpoint",
]
