"""Crash-safe file primitives for run-state files.

Every file whose loss or truncation can corrupt a run — store objects,
run manifests, journals, heartbeats — goes through this module. Two
shapes cover all of them:

- **whole-file replace** (:func:`atomic_write_bytes` and friends):
  serialize into a temp file in the *same directory*, flush, ``fsync``,
  then ``os.replace`` over the target. A crash at any instant leaves
  either the old complete file or the new complete file (plus at worst
  a stray ``.tmp-*`` that ``repro lab fsck`` sweeps up), never a torn
  one.
- **append-only log** (:class:`AppendOnlyWriter`): one JSON record per
  line, flushed and ``fsync``ed per append, so the write-ahead run
  journal survives a SIGKILL with at most the final line torn — and a
  torn final line is detectable (it fails to parse) and safely
  droppable (its job is simply re-run on resume).

Lint rule RES001 enforces that ``repro.lab`` and ``repro.resilience``
never bypass these helpers with a bare ``open(..., "w")``; this module
is the rule's one exempt file.

The module sits at the very bottom of the dependency stack (stdlib
only) so the store, telemetry, journal, and perf cache can all import
it without cycles.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator, List, Optional, Union

PathLike = Union[str, os.PathLike]


def fsync_dir(directory: PathLike) -> None:
    """Best-effort fsync of a directory entry (no-op where unsupported)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: PathLike, data: bytes, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + replace)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=str(target.parent), prefix=".tmp-", suffix=target.suffix
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    if fsync:
        fsync_dir(target.parent)
    return target


def atomic_write_text(
    path: PathLike, text: str, fsync: bool = True
) -> Path:
    """Atomically replace ``path`` with UTF-8 ``text``."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(
    path: PathLike,
    obj: Any,
    indent: Optional[int] = None,
    sort_keys: bool = False,
    fsync: bool = True,
) -> Path:
    """Atomically replace ``path`` with ``obj`` serialized as JSON.

    With ``sort_keys=True`` and no indent the encoding is canonical:
    byte-identical for equal values, which is what the merged-manifest
    resume guarantee is built on.
    """
    if indent is None:
        text = json.dumps(obj, sort_keys=sort_keys, separators=(",", ":"))
    else:
        text = json.dumps(obj, sort_keys=sort_keys, indent=indent)
    return atomic_write_text(path, text + "\n", fsync=fsync)


def canonical_json_bytes(obj: Any) -> bytes:
    """The exact bytes :func:`atomic_write_json` writes canonically."""
    return (
        json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class AppendOnlyWriter:
    """fsync-per-record JSONL appender (the write-ahead journal's pen).

    Opens lazily on first append and keeps the handle for the writer's
    lifetime; every :meth:`append` flushes and fsyncs before returning,
    so a record the caller has seen acknowledged is on disk.
    """

    def __init__(self, path: PathLike, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = fsync
        self._handle = None

    def _ensure_open(self):
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # The append-only escape hatch RES001 exists to police:
            # this class *is* the blessed helper.
            self._handle = open(  # repro: noqa[RES001]
                self.path, "a", encoding="utf-8"
            )
        return self._handle

    def append(self, record: Any) -> None:
        """Append one JSON record as a line; durable on return."""
        handle = self._ensure_open()
        handle.write(json.dumps(record, separators=(",", ":")) + "\n")
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "AppendOnlyWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_jsonl(path: PathLike) -> List[Any]:
    """Parse a JSONL file, dropping a torn (unparseable) final line.

    A torn *non*-final line means real corruption and raises; a torn
    final line is the expected signature of a crash mid-append and is
    silently discarded.
    """
    records: List[Any] = []
    try:
        with open(Path(path), "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
    except OSError:
        return records
    for lineno, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if lineno == len(lines) - 1:
                break  # torn tail from a crash mid-append
            raise
    return records


def stray_tmp_files(directory: PathLike) -> Iterator[Path]:
    """Leftover ``.tmp-*`` files from interrupted atomic writes."""
    base = Path(directory)
    if not base.is_dir():
        return
    for path in sorted(base.rglob(".tmp-*")):
        if path.is_file():
            yield path


__all__ = [
    "AppendOnlyWriter",
    "atomic_write_bytes",
    "atomic_write_json",
    "atomic_write_text",
    "canonical_json_bytes",
    "fsync_dir",
    "read_jsonl",
    "stray_tmp_files",
]
