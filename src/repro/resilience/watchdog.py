"""Heartbeat watchdog: tell a hung worker from a dead one, then degrade.

The pool's failure taxonomy has three distinct cases:

- **timeout** — one job exceeded its own ``timeout_s`` budget; the pool
  retries it within the spec's retry budget (the worker is healthy);
- **dead worker** — a worker process vanished (SIGKILL, OOM); the
  executor reports ``BrokenProcessPool`` and every in-flight job must
  be re-run;
- **hung worker** — the worker is alive but making no progress (stuck
  syscall, livelock); nothing raises, futures just never resolve.

Heartbeats separate the last two from "slow but fine": each worker
touches ``<dir>/<pid>.json`` at every job boundary (checkpoint) *and*
from a background pulse thread while a job executes
(:data:`WatchdogPolicy.worker_pulse_s`), so a single job legitimately
running longer than ``hang_s`` keeps its heartbeat fresh and is never
mistaken for a hang. The parent can therefore see *when anything last
made progress*. The :class:`Watchdog` declares a hang only when both
its own completion clock and every heartbeat have been silent for
``hang_s`` — which, with the pulse, means the worker processes
themselves are frozen (SIGSTOP, uninterruptible sleep) or gone — then
kills the stale worker pids so the run can degrade to serial
re-execution (with jittered exponential backoff between degradation
attempts — :func:`repro.util.rng.jittered_backoff_s`, seeded, no
wall-clock in the jitter).

Worker marking: :func:`mark_worker_process` runs in the executor's
initializer. It is what authorizes the ``pool.worker`` fault site's
``kill`` action — the coordinator and serial runs are never marked, so
a kill plan can only ever take down an expendable worker.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from repro.resilience import faults
from repro.resilience.atomic import atomic_write_json
from repro.util.timing import Stopwatch

#: Exported by the pool so worker processes know where to beat.
ENV_HEARTBEAT_DIR = "REPRO_HEARTBEAT_DIR"

_in_worker = False
_pulse_thread: Optional[threading.Thread] = None


def _pulse_loop(heartbeat_dir: str, pulse_s: float) -> None:
    heartbeats = HeartbeatDir(heartbeat_dir)
    while True:
        time.sleep(pulse_s)
        try:
            heartbeats.beat("pulse")
        except OSError:
            return  # heartbeat dir torn down; the run is over


def mark_worker_process(
    heartbeat_dir: Optional[str] = None,
    pulse_s: Optional[float] = None,
) -> None:
    """Executor initializer: mark this process as an expendable worker.

    With ``pulse_s`` set, a daemon thread keeps beating every
    ``pulse_s`` seconds for the worker's lifetime, so a job that simply
    runs longer than the watchdog's ``hang_s`` never reads as hung —
    only a frozen or dead process lets its heartbeat go stale.
    """
    global _in_worker, _pulse_thread
    _in_worker = True
    if heartbeat_dir:
        os.environ[ENV_HEARTBEAT_DIR] = heartbeat_dir
        HeartbeatDir(heartbeat_dir).beat("init")
        if pulse_s and (_pulse_thread is None or not _pulse_thread.is_alive()):
            _pulse_thread = threading.Thread(
                target=_pulse_loop,
                args=(heartbeat_dir, pulse_s),
                name="repro-heartbeat-pulse",
                daemon=True,
            )
            _pulse_thread.start()


def in_worker_process() -> bool:
    return _in_worker


def worker_checkpoint(label: str = "") -> None:
    """Job-boundary hook workers call: beat, then hit ``pool.worker``.

    A no-op outside marked worker processes, so serial runs and the
    coordinator neither write heartbeats nor trigger worker faults.
    """
    if not _in_worker:
        return
    raw = os.environ.get(ENV_HEARTBEAT_DIR, "").strip()
    if raw:
        HeartbeatDir(raw).beat(label)
    faults.fault_point("pool.worker", allow_kill=True)


_claims_writer = None


def claim_job(key: str) -> None:
    """Worker-side: record *this pid is now executing this key*.

    Appends one line to ``<dir>/<pid>.claims.jsonl`` — an advisory,
    pid-attributed sidecar to the shard's write-ahead journal. When a
    multi-worker shard pool breaks, the parent intersects the dead
    pid's claims with the shard's pending table to attribute in-flight
    keys to *that* worker (journaled as a ``worker-death`` note), so a
    single worker death triages only the work it was actually holding.

    Advisory means no fsync: a torn tail loses at most attribution for
    the final claim — the journal's at-least-once replay is the
    durable safety net, not this file. A no-op outside marked workers.
    """
    global _claims_writer
    if not _in_worker:
        return
    raw = os.environ.get(ENV_HEARTBEAT_DIR, "").strip()
    if not raw:
        return
    root = Path(raw)
    if not root.is_dir():
        return  # torn down by the parent; the run is over
    from repro.resilience.atomic import AppendOnlyWriter

    path = root / f"{os.getpid()}.claims.jsonl"
    if _claims_writer is None or _claims_writer.path != path:
        if _claims_writer is not None:
            _claims_writer.close()
        _claims_writer = AppendOnlyWriter(path, fsync=False)
    try:
        _claims_writer.append(
            {"pid": os.getpid(), "key": key, "at": time.time()}
        )
    except OSError:
        pass  # advisory record; never fail the job over it


def stamp_job_start(key: str) -> None:
    """Record the wall-clock instant a timed job attempt began executing.

    Worker-side half of the pool's per-job timeout clock: the parent
    arms a flight's deadline only once this stamp exists, so time a job
    spends queued behind a busy pool never counts against ``timeout_s``.
    A no-op outside marked worker processes.
    """
    if not _in_worker:
        return
    raw = os.environ.get(ENV_HEARTBEAT_DIR, "").strip()
    if raw:
        HeartbeatDir(raw).stamp_start(key)


class HeartbeatDir:
    """One beat file per worker pid under a run-scoped directory."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    def beat(self, label: str = "") -> None:
        if not self.root.is_dir():
            # Torn down by the parent (run over); don't resurrect it.
            return
        pid = os.getpid()
        atomic_write_json(
            self.root / f"{pid}.json",
            {"pid": pid, "beat_at": time.time(), "label": label},
            fsync=False,  # scratch state; freshness matters, not durability
        )

    def beats(self) -> List[dict]:
        if not self.root.is_dir():
            return []
        records = []
        for path in sorted(self.root.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue
            if isinstance(record, dict) and "pid" in record:
                records.append(record)
        return records

    def newest_age_s(self) -> Optional[float]:
        """Seconds since the freshest beat, or None with no beats yet."""
        ages = [
            time.time() - record.get("beat_at", 0.0)
            for record in self.beats()
        ]
        return min(ages) if ages else None

    def start_path(self, key: str) -> Path:
        return self.root / f"start-{key[:32]}.json"

    def stamp_start(self, key: str) -> None:
        """Worker-side: mark a timed job attempt as executing *now*."""
        if not self.root.is_dir():
            return  # torn down by the parent; the run is over
        atomic_write_json(
            self.start_path(key),
            {"key": key, "started_at": time.time()},
            fsync=False,  # scratch state; freshness matters, not durability
        )

    def job_started_at(self, key: str) -> Optional[float]:
        """Parent-side: when the job's current attempt began, if it has."""
        try:
            with open(self.start_path(key), "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        started = record.get("started_at") if isinstance(record, dict) else None
        return float(started) if isinstance(started, (int, float)) else None

    def clear_start(self, key: str) -> None:
        """Parent-side: drop a stale stamp before resubmitting a retry."""
        try:
            self.start_path(key).unlink()
        except OSError:
            pass

    def stale_pids(self, age_s: float) -> List[int]:
        now = time.time()
        return sorted(
            record["pid"]
            for record in self.beats()
            if now - record.get("beat_at", 0.0) > age_s
        )

    def claims_path(self, pid: int) -> Path:
        return self.root / f"{pid}.claims.jsonl"

    def claimed_keys(self, pid: int) -> List[str]:
        """Keys the worker ``pid`` recorded via :func:`claim_job`.

        Most-recent-first, deduplicated; a torn final line (the claim
        being written when the worker died) is skipped, same contract
        as the journal loader.
        """
        try:
            raw = self.claims_path(pid).read_text(encoding="utf-8")
        except OSError:
            return []
        keys: List[str] = []
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail
            key = record.get("key") if isinstance(record, dict) else None
            if isinstance(key, str):
                keys.append(key)
        seen = set()
        ordered: List[str] = []
        for key in reversed(keys):
            if key not in seen:
                seen.add(key)
                ordered.append(key)
        return ordered

    def clear_claims(self, pid: int) -> None:
        """Drop a dead worker's claim file once it has been triaged."""
        try:
            self.claims_path(pid).unlink()
        except OSError:
            pass


@dataclass(frozen=True)
class WatchdogPolicy:
    """When to declare a hang and what to do about it."""

    hang_s: float = 60.0
    poll_s: float = 0.2
    kill_stale: bool = True

    @property
    def worker_pulse_s(self) -> float:
        """Mid-job heartbeat interval for workers: well inside ``hang_s``
        so an alive worker can never look stale between pulses."""
        return max(0.05, min(5.0, self.hang_s / 4.0))


class Watchdog:
    """Parent-side hang detector over a :class:`HeartbeatDir`."""

    def __init__(
        self,
        heartbeats: Optional[HeartbeatDir],
        policy: Optional[WatchdogPolicy] = None,
    ) -> None:
        self.heartbeats = heartbeats
        self.policy = policy or WatchdogPolicy()
        self._idle = Stopwatch()
        self.hangs_detected = 0
        self.workers_killed: List[int] = []

    def note_progress(self) -> None:
        """A future completed; restart the idle clock."""
        self._idle = Stopwatch()

    def hung(self) -> bool:
        """True when both completions and heartbeats have gone silent."""
        if self._idle.elapsed < self.policy.hang_s:
            return False
        if self.heartbeats is None:
            return True
        age = self.heartbeats.newest_age_s()
        # No beats at all after hang_s of silence counts as hung: the
        # workers never even initialized.
        return age is None or age >= self.policy.hang_s

    def declare_hang(self) -> List[int]:
        """Record the hang; kill stale workers so the pool can be torn
        down without the executor's exit handler blocking on them."""
        self.hangs_detected += 1
        killed: List[int] = []
        if self.heartbeats is not None and self.policy.kill_stale:
            for pid in self.heartbeats.stale_pids(self.policy.hang_s / 2):
                if pid == os.getpid():
                    continue
                try:
                    os.kill(pid, getattr(signal, "SIGKILL", signal.SIGTERM))
                    killed.append(pid)
                except (OSError, ProcessLookupError):
                    continue
        self.workers_killed.extend(killed)
        self.note_progress()
        return killed


def pid_dead(pid: int) -> bool:
    """Best-effort: is this worker pid dead (including zombie)?

    A SIGKILL'd pool worker lingers as a zombie until the executor's
    management thread reaps it, and ``os.kill(pid, 0)`` succeeds on
    zombies — so on Linux the ``/proc`` state is consulted first
    (``Z``/``X`` count as dead). Elsewhere, signal-0 probing is the
    fallback: it flips to dead as soon as the executor reaps.
    """
    try:
        with open(f"/proc/{pid}/stat", "r", encoding="ascii") as handle:
            stat = handle.read()
        # Field 2 is "(comm)" and may contain spaces; the state letter
        # is the first token after the closing paren.
        state = stat.rpartition(")")[2].split()[0]
        return state in ("Z", "X", "x")
    except (OSError, IndexError):
        pass
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return True
    except OSError:
        return False
    return False


__all__ = [
    "ENV_HEARTBEAT_DIR",
    "HeartbeatDir",
    "Watchdog",
    "WatchdogPolicy",
    "claim_job",
    "in_worker_process",
    "mark_worker_process",
    "pid_dead",
    "stamp_job_start",
    "worker_checkpoint",
]
