"""Request deadlines that survive the hop into pool workers.

A serve client that attaches ``deadline_ms`` to a request is making a
promise: *after this long I will have stopped listening*. Work executed
past that point is pure waste — it burns a pool slot that queued,
still-wanted work could have used. This module is the carrier that lets
every stage along the path (event loop, shard queue, worker process)
ask one cheap question — *is this work already dead?* — and drop it.

Deadlines are **absolute monotonic nanoseconds**
(:func:`time.monotonic_ns`). Monotonic rather than wall clock so an
NTP step can never instantly expire (or resurrect) in-flight work; the
monotonic clock is system-wide per boot on every platform CPython
supports, so a deadline stamped in the service process compares
correctly inside a shard's worker process on the same machine — the
only place serve workers ever run.

Two carriers, mirroring :mod:`repro.obs.context`:

* **as data** — the deadline rides :func:`repro.lab.jobs.execute_job`'s
  ``deadline_ns`` argument into the worker (pool workers outlive any
  one request, so parent-side env mutation cannot reach them);
* **as environment** — the worker re-exports it to ``REPRO_DEADLINE_NS``
  for the duration of the job, so nested code (fault hooks, store
  helpers) can consult :func:`from_env` without threading the value
  through every signature.
"""

from __future__ import annotations

import os
import time
from typing import Optional

#: Worker-side carrier: absolute monotonic deadline in nanoseconds.
ENV_DEADLINE_NS = "REPRO_DEADLINE_NS"

_NS_PER_MS = 1_000_000


def now_ns() -> int:
    """The deadline clock: system-wide monotonic nanoseconds."""
    return time.monotonic_ns()


def deadline_from_budget_ms(budget_ms: int) -> int:
    """Absolute deadline for a relative millisecond budget, from now."""
    return now_ns() + int(budget_ms) * _NS_PER_MS


def expired(deadline_ns: Optional[int]) -> bool:
    """True when the deadline has passed (``None`` never expires)."""
    return deadline_ns is not None and now_ns() >= deadline_ns


def remaining_ms(deadline_ns: Optional[int]) -> Optional[float]:
    """Milliseconds left before expiry; ``None`` for no deadline.

    Clamped at 0.0 — a caller sizing a timeout from this never passes
    a negative duration to ``wait_for``/``settimeout``.
    """
    if deadline_ns is None:
        return None
    return max(0.0, (deadline_ns - now_ns()) / _NS_PER_MS)


def remaining_s(deadline_ns: Optional[int]) -> Optional[float]:
    """Seconds left before expiry; ``None`` for no deadline."""
    ms = remaining_ms(deadline_ns)
    return None if ms is None else ms / 1000.0


def export_env(deadline_ns: int) -> None:
    """Write the deadline to this process's environment (worker-side)."""
    os.environ[ENV_DEADLINE_NS] = str(int(deadline_ns))


def clear_env() -> None:
    os.environ.pop(ENV_DEADLINE_NS, None)


def from_env() -> Optional[int]:
    """The ambient deadline exported by :func:`export_env`, if any."""
    raw = os.environ.get(ENV_DEADLINE_NS, "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        return None


__all__ = [
    "ENV_DEADLINE_NS",
    "clear_env",
    "deadline_from_budget_ms",
    "expired",
    "export_env",
    "from_env",
    "now_ns",
    "remaining_ms",
    "remaining_s",
]
