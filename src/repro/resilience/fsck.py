"""Store integrity: scan, report, quarantine, repair.

``repro lab fsck`` walks everything under the cache root that a run
depends on and classifies each file:

- **result objects** (``objects/*/*.json``) — parse, verify the
  embedded payload SHA-256, check the content address against the
  filename, check the code salt;
- **packed traces** (``packed/*/*.npz``) — load and verify the
  embedded array checksum (see :mod:`repro.perf.cache`);
- **run manifests** (``runs/*.json``) — must parse as JSON;
- **run journals** (``runs/*.journal.jsonl``) — must parse line-wise
  (a torn final line is the legal crash signature, not corruption);
- **stray temp files** (``.tmp-*``) — leftovers of interrupted atomic
  writes.

``--repair`` moves every damaged object into ``<root>/quarantine/``
(never deletes evidence) and removes stray temp files. The store is
content-addressed, so repair never needs to *reconstruct* anything:
once a corrupt object is out of the way, the next run that needs that
key simply recomputes and re-stores it. Stale-salt objects (written by
an older code version) are reported informationally — their keys are
unreachable from current code, so they are a ``repro lab gc`` matter,
not corruption.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.lab.store import (
    CODE_SALT,
    ResultStore,
    quarantine_file,
    verify_object_bytes,
)
from repro.resilience.atomic import read_jsonl, stray_tmp_files
from repro.resilience.journal import JOURNAL_SUFFIX

#: Issue kinds that --repair resolves by quarantining the file.
QUARANTINE_KINDS = (
    "unreadable",
    "checksum-mismatch",
    "key-mismatch",
    "unreadable-manifest",
    "unreadable-journal",
)


@dataclass(frozen=True)
class FsckIssue:
    """One damaged (or suspicious) file and what was done about it."""

    path: str
    kind: str
    detail: str
    repaired: str = ""  # "" | "quarantined" | "removed"

    def render(self) -> str:
        suffix = f" [{self.repaired}]" if self.repaired else ""
        return f"{self.kind}: {self.path}: {self.detail}{suffix}"

    def as_payload(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "kind": self.kind,
            "detail": self.detail,
            "repaired": self.repaired,
        }


@dataclass
class FsckReport:
    """Outcome of one integrity scan."""

    root: str = ""
    repair: bool = False
    objects_scanned: int = 0
    packed_scanned: int = 0
    manifests_scanned: int = 0
    journals_scanned: int = 0
    issues: List[FsckIssue] = field(default_factory=list)
    #: stale-salt objects: informational, not corruption.
    stale: List[str] = field(default_factory=list)

    @property
    def repaired(self) -> int:
        return sum(1 for issue in self.issues if issue.repaired)

    @property
    def unrepaired(self) -> int:
        return sum(1 for issue in self.issues if not issue.repaired)

    @property
    def ok(self) -> bool:
        """Clean now: every found issue was repaired (or none existed)."""
        return self.unrepaired == 0

    def summary(self) -> str:
        status = "clean" if not self.issues else (
            f"{len(self.issues)} issue(s), {self.repaired} repaired"
        )
        return (
            f"fsck {self.root}: {status}; "
            f"{self.objects_scanned} object(s), "
            f"{self.packed_scanned} packed trace(s), "
            f"{self.manifests_scanned} manifest(s), "
            f"{self.journals_scanned} journal(s) scanned"
            + (f"; {len(self.stale)} stale-salt object(s)" if self.stale else "")
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(f"  {issue.render()}" for issue in self.issues)
        return "\n".join(lines)

    def as_payload(self) -> Dict[str, Any]:
        return {
            "root": self.root,
            "repair": self.repair,
            "ok": self.ok,
            "scanned": {
                "objects": self.objects_scanned,
                "packed": self.packed_scanned,
                "manifests": self.manifests_scanned,
                "journals": self.journals_scanned,
            },
            "issues": [issue.as_payload() for issue in self.issues],
            "stale_salt": list(self.stale),
        }


def _resolve(
    report: FsckReport,
    store: ResultStore,
    path: Path,
    kind: str,
    detail: str,
    repair: bool,
) -> None:
    repaired = ""
    if repair and kind in QUARANTINE_KINDS:
        quarantine_file(store.root, path, reason=f"fsck: {kind}: {detail}")
        repaired = "quarantined"
    report.issues.append(
        FsckIssue(
            path=str(path), kind=kind, detail=detail, repaired=repaired
        )
    )


def _scan_objects(report: FsckReport, store: ResultStore, repair: bool) -> None:
    for path in list(store.iter_objects()):
        report.objects_scanned += 1
        try:
            raw = path.read_bytes()
        except OSError as exc:
            _resolve(report, store, path, "unreadable", str(exc), repair)
            continue
        status, _ = verify_object_bytes(raw, expected_key=path.stem)
        if status == "ok":
            continue
        if status == "stale-salt":
            report.stale.append(str(path))
            continue
        detail = {
            "unreadable": "not a valid store object",
            "checksum-mismatch": "payload does not match its sha256",
            "key-mismatch": "stored key does not match the filename",
        }.get(status, status)
        _resolve(report, store, path, status, detail, repair)


def _scan_packed(report: FsckReport, store: ResultStore, repair: bool) -> None:
    packed_dir = store.root / "packed"
    if not packed_dir.is_dir():
        return
    from repro.perf.cache import verify_npz_bytes

    for path in sorted(packed_dir.glob("*/*.npz")):
        report.packed_scanned += 1
        try:
            raw = path.read_bytes()
        except OSError as exc:
            _resolve(report, store, path, "unreadable", str(exc), repair)
            continue
        status = verify_npz_bytes(raw)
        if status == "ok":
            continue
        if status == "stale-schema":
            report.stale.append(str(path))
            continue
        _resolve(
            report, store, path, status,
            "packed trace fails its embedded checksum", repair,
        )


def _scan_runs(report: FsckReport, store: ResultStore, repair: bool) -> None:
    if not store.runs_dir.is_dir():
        return
    for path in sorted(store.runs_dir.glob("*.json")):
        report.manifests_scanned += 1
        try:
            json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            _resolve(
                report, store, path, "unreadable-manifest", str(exc), repair
            )
    for path in sorted(store.runs_dir.glob(f"*{JOURNAL_SUFFIX}")):
        report.journals_scanned += 1
        try:
            read_jsonl(path)
        except (OSError, json.JSONDecodeError) as exc:
            _resolve(
                report, store, path, "unreadable-journal", str(exc), repair
            )


def _scan_tmp(report: FsckReport, repair: bool) -> None:
    root = Path(report.root)
    for path in stray_tmp_files(root):
        if "quarantine" in path.parts:
            continue
        repaired = ""
        if repair:
            try:
                path.unlink()
                repaired = "removed"
            except OSError:
                pass
        report.issues.append(
            FsckIssue(
                path=str(path),
                kind="stray-tmp",
                detail="leftover temp file from an interrupted atomic write",
                repaired=repaired,
            )
        )


def fsck_store(
    store: Optional[ResultStore] = None,
    repair: bool = False,
    packed: bool = True,
) -> FsckReport:
    """Scan one cache root; quarantine/clean when ``repair`` is set."""
    if store is None:
        store = ResultStore()
    report = FsckReport(root=str(store.root), repair=repair)
    _scan_objects(report, store, repair)
    if packed:
        _scan_packed(report, store, repair)
    _scan_runs(report, store, repair)
    _scan_tmp(report, repair)
    _count_metrics(report)
    return report


def _count_metrics(report: FsckReport) -> None:
    from repro.obs import runtime as _obs

    metrics = _obs.current_metrics()
    if metrics is None:
        return
    corrupt = sum(
        1 for issue in report.issues
        if issue.kind in ("checksum-mismatch", "unreadable", "key-mismatch")
    )
    if corrupt:
        metrics.counter("resilience.store_corruptions_total").inc(corrupt)
    quarantined = sum(
        1 for issue in report.issues if issue.repaired == "quarantined"
    )
    if quarantined:
        metrics.counter("resilience.quarantined_objects_total").inc(quarantined)


__all__ = [
    "CODE_SALT",
    "FsckIssue",
    "FsckReport",
    "QUARANTINE_KINDS",
    "fsck_store",
]
