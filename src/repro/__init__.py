"""repro — Characterizing the Branch Misprediction Penalty (ISPASS 2006).

A from-scratch reproduction of Eyerman, Smith & Eeckhout's interval
analysis of the branch misprediction penalty, including every substrate
the paper depends on: a kernel ISA with assembler and functional
simulator, synthetic SPEC-like trace generation, branch predictors, a
cache hierarchy, an out-of-order superscalar timing simulator, and the
interval-analysis layer that measures, models and decomposes the
penalty into its five contributors.

Quickstart
----------
>>> from repro import (
...     CoreConfig, simulate, generate_trace, spec_profile,
...     measure_penalties,
... )
>>> trace = generate_trace(spec_profile("twolf"), 20_000, seed=1)
>>> result = simulate(trace, CoreConfig())
>>> report = measure_penalties(result)
>>> report.mean_penalty > CoreConfig().frontend_depth
True
"""

from repro.isa import Instruction, Opcode, OpClass, Program, assemble
from repro.trace import (
    FunctionalSimulator,
    SyntheticTraceGenerator,
    Trace,
    TraceRecord,
    WorkloadProfile,
    generate_trace,
    load_trace,
    save_trace,
)
from repro.frontend import (
    BimodalPredictor,
    BranchTargetBuffer,
    BranchUnit,
    GSharePredictor,
    LocalPredictor,
    PerceptronPredictor,
    PerfectPredictor,
    ReturnAddressStack,
    StaticPredictor,
    TAGEPredictor,
    TournamentPredictor,
)
from repro.memory import Cache, CacheHierarchy, HierarchyConfig, MainMemory, MissClass
from repro.pipeline import (
    CoreConfig,
    FUSpec,
    InOrderCore,
    OracleAnnotator,
    SimulationResult,
    StructuralAnnotator,
    SuperscalarCore,
    simulate,
    simulate_inorder,
)
from repro.interval import (
    CPIStack,
    ContributorBreakdown,
    ILPFit,
    IntervalModel,
    PenaltyReport,
    build_cpi_stack,
    decompose_contributors,
    fit_ilp_profile,
    measure_penalties,
    segment_intervals,
)
from repro.workloads import (
    SPEC_PROFILES,
    build_kernel,
    kernel_names,
    kernel_trace,
    spec_profile,
)

__version__ = "1.0.0"

__all__ = [
    # isa
    "Instruction",
    "Opcode",
    "OpClass",
    "Program",
    "assemble",
    # trace
    "FunctionalSimulator",
    "SyntheticTraceGenerator",
    "Trace",
    "TraceRecord",
    "WorkloadProfile",
    "generate_trace",
    "load_trace",
    "save_trace",
    # frontend
    "BimodalPredictor",
    "BranchTargetBuffer",
    "BranchUnit",
    "GSharePredictor",
    "LocalPredictor",
    "PerceptronPredictor",
    "PerfectPredictor",
    "ReturnAddressStack",
    "StaticPredictor",
    "TAGEPredictor",
    "TournamentPredictor",
    # memory
    "Cache",
    "CacheHierarchy",
    "HierarchyConfig",
    "MainMemory",
    "MissClass",
    # pipeline
    "CoreConfig",
    "FUSpec",
    "InOrderCore",
    "OracleAnnotator",
    "SimulationResult",
    "StructuralAnnotator",
    "SuperscalarCore",
    "simulate",
    "simulate_inorder",
    # interval analysis
    "CPIStack",
    "ContributorBreakdown",
    "ILPFit",
    "IntervalModel",
    "PenaltyReport",
    "build_cpi_stack",
    "decompose_contributors",
    "fit_ilp_profile",
    "measure_penalties",
    "segment_intervals",
    # workloads
    "SPEC_PROFILES",
    "build_kernel",
    "kernel_names",
    "kernel_trace",
    "spec_profile",
]
