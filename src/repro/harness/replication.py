"""Multi-seed replication with confidence intervals.

Synthetic-trace measurements are stochastic in the seed; sensitivity
claims should therefore be made on replicated means. ``replicate``
runs a measurement function over several derived seeds and returns the
mean with a normal-approximation confidence interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.util.rng import derive_seed

# Two-sided critical values of the standard normal distribution.
_Z_VALUES = {0.80: 1.2816, 0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Replicated:
    """Mean and confidence half-width of one replicated metric."""

    mean: float
    half_width: float
    replications: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "Replicated") -> bool:
        """True when the confidence intervals overlap."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def confidence_half_width(
    values: Sequence[float], confidence: float = 0.95
) -> float:
    """Normal-approximation half-width of the mean's CI."""
    if confidence not in _Z_VALUES:
        raise ValueError(
            f"confidence must be one of {sorted(_Z_VALUES)}, got {confidence}"
        )
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return _Z_VALUES[confidence] * math.sqrt(variance / n)


def replicate(
    measure: Callable[[int], Dict[str, float]],
    base_seed: int,
    replications: int = 5,
    confidence: float = 0.95,
) -> Dict[str, Replicated]:
    """Run ``measure(seed)`` over derived seeds; aggregate per metric.

    ``measure`` maps a seed to a dict of metric values; the result maps
    each metric name to its :class:`Replicated` summary.
    """
    if replications < 1:
        raise ValueError(f"need at least one replication, got {replications}")
    samples: Dict[str, List[float]] = {}
    for rep in range(replications):
        seed = derive_seed(base_seed, "replicate", rep)
        for name, value in measure(seed).items():
            samples.setdefault(name, []).append(value)
    return {
        name: Replicated(
            mean=sum(values) / len(values),
            half_width=confidence_half_width(values, confidence),
            replications=len(values),
            confidence=confidence,
        )
        for name, values in samples.items()
    }
