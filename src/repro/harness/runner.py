"""Cached workload generation and simulation for the harness.

Experiments share traces and baseline simulations. Two layers of
caching keep the table/figure suite fast:

- **in-process** — bounded :class:`~repro.util.lru.LRUCache` maps for
  traces and simulation results (the old unbounded dicts grew without
  limit across long sweeps);
- **persistent** — the :mod:`repro.lab.store` content-addressed store
  under ``.repro-cache/``, so repeated pytest/benchmark invocations
  reuse simulations across processes. Set ``REPRO_NO_CACHE=1`` to
  disable it, ``REPRO_CACHE_DIR`` to relocate it.

Simulation keys come from the lab's canonical config digest
(:func:`repro.lab.store.config_digest`), so a key can never collide
between differing configurations nor depend on field order. Traces are
only cached in memory: they regenerate deterministically and would
double the store's footprint for no reuse win.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.lab.codec import result_from_payload, result_to_payload
from repro.lab.store import (
    ResultStore,
    caching_disabled,
    config_digest,
    default_store_root,
    job_key,
)
from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace
from repro.util.lru import LRUCache
from repro.util.rng import derive_seed
from repro.workloads.spec_profiles import SPEC_PROFILES

DEFAULT_LENGTH = 60_000
DEFAULT_SEED = 2006

#: In-memory cache bounds (override via environment for big sweeps).
TRACE_CACHE_CAPACITY = int(os.environ.get("REPRO_TRACE_CACHE_CAP", "64"))
SIM_CACHE_CAPACITY = int(os.environ.get("REPRO_SIM_CACHE_CAP", "256"))

_trace_cache: LRUCache = LRUCache(TRACE_CACHE_CAPACITY)
_sim_cache: LRUCache = LRUCache(SIM_CACHE_CAPACITY)
_store: Optional[ResultStore] = None


def baseline_config() -> CoreConfig:
    """The paper-baseline machine (DESIGN.md Table T1)."""
    return CoreConfig()


def _config_key(config: CoreConfig) -> str:
    """Stable cache key for a configuration (the lab's canonical digest)."""
    return config_digest(config)


def _persistent_store() -> Optional[ResultStore]:
    """The process-wide result store, or None when caching is off.

    Re-resolved when ``REPRO_CACHE_DIR`` changes so tests can redirect
    the store without reloading the module.
    """
    global _store
    if caching_disabled():
        return None
    root = default_store_root()
    if _store is None or _store.root != root:
        _store = ResultStore(root=root)
    return _store


def workload_trace(
    name: str, length: int = DEFAULT_LENGTH, seed: int = DEFAULT_SEED
) -> Trace:
    """Deterministic synthetic trace for one suite workload (cached)."""
    key = (name, length, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        profile = SPEC_PROFILES[name]
        trace = generate_trace(profile, length, seed=derive_seed(seed, name))
        _trace_cache[key] = trace
    return trace


def simulate_workload(
    name: str,
    config: Optional[CoreConfig] = None,
    length: int = DEFAULT_LENGTH,
    seed: int = DEFAULT_SEED,
) -> SimulationResult:
    """Simulate one suite workload under ``config`` (cached).

    Lookup order: in-process LRU, then the persistent store, then a
    real simulation (which populates both layers).
    """
    if config is None:
        config = baseline_config()
    key = (name, length, seed, _config_key(config))
    result = _sim_cache.get(key)
    if result is not None:
        return result

    store = _persistent_store()
    persist_key = job_key("sim-ooo", name, length, seed, config)
    if store is not None:
        payload = store.get(persist_key)
        if payload is not None:
            result = result_from_payload(payload)
            _sim_cache[key] = result
            return result

    result = simulate(workload_trace(name, length, seed), config)
    _sim_cache[key] = result
    if store is not None:
        store.put(
            persist_key,
            result_to_payload(result),
            meta={"workload": name, "length": length, "seed": seed},
        )
    return result


def simulate_workload_batch(
    name: str,
    configs: "Sequence[CoreConfig]",
    length: int = DEFAULT_LENGTH,
    seed: int = DEFAULT_SEED,
) -> "List[SimulationResult]":
    """Simulate one workload under N configs via the lockstep batch core.

    Results are field-exact equal to :func:`simulate_workload` per
    config (the batched kernel is bit-exact against the scalar oracle,
    and unsupported configs fall back to it), so both paths share the
    same ``sim-ooo`` cache entries: points already simulated scalar are
    served from cache, only the missing subset runs batched, and every
    batched result is stored where a later scalar call will find it.
    """
    from repro.perf.batchcore import run_batch

    configs = [
        baseline_config() if config is None else config for config in configs
    ]
    results: List[Optional[SimulationResult]] = [None] * len(configs)
    store = _persistent_store()
    missing: List[int] = []
    for index, config in enumerate(configs):
        key = (name, length, seed, _config_key(config))
        cached = _sim_cache.get(key)
        if cached is not None:
            results[index] = cached
            continue
        if store is not None:
            payload = store.get(job_key("sim-ooo", name, length, seed, config))
            if payload is not None:
                result = result_from_payload(payload)
                _sim_cache[key] = result
                results[index] = result
                continue
        missing.append(index)

    if missing:
        trace = workload_trace(name, length, seed)
        fresh = run_batch(trace, [configs[i] for i in missing])
        for index, result in zip(missing, fresh):
            config = configs[index]
            results[index] = result
            _sim_cache[(name, length, seed, _config_key(config))] = result
            if store is not None:
                store.put(
                    job_key("sim-ooo", name, length, seed, config),
                    result_to_payload(result),
                    meta={"workload": name, "length": length, "seed": seed},
                )
    return [result for result in results if result is not None]


def simulate_workload_sharded(
    name: str,
    config: Optional[CoreConfig] = None,
    length: int = DEFAULT_LENGTH,
    seed: int = DEFAULT_SEED,
    shards: int = 4,
) -> SimulationResult:
    """Simulate one workload by checkpoint-sharding its trace.

    Bit-exact vs :func:`simulate_workload`, so it reads and writes the
    same cache entries; the sharded path only pays off when the cache
    misses and the trace is long enough to split across pool workers.
    """
    if config is None:
        config = baseline_config()
    key = (name, length, seed, _config_key(config))
    result = _sim_cache.get(key)
    if result is not None:
        return result

    store = _persistent_store()
    persist_key = job_key("sim-ooo", name, length, seed, config)
    if store is not None:
        payload = store.get(persist_key)
        if payload is not None:
            result = result_from_payload(payload)
            _sim_cache[key] = result
            return result

    from repro.perf.checkpoint import simulate_sharded

    result = simulate_sharded(
        workload_trace(name, length, seed), config, shards=shards
    )
    _sim_cache[key] = result
    if store is not None:
        store.put(
            persist_key,
            result_to_payload(result),
            meta={"workload": name, "length": length, "seed": seed},
        )
    return result


def cache_stats() -> Dict[str, Dict[str, int]]:
    """Hit/miss/eviction counters for both in-memory caches."""
    return {
        "trace": {
            "size": len(_trace_cache),
            "capacity": _trace_cache.capacity,
            "hits": _trace_cache.hits,
            "misses": _trace_cache.misses,
            "evictions": _trace_cache.evictions,
        },
        "sim": {
            "size": len(_sim_cache),
            "capacity": _sim_cache.capacity,
            "hits": _sim_cache.hits,
            "misses": _sim_cache.misses,
            "evictions": _sim_cache.evictions,
        },
    }


def clear_caches() -> None:
    """Drop the in-memory caches (tests use this).

    The persistent store is left alone; use ``repro lab gc`` or
    :meth:`repro.lab.store.ResultStore.gc` to clear it.
    """
    _trace_cache.clear()
    _sim_cache.clear()
