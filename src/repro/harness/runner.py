"""Cached workload generation and simulation for the harness.

Experiments share traces and baseline simulations; caching them keeps
the full table/figure suite fast enough to run under pytest-benchmark.
Caches key on (workload, length, seed) for traces and additionally on
the configuration's overridden fields for simulations.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.pipeline.config import CoreConfig
from repro.pipeline.core import simulate
from repro.pipeline.result import SimulationResult
from repro.trace.stream import Trace
from repro.trace.synthetic import generate_trace
from repro.util.rng import derive_seed
from repro.workloads.spec_profiles import SPEC_PROFILES

DEFAULT_LENGTH = 60_000
DEFAULT_SEED = 2006

_trace_cache: Dict[Tuple[str, int, int], Trace] = {}
_sim_cache: Dict[Tuple[str, int, int, str], SimulationResult] = {}


def baseline_config() -> CoreConfig:
    """The paper-baseline machine (DESIGN.md Table T1)."""
    return CoreConfig()


def _config_key(config: CoreConfig) -> str:
    """Stable cache key for a configuration."""
    fu = ";".join(
        f"{op.value}:{spec.count},{spec.latency},{spec.issue_interval}"
        for op, spec in sorted(config.fu_specs.items(), key=lambda kv: kv[0].value)
    )
    return (
        f"{config.dispatch_width}/{config.issue_width}/{config.commit_width}"
        f"|rob={config.rob_size}|fe={config.frontend_depth}"
        f"|mem={config.l1_latency},{config.l2_latency},{config.memory_latency}"
        f"|wp={config.dispatch_wrong_path}|pol={config.issue_policy}"
        f"|seed={config.seed}|{fu}"
    )


def workload_trace(
    name: str, length: int = DEFAULT_LENGTH, seed: int = DEFAULT_SEED
) -> Trace:
    """Deterministic synthetic trace for one suite workload (cached)."""
    key = (name, length, seed)
    if key not in _trace_cache:
        profile = SPEC_PROFILES[name]
        _trace_cache[key] = generate_trace(
            profile, length, seed=derive_seed(seed, name)
        )
    return _trace_cache[key]


def simulate_workload(
    name: str,
    config: Optional[CoreConfig] = None,
    length: int = DEFAULT_LENGTH,
    seed: int = DEFAULT_SEED,
) -> SimulationResult:
    """Simulate one suite workload under ``config`` (cached)."""
    if config is None:
        config = baseline_config()
    key = (name, length, seed, _config_key(config))
    if key not in _sim_cache:
        _sim_cache[key] = simulate(workload_trace(name, length, seed), config)
    return _sim_cache[key]


def clear_caches() -> None:
    """Drop all cached traces and simulations (tests use this)."""
    _trace_cache.clear()
    _sim_cache.clear()
