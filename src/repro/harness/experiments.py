"""Implementations of every reproduced table and figure (see DESIGN.md).

Each ``run_*`` function returns an
:class:`~repro.harness.experiment.ExperimentResult` whose rows are the
data the corresponding table/figure in the paper's evaluation reports.
``EXPERIMENTS`` maps experiment ids to these functions; benchmark files
are one-liner wrappers over this registry.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.harness.experiment import ExperimentResult
from repro.harness.runner import (
    DEFAULT_LENGTH,
    DEFAULT_SEED,
    baseline_config,
    simulate_workload,
    workload_trace,
)
from repro.interval.contributors import decompose_contributors
from repro.interval.cpi_stack import build_cpi_stack
from repro.interval.ilp import fit_ilp_profile, full_latency
from repro.interval.model import IntervalModel
from repro.interval.penalty import (
    bucket_resolution_by_gap,
    measure_penalties,
)
from repro.interval.segmentation import segment_intervals
from repro.pipeline.core import simulate
from repro.pipeline.events import BranchMispredictEvent, MissEventKind
from repro.trace.profiles import WorkloadProfile
from repro.trace.synthetic import generate_trace
from repro.util.rng import derive_seed
from repro.workloads.spec_profiles import SPEC_PROFILES

SUITE = list(SPEC_PROFILES)
_SWEEP_LENGTH = 40_000
_SLICE_CAP = 120  # mispredictions sliced per workload in decompositions


def run_t1() -> ExperimentResult:
    """T1: baseline processor configuration."""
    config = baseline_config()
    rows = [list(row) for row in config.describe()]
    return ExperimentResult(
        experiment_id="t1",
        title="Baseline processor configuration",
        headers=["parameter", "value"],
        rows=rows,
        notes="4-wide out-of-order core, ROB 128, 5-cycle frontend.",
    )


def run_t2() -> ExperimentResult:
    """T2: benchmark characteristics of the SPEC-like suite."""
    rows = []
    for name in SUITE:
        trace = workload_trace(name)
        stats = trace.statistics()
        result = simulate_workload(name)
        breakdown = segment_intervals(result)
        rows.append(
            [
                name,
                result.ipc,
                stats.mispredictions_per_ki,
                stats.il1_misses_per_ki,
                1000.0 * stats.dl1_miss_rate * stats.mix.get("load", 0.0),
                1000.0 * stats.dl2_miss_rate * stats.mix.get("load", 0.0),
                breakdown.mean_interval_length,
                breakdown.burstiness(),
            ]
        )
    return ExperimentResult(
        experiment_id="t2",
        title="Benchmark characteristics",
        headers=[
            "workload",
            "IPC",
            "mispred/ki",
            "IL1 miss/ki",
            "short D/ki",
            "long D/ki",
            "mean interval",
            "burstiness CV",
        ],
        rows=rows,
        notes="Synthetic SPEC2000-int-like suite (substitution in DESIGN.md).",
    )


def run_f1(workload: str = "twolf") -> ExperimentResult:
    """F1: dispatch-rate timeline around a branch misprediction."""
    from repro.interval.visualize import (
        interval_timeline,
        pick_illustrative_event,
    )

    result = simulate_workload(workload)
    event = pick_illustrative_event(result)
    points = interval_timeline(result, event)
    rows = [
        [point.relative_cycle, point.dispatch_rate, point.phase]
        for point in points
    ]
    return ExperimentResult(
        experiment_id="f1",
        title=f"Interval timeline around a misprediction ({workload})",
        headers=["cycles rel. to branch dispatch", "dispatch rate", "phase"],
        rows=rows,
        series={"dispatch_rate": [row[1] for row in rows]},
        notes=(
            f"resolution={event.resolution} cycles, refill="
            f"{event.refill_cycles}: dispatch collapses at the branch and "
            "recovers only after resolve+refill (the interval sawtooth)."
        ),
    )


def run_f2() -> ExperimentResult:
    """F2: mean misprediction penalty vs the frontend pipeline length."""
    config = baseline_config()
    rows = []
    for name in SUITE:
        result = simulate_workload(name)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                config.frontend_depth,
                report.mean_resolution,
                report.mean_penalty,
                report.mean_penalty / config.frontend_depth
                if config.frontend_depth
                else 0.0,
            ]
        )
    return ExperimentResult(
        experiment_id="f2",
        title="Misprediction penalty vs frontend pipeline length",
        headers=[
            "workload",
            "frontend depth",
            "mean resolution",
            "mean penalty",
            "penalty/frontend",
        ],
        rows=rows,
        notes=(
            "The paper's headline: the penalty substantially exceeds the "
            "frontend length everywhere (ratio > 1 for all workloads)."
        ),
    )


def run_f3() -> ExperimentResult:
    """F3: penalty decomposition — resolution + refill per workload."""
    rows = []
    for name in SUITE:
        result = simulate_workload(name)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                report.count,
                report.mean_resolution,
                float(report.frontend_depth),
                report.mean_penalty,
            ]
        )
    return ExperimentResult(
        experiment_id="f3",
        title="Penalty decomposition: resolution time + frontend refill",
        headers=[
            "workload",
            "mispredictions",
            "resolution (cycles)",
            "refill (cycles)",
            "total penalty",
        ],
        rows=rows,
        notes="penalty = resolution + refill by construction; resolution dominates.",
    )


def run_f4() -> ExperimentResult:
    """F4: resolution time vs instructions since the last miss event."""
    merged_rows: Dict[str, List[float]] = {}
    order: List[str] = []
    for name in SUITE:
        result = simulate_workload(name)
        report = measure_penalties(result)
        rows = bucket_resolution_by_gap(
            report, exclude_long_miss_shadow=True
        )
        for label, count, mean in rows:
            if label not in merged_rows:
                merged_rows[label] = [0.0, 0.0]
                order.append(label)
            merged_rows[label][0] += count
            merged_rows[label][1] += mean * count
    rows = []
    for label in order:
        count, weighted = merged_rows[label]
        rows.append([label, int(count), weighted / count if count else 0.0])
    return ExperimentResult(
        experiment_id="f4",
        title="Resolution time vs instructions since last miss event (C2)",
        headers=["gap bucket (instructions)", "mispredictions", "mean resolution"],
        rows=rows,
        series={"resolution": [row[2] for row in rows]},
        notes=(
            "Burstiness effect: short gaps dispatch into a near-empty "
            "window and resolve fast; the curve saturates near the full-"
            "window drain time. Mispredictions in the shadow of an "
            "outstanding long D-cache miss are excluded (their window "
            "is not empty, so the gap does not measure occupancy)."
        ),
    )


def run_f5() -> ExperimentResult:
    """F5: distribution of inter-miss-event interval lengths."""
    rows = []
    for name in SUITE:
        result = simulate_workload(name)
        breakdown = segment_intervals(result)
        hist = breakdown.length_histogram()
        if not hist.total:
            rows.append([name, 0, 0, 0, 0, 0.0])
            continue
        rows.append(
            [
                name,
                hist.percentile(0.25),
                hist.percentile(0.50),
                hist.percentile(0.75),
                hist.percentile(0.90),
                breakdown.burstiness(),
            ]
        )
    return ExperimentResult(
        experiment_id="f5",
        title="Inter-miss-event interval length distribution",
        headers=["workload", "p25", "p50", "p75", "p90", "CV"],
        rows=rows,
        notes=(
            "Heavily skewed distributions: many short intervals (bursty "
            "miss events) with long tails; CV near or above 1."
        ),
    )


def run_f6() -> ExperimentResult:
    """F6: penalty vs inherent program ILP (dependence-distance sweep)."""
    base = SPEC_PROFILES["parser"]
    rows = []
    for distance in (2.0, 3.0, 4.0, 6.0, 8.0, 12.0):
        profile = base.with_overrides(
            name=f"ilp-{distance}", mean_dependence_distance=distance
        )
        trace = generate_trace(
            profile, _SWEEP_LENGTH, seed=derive_seed(DEFAULT_SEED, "f6", distance)
        )
        result = simulate(trace, baseline_config())
        report = measure_penalties(result)
        rows.append(
            [
                distance,
                trace.dataflow_ipc(),
                report.mean_resolution,
                report.mean_penalty,
                result.ipc,
            ]
        )
    return ExperimentResult(
        experiment_id="f6",
        title="Penalty vs inherent ILP (C3)",
        headers=[
            "mean dep distance",
            "dataflow IPC",
            "mean resolution",
            "mean penalty",
            "IPC",
        ],
        rows=rows,
        series={"resolution": [row[2] for row in rows]},
        notes=(
            "Lower ILP (shorter dependence distances) lengthens the chain "
            "feeding the branch: resolution falls as ILP rises."
        ),
    )


def run_f7() -> ExperimentResult:
    """F7: penalty vs functional-unit latency scaling (C4)."""
    rows = []
    for factor in (1.0, 1.5, 2.0, 3.0, 4.0):
        config = baseline_config().with_scaled_fu_latencies(factor)
        totals = [0.0, 0.0, 0.0]
        for name in ("parser", "twolf", "crafty"):
            result = simulate_workload(name, config=config, length=_SWEEP_LENGTH)
            report = measure_penalties(result)
            totals[0] += report.mean_resolution
            totals[1] += report.mean_penalty
            totals[2] += result.ipc
        rows.append(
            [factor, totals[0] / 3, totals[1] / 3, totals[2] / 3]
        )
    return ExperimentResult(
        experiment_id="f7",
        title="Penalty vs functional-unit latency (C4)",
        headers=["latency scale", "mean resolution", "mean penalty", "IPC"],
        rows=rows,
        series={"resolution": [row[1] for row in rows]},
        notes="Resolution grows with FU latency (chain slowdown), IPC falls.",
    )


def run_f8() -> ExperimentResult:
    """F8: penalty vs short (L1) D-cache miss rate (C5)."""
    base = SPEC_PROFILES["parser"].with_overrides(
        dl2_miss_rate=0.0, il1_mpki=0.0
    )
    rows = []
    seeds = 3
    for rate in (0.0, 0.02, 0.05, 0.10, 0.20):
        profile = base.with_overrides(name=f"dl1-{rate}", dl1_miss_rate=rate)
        resolution = penalty = ipc = 0.0
        for rep in range(seeds):
            trace = generate_trace(
                profile,
                _SWEEP_LENGTH,
                seed=derive_seed(DEFAULT_SEED, "f8", rate, rep),
            )
            result = simulate(trace, baseline_config())
            report = measure_penalties(result)
            resolution += report.mean_resolution
            penalty += report.mean_penalty
            ipc += result.ipc
        rows.append(
            [rate, resolution / seeds, penalty / seeds, ipc / seeds]
        )
    return ExperimentResult(
        experiment_id="f8",
        title="Penalty vs short (L1) D-cache miss rate (C5)",
        headers=["DL1 miss rate", "mean resolution", "mean penalty", "IPC"],
        rows=rows,
        series={"resolution": [row[1] for row in rows]},
        notes=(
            "Short misses are not miss events but their L2-hit latency on "
            "the branch's backward slice inflates the resolution time."
        ),
    )


def run_f9() -> ExperimentResult:
    """F9: penalty vs window (ROB) size."""
    rows = []
    for rob in (32, 64, 128, 256):
        config = baseline_config().with_overrides(rob_size=rob)
        totals = [0.0, 0.0, 0.0]
        names = ("parser", "twolf", "bzip2")
        for name in names:
            result = simulate_workload(name, config=config, length=_SWEEP_LENGTH)
            report = measure_penalties(result)
            totals[0] += report.mean_resolution
            totals[1] += report.mean_penalty
            totals[2] += result.ipc
        rows.append([rob, totals[0] / 3, totals[1] / 3, totals[2] / 3])
    return ExperimentResult(
        experiment_id="f9",
        title="Penalty vs window (ROB) size",
        headers=["ROB size", "mean resolution", "mean penalty", "IPC"],
        rows=rows,
        series={"resolution": [row[1] for row in rows]},
        notes=(
            "Bigger windows hold more not-yet-executed work ahead of the "
            "branch: resolution grows sublinearly with window size while "
            "IPC also improves — the penalty/performance tension."
        ),
    )


def run_f10() -> ExperimentResult:
    """F10: interval CPI stacks per workload."""
    config = baseline_config()
    rows = []
    for name in SUITE:
        result = simulate_workload(name)
        stack = build_cpi_stack(result, config.dispatch_width)
        cpi = stack.component_cpi()
        rows.append(
            [
                name,
                cpi["base"],
                cpi["bpred"],
                cpi["icache"],
                cpi["long_dcache"],
                cpi["other"],
                stack.cpi,
            ]
        )
    return ExperimentResult(
        experiment_id="f10",
        title="Interval CPI stacks",
        headers=[
            "workload",
            "base",
            "bpred",
            "icache",
            "long D$",
            "other",
            "total CPI",
        ],
        rows=rows,
        notes="Components sum to total CPI; bpred share tracks mispred/ki x penalty.",
    )


def run_t3() -> ExperimentResult:
    """T3: first-order interval model vs simulation."""
    config = baseline_config()
    rows = []
    for name in SUITE:
        trace = workload_trace(name)
        result = simulate_workload(name)
        model = IntervalModel(config)
        prediction = model.predict(trace)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                result.cpi,
                prediction.cpi,
                100.0 * prediction.error_vs(result),
                report.mean_penalty,
                prediction.mean_penalty,
            ]
        )
    return ExperimentResult(
        experiment_id="t3",
        title="Interval model accuracy vs simulation",
        headers=[
            "workload",
            "sim CPI",
            "model CPI",
            "CPI error %",
            "sim penalty",
            "model penalty",
        ],
        rows=rows,
        notes=(
            "The first-order model, evaluated from trace statistics alone, "
            "tracks simulated CPI and the mean misprediction penalty."
        ),
    )


def run_f11() -> ExperimentResult:
    """F11: five-contributor attribution of the penalty per workload."""
    config = baseline_config()
    rows = []
    for name in SUITE:
        trace = workload_trace(name)
        result = simulate_workload(name)
        breakdown = decompose_contributors(
            trace, result, config, max_events=_SLICE_CAP
        )
        rows.append(
            [
                name,
                breakdown.refill,
                breakdown.ilp_chain,
                breakdown.fu_latency_extra,
                breakdown.short_miss_extra,
                breakdown.residual,
                breakdown.mean_penalty,
                breakdown.mean_gap,
            ]
        )
    return ExperimentResult(
        experiment_id="f11",
        title="Five-contributor penalty attribution",
        headers=[
            "workload",
            "C1 refill",
            "C3 ILP chain",
            "C4 FU latency",
            "C5 short D$",
            "residual",
            "total penalty",
            "C2 mean gap",
        ],
        rows=rows,
        notes=(
            "C1+C3+C4+C5+residual = penalty; C2 acts through the gap/"
            "window occupancy that bounds the sliced chain."
        ),
    )


def run_f12() -> ExperimentResult:
    """F12: ILP power-law profile fit per workload."""
    rows = []
    for name in SUITE:
        trace = workload_trace(name)
        fit = fit_ilp_profile(trace)
        rows.append(
            [
                name,
                fit.alpha,
                fit.beta,
                fit.r_squared,
                fit.predict_drain(128),
                trace.dataflow_ipc(),
            ]
        )
    return ExperimentResult(
        experiment_id="f12",
        title="ILP profile power-law fit K(w) = alpha * w^beta",
        headers=["workload", "alpha", "beta", "R^2", "K(128)", "dataflow IPC"],
        rows=rows,
        notes="The window-drain model behind C3; R^2 near 1 validates the law.",
    )


def run_f13() -> ExperimentResult:
    """F13 (ablation): wrong-path dispatch vs dispatch-stop."""
    rows = []
    for name in ("parser", "twolf", "gzip"):
        stop = simulate_workload(name, length=_SWEEP_LENGTH)
        wrong_path = simulate_workload(
            name,
            config=baseline_config().with_overrides(dispatch_wrong_path=True),
            length=_SWEEP_LENGTH,
        )
        stop_report = measure_penalties(stop)
        wp_report = measure_penalties(wrong_path)
        rows.append(
            [
                name,
                stop_report.mean_penalty,
                wp_report.mean_penalty,
                stop.ipc,
                wrong_path.ipc,
                wrong_path.squashed_ghosts,
            ]
        )
    return ExperimentResult(
        experiment_id="f13",
        title="Ablation: wrong-path ghost dispatch vs dispatch stop",
        headers=[
            "workload",
            "penalty (stop)",
            "penalty (wrong-path)",
            "IPC (stop)",
            "IPC (wrong-path)",
            "ghosts squashed",
        ],
        rows=rows,
        notes=(
            "Wrong-path work occupies window and issue slots; the penalty "
            "definition (resolution + refill) is insensitive to it, "
            "validating the dispatch-stop default."
        ),
    )


def run_f14() -> ExperimentResult:
    """F14 (ablation): oldest-first vs random-ready issue selection."""
    rows = []
    for name in ("parser", "twolf", "crafty"):
        oldest = simulate_workload(name, length=_SWEEP_LENGTH)
        random_cfg = baseline_config().with_overrides(issue_policy="random")
        random_result = simulate_workload(
            name, config=random_cfg, length=_SWEEP_LENGTH
        )
        rows.append(
            [
                name,
                measure_penalties(oldest).mean_penalty,
                measure_penalties(random_result).mean_penalty,
                oldest.ipc,
                random_result.ipc,
            ]
        )
    return ExperimentResult(
        experiment_id="f14",
        title="Ablation: issue selection policy",
        headers=[
            "workload",
            "penalty (oldest)",
            "penalty (random)",
            "IPC (oldest)",
            "IPC (random)",
        ],
        rows=rows,
        notes=(
            "Random-ready selection delays old chains (including the "
            "branch's), lengthening resolution tails and losing IPC."
        ),
    )


def run_f15() -> ExperimentResult:
    """F15 (ablation): sensitivity of segmentation to the event definition."""
    rows = []
    for name in SUITE[:6]:
        trace = workload_trace(name)
        paper_events = 0
        extended_events = 0
        last_paper = -1
        last_ext = -1
        paper_gaps = []
        ext_gaps = []
        for seq, record in enumerate(trace.records):
            is_paper_event = (
                (record.is_branch and record.mispredict)
                or record.il1_miss
                or (record.is_load and record.dl2_miss)
            )
            is_short = bool(record.is_load and record.dl1_miss)
            if is_paper_event:
                paper_events += 1
                paper_gaps.append(seq - last_paper)
                last_paper = seq
            if is_paper_event or is_short:
                extended_events += 1
                ext_gaps.append(seq - last_ext)
                last_ext = seq
        n = len(trace.records)
        rows.append(
            [
                name,
                1000.0 * paper_events / n,
                1000.0 * extended_events / n,
                sum(paper_gaps) / len(paper_gaps) if paper_gaps else 0.0,
                sum(ext_gaps) / len(ext_gaps) if ext_gaps else 0.0,
            ]
        )
    return ExperimentResult(
        experiment_id="f15",
        title="Ablation: counting short D-misses as miss events",
        headers=[
            "workload",
            "events/ki (paper)",
            "events/ki (+short)",
            "mean gap (paper)",
            "mean gap (+short)",
        ],
        rows=rows,
        notes=(
            "Treating short misses as events shreds intervals; the paper's "
            "definition keeps them as latency contributors (C5) instead."
        ),
    )


def run_f16() -> ExperimentResult:
    """F16 (extension): interval simulation vs cycle-level simulation."""
    from repro.interval.fast_sim import compare_with_detailed

    config = baseline_config()
    rows = []
    for name in SUITE:
        trace = workload_trace(name)
        comparison = compare_with_detailed(trace, config)
        rows.append(
            [
                name,
                comparison["detailed_cycles"],
                comparison["fast_cycles"],
                100.0 * comparison["cpi_error"],
                comparison["speedup"],
                comparison["detailed_penalty"],
                comparison["fast_penalty"],
            ]
        )
    return ExperimentResult(
        experiment_id="f16",
        title="Interval simulation vs cycle-level simulation",
        headers=[
            "workload",
            "detailed cycles",
            "fast cycles",
            "CPI error %",
            "speedup",
            "sim penalty",
            "fast penalty",
        ],
        rows=rows,
        notes=(
            "One-pass interval simulation (the Sniper lineage) tracks "
            "cycle-level CPI within a few percent at an order-of-"
            "magnitude speedup."
        ),
    )


def run_f17() -> ExperimentResult:
    """F17 (extension): predictor quality vs misprediction cost.

    Real kernel traces, structural simulation: better predictors cut
    the number of penalties, not their size — the penalty per event is
    a property of the machine and the code, exactly the paper's point.
    """
    from repro.frontend.base import BranchUnit
    from repro.frontend.bimodal import BimodalPredictor
    from repro.frontend.btb import BranchTargetBuffer
    from repro.frontend.gshare import GSharePredictor
    from repro.frontend.static import StaticPredictor
    from repro.frontend.tage import TAGEPredictor
    from repro.frontend.tournament import TournamentPredictor
    from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
    from repro.pipeline.annotate import StructuralAnnotator
    from repro.workloads.kernels import kernel_trace

    config = baseline_config()
    trace = kernel_trace("branchy_search")
    predictors = [
        ("static-taken", lambda: StaticPredictor(predict_taken=True)),
        ("bimodal", BimodalPredictor),
        ("gshare", GSharePredictor),
        ("tournament", TournamentPredictor),
        ("tage", TAGEPredictor),
    ]
    rows = []
    for name, make in predictors:
        annotator = StructuralAnnotator(
            config,
            BranchUnit(direction=make(), btb=BranchTargetBuffer()),
            CacheHierarchy(HierarchyConfig()),
        )
        result = simulate(trace, config, annotator=annotator)
        report = measure_penalties(result)
        rows.append(
            [
                name,
                1000.0 * report.count / result.instructions,
                report.mean_penalty if report.count else 0.0,
                result.ipc,
            ]
        )
    return ExperimentResult(
        experiment_id="f17",
        title="Predictor quality vs misprediction cost (branchy_search)",
        headers=["predictor", "mispred/ki", "mean penalty", "IPC"],
        rows=rows,
        notes=(
            "Accuracy changes how often the penalty is paid; the "
            "penalty per event stays in the same band across predictors."
        ),
    )


def run_f18() -> ExperimentResult:
    """F18 (extension): prefetching removes miss events.

    A streaming kernel whose footprint exceeds the L1 runs structurally
    with and without a stride D-prefetcher: the prefetcher converts
    misses into hits, removing miss events and stretching the inter-miss
    intervals — interval analysis sees prefetching as event thinning.
    """
    from repro.frontend.base import BranchUnit
    from repro.frontend.btb import BranchTargetBuffer
    from repro.frontend.tournament import TournamentPredictor
    from repro.interval.segmentation import segment_intervals
    from repro.memory.hierarchy import CacheHierarchy, HierarchyConfig
    from repro.memory.prefetch import (
        PrefetchingHierarchyAdapter,
        StridePrefetcher,
    )
    from repro.pipeline.annotate import StructuralAnnotator
    from repro.workloads.kernels import stride_sum

    config = baseline_config()
    trace = stride_sum(elements=24_576, stride=1).run()  # 192 KiB > L1
    rows = []
    for label, use_prefetcher in (("no prefetch", False), ("stride prefetch", True)):
        hierarchy = CacheHierarchy(HierarchyConfig())
        memory_system = hierarchy
        prefetcher = None
        if use_prefetcher:
            prefetcher = StridePrefetcher(hierarchy.l1d, degree=4)
            memory_system = PrefetchingHierarchyAdapter(
                hierarchy, data_prefetcher=prefetcher
            )
        annotator = StructuralAnnotator(
            config,
            BranchUnit(direction=TournamentPredictor(),
                       btb=BranchTargetBuffer()),
            memory_system,
        )
        result = simulate(trace, config, annotator=annotator)
        breakdown = segment_intervals(result)
        rows.append(
            [
                label,
                hierarchy.l1d.stats.miss_rate,
                breakdown.event_count,
                breakdown.mean_interval_length,
                result.ipc,
                prefetcher.stats.accuracy if prefetcher else 0.0,
            ]
        )
    return ExperimentResult(
        experiment_id="f18",
        title="Prefetching as miss-event thinning (streaming kernel)",
        headers=[
            "configuration",
            "L1D miss rate",
            "miss events",
            "mean interval",
            "IPC",
            "prefetch accuracy",
        ],
        rows=rows,
        notes=(
            "The stride prefetcher removes D-side misses: fewer miss "
            "events, longer intervals, higher IPC."
        ),
    )


def run_f19() -> ExperimentResult:
    """F19 (extension): penalty vs machine width.

    Wider machines fill the window faster and drain it faster; the two
    effects partially cancel, so the penalty is far less width-sensitive
    than raw IPC — another instance of the paper's theme that the
    penalty is set by the program's chains, not by one machine knob.
    """
    rows = []
    for width in (1, 2, 4, 8):
        config = baseline_config().with_overrides(
            dispatch_width=width, issue_width=width, commit_width=width
        )
        totals = [0.0, 0.0, 0.0]
        names = ("parser", "twolf", "gzip")
        for name in names:
            result = simulate_workload(name, config=config, length=_SWEEP_LENGTH)
            report = measure_penalties(result)
            totals[0] += report.mean_resolution
            totals[1] += report.mean_penalty
            totals[2] += result.ipc
        rows.append([width, totals[0] / 3, totals[1] / 3, totals[2] / 3])
    return ExperimentResult(
        experiment_id="f19",
        title="Penalty vs machine width",
        headers=["width", "mean resolution", "mean penalty", "IPC"],
        rows=rows,
        series={"resolution": [row[1] for row in rows]},
        notes=(
            "IPC scales strongly with width while the penalty moves far "
            "less: the resolution time is chain-bound, not width-bound."
        ),
    )


def run_f20() -> ExperimentResult:
    """F20 (extension): the penalty is an out-of-order phenomenon.

    The same traces on a scoreboarded in-order core: the branch issues
    almost as soon as it is fetched, so the resolution time collapses
    and folk wisdom (penalty ~ frontend depth) becomes nearly true —
    the paper's large penalties come from the out-of-order window.
    """
    from repro.pipeline.inorder import simulate_inorder

    config = baseline_config()
    rows = []
    for name in ("gzip", "crafty", "parser", "twolf"):
        trace = workload_trace(name, length=_SWEEP_LENGTH)
        ooo = simulate_workload(name, length=_SWEEP_LENGTH)
        ino = simulate_inorder(trace, config)
        ooo_report = measure_penalties(ooo)
        ino_report = measure_penalties(ino)
        rows.append(
            [
                name,
                ooo_report.mean_resolution,
                ino_report.mean_resolution,
                ooo_report.mean_penalty,
                ino_report.mean_penalty,
                ooo.ipc,
                ino.ipc,
            ]
        )
    return ExperimentResult(
        experiment_id="f20",
        title="Out-of-order vs in-order misprediction penalty",
        headers=[
            "workload",
            "resolution (OoO)",
            "resolution (in-order)",
            "penalty (OoO)",
            "penalty (in-order)",
            "IPC (OoO)",
            "IPC (in-order)",
        ],
        rows=rows,
        notes=(
            "In-order resolution collapses toward the execute latency: "
            "penalty ~ frontend depth holds there, and fails by 4-10x "
            "on the out-of-order machine."
        ),
    )


def run_f21() -> ExperimentResult:
    """F21 (extension): one-factor sensitivity tornado of the penalty.

    Each knob that expresses a contributor is varied low/high around the
    parser-like baseline while everything else is held fixed; the swing
    (high - low mean penalty) ranks the contributors for this workload
    class — the quantification the paper's abstract promises, in one
    table.
    """
    base_profile = SPEC_PROFILES["parser"].with_overrides(il1_mpki=0.0)
    base_config = baseline_config()

    def run_with(profile, config) -> float:
        trace = generate_trace(
            profile, _SWEEP_LENGTH, seed=derive_seed(DEFAULT_SEED, "f21",
                                                     profile.name)
        )
        result = simulate(trace, config)
        return measure_penalties(result).mean_penalty

    knobs = [
        (
            "C1 frontend depth 3 -> 20",
            lambda: run_with(base_profile, base_config.with_overrides(
                frontend_depth=3)),
            lambda: run_with(base_profile, base_config.with_overrides(
                frontend_depth=20)),
        ),
        (
            "C2 burstiness smooth -> heavy",
            lambda: run_with(base_profile.with_overrides(
                name="c2lo", burst_fraction=0.0), base_config),
            lambda: run_with(base_profile.with_overrides(
                name="c2hi", burst_fraction=0.4, burst_factor=8.0,
                burst_persistence=0.98), base_config),
        ),
        (
            "C3 ILP high -> low (dep dist 10 -> 2)",
            lambda: run_with(base_profile.with_overrides(
                name="c3lo", mean_dependence_distance=10.0), base_config),
            lambda: run_with(base_profile.with_overrides(
                name="c3hi", mean_dependence_distance=2.0), base_config),
        ),
        (
            "C4 FU latency x1 -> x3",
            lambda: run_with(base_profile, base_config),
            lambda: run_with(base_profile,
                             base_config.with_scaled_fu_latencies(3.0)),
        ),
        (
            "C5 short-miss rate 0 -> 0.20",
            lambda: run_with(base_profile.with_overrides(
                name="c5lo", dl1_miss_rate=0.0), base_config),
            lambda: run_with(base_profile.with_overrides(
                name="c5hi", dl1_miss_rate=0.20), base_config),
        ),
    ]
    rows = []
    for label, low_fn, high_fn in knobs:
        low = low_fn()
        high = high_fn()
        rows.append([label, low, high, high - low])
    rows.sort(key=lambda row: -abs(row[3]))
    return ExperimentResult(
        experiment_id="f21",
        title="Penalty sensitivity tornado (parser-like baseline)",
        headers=["contributor knob", "penalty (low)", "penalty (high)",
                 "swing"],
        rows=rows,
        notes=(
            "One-factor swings of the mean misprediction penalty; rows "
            "sorted by magnitude. All five contributors move the "
            "penalty; none is negligible."
        ),
    )


EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "t1": run_t1,
    "t2": run_t2,
    "f1": run_f1,
    "f2": run_f2,
    "f3": run_f3,
    "f4": run_f4,
    "f5": run_f5,
    "f6": run_f6,
    "f7": run_f7,
    "f8": run_f8,
    "f9": run_f9,
    "f10": run_f10,
    "t3": run_t3,
    "f11": run_f11,
    "f12": run_f12,
    "f13": run_f13,
    "f14": run_f14,
    "f15": run_f15,
    "f16": run_f16,
    "f17": run_f17,
    "f18": run_f18,
    "f19": run_f19,
    "f20": run_f20,
    "f21": run_f21,
}


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one experiment by id (``t1``..``t3``, ``f1``..``f15``)."""
    try:
        runner = EXPERIMENTS[experiment_id.lower()]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {sorted(EXPERIMENTS)}"
        ) from None
    return runner()


def run_all(
    workers: int = 1, use_cache: bool = True
) -> List[ExperimentResult]:
    """Run the full table/figure suite in DESIGN.md order.

    Execution goes through :mod:`repro.lab`: results are served from
    the persistent store when warm, and ``workers > 1`` fans the
    experiments out across a process pool. Any failed experiment job
    raises (use :func:`repro.lab.run_experiments` directly for
    failure-tolerant batches).
    """
    from repro.lab import run_experiments

    results, telemetry = run_experiments(
        list(EXPERIMENTS), workers=workers, use_cache=use_cache
    )
    failures = telemetry.failures()
    if failures:
        raise RuntimeError(
            f"{len(failures)} experiment job(s) failed; first: "
            f"{failures[0].label}\n{failures[0].error}"
        )
    return results
