"""Parameter sweep helper used by the sensitivity experiments.

A sweep point that raises no longer aborts the sweep: the exception is
captured per point, the metric series get a NaN placeholder at that
index, and every other point's measurement survives. Callers that want
the old fail-fast behavior pass ``strict=True``.

Declarative sweeps over :class:`~repro.pipeline.config.CoreConfig`
fields should prefer :class:`repro.lab.jobs.SweepJob`, which expands
into content-addressed jobs the lab pool can cache and parallelize;
this helper remains for ad-hoc callable-based sweeps.
"""

from __future__ import annotations

import math
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence


@dataclass
class SweepFailure:
    """One failed sweep point: the value and the captured traceback."""

    index: int
    value: object
    error: str


@dataclass
class SweepOutcome:
    """Everything a sweep produced.

    ``series`` has one entry per point per metric, NaN where the point
    failed; ``failures`` records what went wrong where.
    """

    parameter: str
    values: List[object] = field(default_factory=list)
    series: Dict[str, List[float]] = field(default_factory=dict)
    failures: List[SweepFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


@dataclass
class Sweep:
    """One-dimensional parameter sweep.

    ``runner`` maps a parameter value to a dict of measured metrics;
    :meth:`run` collects them into parallel series keyed by metric.
    """

    parameter: str
    values: Sequence[object]
    runner: Callable[[object], Dict[str, float]]

    def run_detailed(self, strict: bool = False) -> SweepOutcome:
        """Run every point, isolating per-point failures.

        Per-point metrics dicts are collected first and the series
        assembled afterwards, so a metric that only appears in later
        points still gets NaN padding for the earlier ones.
        """
        values = list(self.values)
        outcome = SweepOutcome(parameter=self.parameter, values=values)
        measured: List[Optional[Dict[str, float]]] = []
        for index, value in enumerate(values):
            try:
                measured.append(dict(self.runner(value)))
            except Exception:
                if strict:
                    raise
                measured.append(None)
                outcome.failures.append(
                    SweepFailure(
                        index=index, value=value, error=traceback.format_exc()
                    )
                )
        keys: List[str] = []
        for metrics in measured:
            if metrics:
                for key in metrics:
                    if key not in keys:
                        keys.append(key)
        for key in keys:
            outcome.series[key] = [
                metrics[key] if metrics is not None and key in metrics
                else math.nan
                for metrics in measured
            ]
        return outcome

    def run(self, strict: bool = False) -> Dict[str, List[float]]:
        """Metric series keyed by name (NaN at failed points)."""
        return self.run_detailed(strict=strict).series


def sweep_values(
    parameter: str,
    values: Sequence[object],
    runner: Callable[[object], Dict[str, float]],
    strict: bool = False,
) -> Dict[str, List[float]]:
    """Functional shortcut for :class:`Sweep`."""
    return Sweep(parameter=parameter, values=values, runner=runner).run(
        strict=strict
    )
