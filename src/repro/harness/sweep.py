"""Parameter sweep helper used by the sensitivity experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence


@dataclass
class Sweep:
    """One-dimensional parameter sweep.

    ``runner`` maps a parameter value to a dict of measured metrics;
    :meth:`run` collects them into parallel series keyed by metric.
    """

    parameter: str
    values: Sequence[object]
    runner: Callable[[object], Dict[str, float]]

    def run(self) -> Dict[str, List[float]]:
        series: Dict[str, List[float]] = {}
        for value in self.values:
            metrics = self.runner(value)
            for key, measurement in metrics.items():
                series.setdefault(key, []).append(measurement)
        return series


def sweep_values(
    parameter: str,
    values: Sequence[object],
    runner: Callable[[object], Dict[str, float]],
) -> Dict[str, List[float]]:
    """Functional shortcut for :class:`Sweep`."""
    return Sweep(parameter=parameter, values=values, runner=runner).run()
