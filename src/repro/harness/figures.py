"""ASCII rendering of figure-shaped results (bars and series)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple


def ascii_bar_chart(
    items: Sequence[Tuple[str, float]],
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart: one (label, value) bar per row."""
    if not items:
        return "(no data)"
    peak = max(abs(value) for _, value in items) or 1.0
    label_width = max(len(label) for label, _ in items)
    lines = []
    for label, value in items:
        bar = "#" * max(int(round(abs(value) / peak * width)), 0)
        lines.append(
            f"{label.rjust(label_width)} | {bar} {value:.2f}{unit}"
        )
    return "\n".join(lines)


def ascii_series(
    xs: Sequence[float],
    series: Dict[str, List[float]],
    width: int = 50,
    x_label: str = "x",
) -> str:
    """Tabular rendering of one or more y-series over shared x values."""
    names = list(series)
    header = [x_label] + names
    lines = ["  ".join(h.rjust(12) for h in header)]
    for i, x in enumerate(xs):
        cells = [f"{x:.6g}".rjust(12)]
        for name in names:
            ys = series[name]
            cells.append(
                f"{ys[i]:.3f}".rjust(12) if i < len(ys) else "-".rjust(12)
            )
        lines.append("  ".join(cells))
    return "\n".join(lines)


def ascii_stacked_bars(
    labels: Sequence[str],
    components: Dict[str, List[float]],
    width: int = 60,
) -> str:
    """Stacked horizontal bars (CPI stacks): one glyph per component."""
    glyphs = "#@*+x%o="
    names = list(components)
    totals = [
        sum(components[name][i] for name in names) for i in range(len(labels))
    ]
    peak = max(totals) if totals else 1.0
    label_width = max(len(label) for label in labels) if labels else 1
    lines = []
    for i, label in enumerate(labels):
        bar = ""
        for j, name in enumerate(names):
            value = components[name][i]
            bar += glyphs[j % len(glyphs)] * max(
                int(round(value / peak * width)), 0
            )
        lines.append(f"{label.rjust(label_width)} | {bar} ({totals[i]:.2f})")
    legend = "  ".join(
        f"{glyphs[j % len(glyphs)]}={name}" for j, name in enumerate(names)
    )
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
