"""Experiment harness: reproduces every table and figure in DESIGN.md.

Each experiment (T1-T3, F1-F15) is a function in
:mod:`repro.harness.experiments` returning an
:class:`~repro.harness.experiment.ExperimentResult` whose rows are the
table/series the paper reports. The benchmark files under
``benchmarks/`` are thin wrappers that time these functions and print
their rendered output; the examples call them directly.
"""

from repro.harness.experiment import ExperimentResult
from repro.harness.figures import ascii_bar_chart, ascii_series
from repro.harness.sweep import Sweep, sweep_values
from repro.harness.replication import Replicated, replicate
from repro.harness.runner import (
    baseline_config,
    clear_caches,
    simulate_workload,
    workload_trace,
)
from repro.harness import experiments

__all__ = [
    "ExperimentResult",
    "ascii_bar_chart",
    "ascii_series",
    "Sweep",
    "sweep_values",
    "Replicated",
    "replicate",
    "baseline_config",
    "clear_caches",
    "simulate_workload",
    "workload_trace",
    "experiments",
]
