"""Experiment result container and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.util.tabulate import format_markdown_table, format_table


@dataclass
class ExperimentResult:
    """One reproduced table or figure.

    ``rows`` are the printable rows (the same rows the paper's table or
    figure encodes); ``series`` optionally carries named numeric series
    for figure-shaped experiments; ``notes`` records the validation
    claim the experiment checks.
    """

    experiment_id: str
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    series: Dict[str, List[float]] = field(default_factory=dict)
    notes: str = ""

    def render(self, float_fmt: str = ".2f") -> str:
        """Aligned ASCII rendering for terminal output."""
        parts = [f"== {self.experiment_id.upper()}: {self.title} =="]
        parts.append(
            format_table(self.headers, self.rows, float_fmt=float_fmt)
        )
        if self.notes:
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)

    def render_markdown(self, float_fmt: str = ".2f") -> str:
        """Markdown rendering (EXPERIMENTS.md uses this)."""
        parts = [f"### {self.experiment_id.upper()}: {self.title}", ""]
        parts.append(
            format_markdown_table(self.headers, self.rows, float_fmt=float_fmt)
        )
        if self.notes:
            parts.extend(["", f"*{self.notes}*"])
        return "\n".join(parts)

    def column(self, name: str) -> List[object]:
        """Extract one column by header name."""
        try:
            index = list(self.headers).index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; have {list(self.headers)}"
            ) from None
        return [row[index] for row in self.rows]
