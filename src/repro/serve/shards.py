"""Shard-per-store-prefix execution: router, worker shards, replay.

The service partitions the content-address space by first byte:
shard ``i`` of ``n`` owns keys whose leading byte falls in
``[i*256/n, (i+1)*256/n)``. Routing is pure arithmetic on the key, so
any number of front doors agree on ownership without coordination, and
each shard's journal/heartbeat state is disjoint by construction.

Each :class:`Shard` owns:

- a single-worker ``ProcessPoolExecutor`` whose initializer is the
  lab's :func:`repro.resilience.watchdog.mark_worker_process` — the
  worker writes heartbeats (with a mid-job pulse) and honours the
  ``pool.worker`` fault site, exactly like batch pool workers;
- a write-ahead :class:`repro.resilience.journal.RunJournal` under the
  store's ``runs/`` directory (``<service>-shard<i>.journal.jsonl``):
  every accepted job is journaled *before* it is submitted, so a
  SIGKILL'd shard can be restarted and its in-flight work replayed —
  at-least-once execution on top of an idempotent, content-addressed
  job;
- restart bookkeeping the service's watchdog loop and ``status`` op
  report.

Shards are synchronous objects; the async service drives them through
``asyncio.to_thread`` / ``asyncio.wrap_future`` so the event loop
never blocks on executor management.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.lab.jobs import JobResult, JobSpec, execute_job
from repro.resilience.journal import JournalState, RunJournal
from repro.resilience.watchdog import (
    HeartbeatDir,
    WatchdogPolicy,
    mark_worker_process,
)


def shard_index(key: str, n_shards: int) -> int:
    """Owner shard of a content address (leading-byte range split)."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    return int(key[:2], 16) * n_shards // 256


class Shard:
    """One hash-prefix range: its executor, journal, and heartbeats."""

    def __init__(
        self,
        index: int,
        run_id: str,
        store_root: Optional[Union[str, Path]],
        runs_dir: Union[str, Path],
        heartbeat_root: Union[str, Path],
        use_cache: bool = True,
        watchdog_policy: Optional[WatchdogPolicy] = None,
    ) -> None:
        self.index = index
        self.run_id = f"{run_id}-shard{index}"
        self.store_root = str(store_root) if store_root else None
        self.use_cache = use_cache
        self.journal = RunJournal(runs_dir, self.run_id)
        self.heartbeats = HeartbeatDir(Path(heartbeat_root) / f"shard{index}")
        self.policy = watchdog_policy or WatchdogPolicy()
        self._executor: Optional[ProcessPoolExecutor] = None
        self.restarts = 0
        self.submitted = 0
        #: key -> spec for accepted-but-unfinished work (replay source
        #: within this process; the journal is the durable copy).
        self.pending: Dict[str, JobSpec] = {}
        #: key -> trace context dict for pending work, so a journal
        #: replay after a crash keeps the span tree of the original
        #: request instead of starting an orphan.
        self.pending_ctx: Dict[str, Dict[str, str]] = {}

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        if self._executor is not None:
            return
        self.heartbeats.root.mkdir(parents=True, exist_ok=True)
        self._executor = ProcessPoolExecutor(
            max_workers=1,
            initializer=mark_worker_process,
            initargs=(str(self.heartbeats.root), self.policy.worker_pulse_s),
        )

    def restart(self) -> None:
        """Tear down a (possibly broken) executor and start fresh."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        # Stale beat files would make the old (dead) pid look current.
        for path in self.heartbeats.root.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                continue
        self.restarts += 1
        self.start()

    def close(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self.journal.close()

    # -- work ---------------------------------------------------------

    def submit(
        self,
        key: str,
        spec: JobSpec,
        request: Dict[str, Any],
        trace_ctx: Optional[Dict[str, str]] = None,
    ) -> Future:
        """Journal the job (write-ahead), then hand it to the worker.

        The ``accepted`` note carries the client request verbatim so a
        future service generation could rebuild the spec from the
        journal alone; ``queued``/``started`` are the standard resume
        records :class:`JournalState` classifies. ``trace_ctx``
        (``{"trace_id": ..., "parent_span": ...}``) rides into the
        journal and the worker as data — pool workers outlive any one
        request, so parent-side env mutation cannot carry it.
        """
        if self._executor is None:
            self.start()
        if key not in self.pending:
            if trace_ctx:
                self.journal.note("accepted", key=key, request=request, **trace_ctx)
            else:
                self.journal.note("accepted", key=key, request=request)
            self.journal.queued(self.submitted, key, spec.label)
            self.pending[key] = spec
            if trace_ctx:
                self.pending_ctx[key] = dict(trace_ctx)
        self.journal.started(self.submitted, key)
        self.submitted += 1
        return self._executor.submit(
            execute_job, spec, self.store_root, self.use_cache,
            trace_ctx=trace_ctx,
        )

    def resubmit(self, key: str) -> Optional[Future]:
        """Replay one pending job after a restart (None if unknown)."""
        spec = self.pending.get(key)
        if spec is None:
            return None
        if self._executor is None:
            self.start()
        trace_ctx = self.pending_ctx.get(key)
        if trace_ctx:
            self.journal.note("replay", key=key, **trace_ctx)
        else:
            self.journal.note("replay", key=key)
        self.journal.started(self.submitted, key)
        self.submitted += 1
        return self._executor.submit(
            execute_job, spec, self.store_root, self.use_cache,
            trace_ctx=trace_ctx,
        )

    def complete(self, key: str, result: JobResult) -> None:
        from repro.lab.store import payload_digest

        self.pending.pop(key, None)
        self.pending_ctx.pop(key, None)
        self.journal.done(
            self.submitted,
            key,
            result.status,
            payload_digest(result.payload) if result.payload else None,
            result.attempts,
        )

    def fail(self, key: str, error: str) -> None:
        self.pending.pop(key, None)
        self.pending_ctx.pop(key, None)
        self.journal.failed(self.submitted, key, error, attempts=1)

    def journal_state(self) -> JournalState:
        """Parse this shard's journal (torn final line tolerated)."""
        return JournalState.load(self.journal.path)

    # -- introspection ------------------------------------------------

    def worker_pids(self) -> List[int]:
        return sorted(
            record["pid"]
            for record in self.heartbeats.beats()
            if record.get("pid") != os.getpid()
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "run_id": self.run_id,
            "submitted": self.submitted,
            "pending": len(self.pending),
            "restarts": self.restarts,
            "worker_pids": self.worker_pids(),
        }


class ShardSet:
    """The fixed ring of shards plus the routing function."""

    def __init__(
        self,
        n_shards: int,
        run_id: str,
        store_root: Optional[Union[str, Path]],
        runs_dir: Union[str, Path],
        heartbeat_root: Union[str, Path],
        use_cache: bool = True,
        watchdog_policy: Optional[WatchdogPolicy] = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.shards = [
            Shard(
                i,
                run_id,
                store_root,
                runs_dir,
                heartbeat_root,
                use_cache=use_cache,
                watchdog_policy=watchdog_policy,
            )
            for i in range(n_shards)
        ]

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def route(self, key: str) -> Shard:
        return self.shards[shard_index(key, len(self.shards))]

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def describe(self) -> List[Dict[str, Any]]:
        return [shard.describe() for shard in self.shards]


__all__ = ["Shard", "ShardSet", "shard_index"]
