"""Shard-per-store-prefix execution: router, worker shards, replay.

The service partitions the content-address space by first byte:
shard ``i`` of ``n`` owns keys whose leading byte falls in
``[i*256/n, (i+1)*256/n)``. Routing is pure arithmetic on the key, so
any number of front doors agree on ownership without coordination, and
each shard's journal/heartbeat state is disjoint by construction.

Each :class:`Shard` owns:

- a ``ProcessPoolExecutor`` of ``workers`` processes (>= 1) whose
  initializer is the lab's
  :func:`repro.resilience.watchdog.mark_worker_process` — workers
  write heartbeats (with a mid-job pulse), record per-pid *claim*
  files naming the key they are executing, and honour the
  ``pool.worker`` fault site, exactly like batch pool workers;
- a write-ahead :class:`repro.resilience.journal.RunJournal` under the
  store's ``runs/`` directory (``<service>-shard<i>.journal.jsonl``):
  every accepted job is journaled *before* it is submitted, so a
  SIGKILL'd shard can be restarted and its in-flight work replayed —
  at-least-once execution on top of an idempotent, content-addressed
  job;
- restart bookkeeping the service's watchdog loop and ``status`` op
  report.

**Multi-worker crash triage.** ``ProcessPoolExecutor`` semantics make
one worker's death break the *whole* pool: every in-flight future
raises ``BrokenExecutor``, even for workers that were healthy. Two
mechanisms keep the journal's at-least-once story exact anyway:

- *worker attribution*: each worker claims its key in
  ``<heartbeats>/<pid>.claims.jsonl`` before executing. At recovery
  the dead pid's claims are intersected with the pending table and
  journaled as a ``worker-death`` note — so the journal records which
  keys the dead worker was actually holding, not merely "everything
  in flight on the shard". Keys held by workers that were alive at
  the crash are *not* attributed to the death; their requests recover
  through the ordinary resubmit path (and usually replay from the
  store, since those workers often finished and published before the
  pool tore down).
- *generation-guarded restart*: with N workers, N awaiting requests
  see ``BrokenExecutor`` nearly simultaneously. Each captured the
  shard's ``generation`` at submit; :meth:`Shard.recover` restarts
  the pool only for the first observer whose generation still
  matches — later observers see the bump, skip the (destructive)
  restart, and go straight to resubmission on the fresh pool. Without
  the guard, the second restart would SIGKILL the pool the first one
  just built, along with any work already resubmitted onto it.

Shards are synchronous objects; the async service drives them through
``asyncio.to_thread`` / ``asyncio.wrap_future`` so the event loop
never blocks on executor management. Executor-management state
(generation, restart) is serialized by a per-shard lock because those
``to_thread`` hops land on different threads.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.lab.jobs import JobResult, JobSpec, execute_job
from repro.resilience.journal import JournalState, RunJournal
from repro.resilience.watchdog import (
    HeartbeatDir,
    WatchdogPolicy,
    mark_worker_process,
    pid_dead,
)


def shard_index(key: str, n_shards: int) -> int:
    """Owner shard of a content address (leading-byte range split)."""
    if n_shards <= 0:
        raise ValueError(f"n_shards must be positive, got {n_shards}")
    return int(key[:2], 16) * n_shards // 256


class Shard:
    """One hash-prefix range: its executor, journal, and heartbeats."""

    def __init__(
        self,
        index: int,
        run_id: str,
        store_root: Optional[Union[str, Path]],
        runs_dir: Union[str, Path],
        heartbeat_root: Union[str, Path],
        use_cache: bool = True,
        watchdog_policy: Optional[WatchdogPolicy] = None,
        workers: int = 1,
    ) -> None:
        if workers <= 0:
            raise ValueError(f"workers must be positive, got {workers}")
        self.index = index
        self.run_id = f"{run_id}-shard{index}"
        self.store_root = str(store_root) if store_root else None
        self.use_cache = use_cache
        self.workers = workers
        self.journal = RunJournal(runs_dir, self.run_id)
        self.heartbeats = HeartbeatDir(Path(heartbeat_root) / f"shard{index}")
        self.policy = watchdog_policy or WatchdogPolicy()
        self._executor: Optional[ProcessPoolExecutor] = None
        #: Serializes executor lifecycle (start/restart/recover): the
        #: async service reaches these methods from to_thread workers,
        #: so concurrent BrokenExecutor observers race without it.
        self._lock = threading.Lock()
        #: Bumped on every restart; observers capture it at submit and
        #: present it to :meth:`recover`, which restarts only for the
        #: first observer of a given generation's corpse.
        self.generation = 0
        self.restarts = 0
        self.submitted = 0
        #: key -> spec for accepted-but-unfinished work (replay source
        #: within this process; the journal is the durable copy).
        self.pending: Dict[str, JobSpec] = {}
        #: key -> trace context dict for pending work, so a journal
        #: replay after a crash keeps the span tree of the original
        #: request instead of starting an orphan.
        self.pending_ctx: Dict[str, Dict[str, str]] = {}
        #: key -> absolute monotonic deadline (ns) for pending work;
        #: rides into the worker so resubmissions keep the original
        #: request's budget.
        self.pending_deadline: Dict[str, int] = {}

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        with self._lock:
            self._start_locked()

    def _start_locked(self) -> None:
        if self._executor is not None:
            return
        self.heartbeats.root.mkdir(parents=True, exist_ok=True)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=mark_worker_process,
            initargs=(str(self.heartbeats.root), self.policy.worker_pulse_s),
        )

    def restart(self) -> None:
        """Tear down a (possibly broken) executor and start fresh."""
        with self._lock:
            self._restart_locked()

    def _restart_locked(self) -> None:
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        # Stale beat files would make the old (dead) pids look current.
        for path in self.heartbeats.root.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                continue
        self.generation += 1
        self.restarts += 1
        self._start_locked()

    def recover(self, observed_generation: int) -> Optional[Dict[int, List[str]]]:
        """Crash triage for one ``BrokenExecutor`` observer.

        Returns ``None`` when another observer already recovered this
        corpse (the caller should skip straight to resubmission);
        otherwise triages dead workers (journaling ``worker-death``
        notes attributing each dead pid's claimed in-flight keys),
        restarts the pool, and returns the ``{pid: [keys]}``
        attribution map.
        """
        with self._lock:
            if observed_generation != self.generation:
                return None
            attribution = self._triage_dead_workers_locked()
            self._restart_locked()
            return attribution

    def _triage_dead_workers_locked(self) -> Dict[int, List[str]]:
        """Attribute in-flight keys to dead workers, via their claims.

        A pid is *dead* when its process is gone or a zombie
        (:func:`repro.resilience.watchdog.pid_dead`); its attributed
        keys are its claims intersected with the pending table (claims
        from already-completed work are stale and dropped by the
        intersection). Each dead pid gets one ``worker-death`` journal
        note — the worker attribution the multi-worker at-least-once
        proof rests on.
        """
        attribution: Dict[int, List[str]] = {}
        for record in self.heartbeats.beats():
            pid = record.get("pid")
            if not isinstance(pid, int) or pid == os.getpid():
                continue
            if not pid_dead(pid):
                continue
            keys = [
                key
                for key in self.heartbeats.claimed_keys(pid)
                if key in self.pending
            ]
            attribution[pid] = keys
            self.journal.note(
                "worker-death",
                pid=pid,
                keys=keys,
                shard=self.index,
                generation=self.generation,
            )
            self.heartbeats.clear_claims(pid)
        return attribution

    def close(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
        self.journal.close()

    # -- work ---------------------------------------------------------

    def submit(
        self,
        key: str,
        spec: JobSpec,
        request: Dict[str, Any],
        trace_ctx: Optional[Dict[str, str]] = None,
        deadline_ns: Optional[int] = None,
    ) -> Future:
        """Journal the job (write-ahead), then hand it to a worker.

        The ``accepted`` note carries the client request verbatim so a
        future service generation could rebuild the spec from the
        journal alone; ``queued``/``started`` are the standard resume
        records :class:`JournalState` classifies. ``trace_ctx``
        (``{"trace_id": ..., "parent_span": ...}``) rides into the
        journal and the worker as data — pool workers outlive any one
        request, so parent-side env mutation cannot carry it — and
        ``deadline_ns`` rides the same way so the worker can drop
        already-expired work at dequeue.
        """
        if self._executor is None:
            self.start()
        if key not in self.pending:
            if trace_ctx:
                self.journal.note("accepted", key=key, request=request, **trace_ctx)
            else:
                self.journal.note("accepted", key=key, request=request)
            self.journal.queued(self.submitted, key, spec.label)
            self.pending[key] = spec
            if trace_ctx:
                self.pending_ctx[key] = dict(trace_ctx)
            if deadline_ns is not None:
                self.pending_deadline[key] = int(deadline_ns)
        self.journal.started(self.submitted, key)
        self.submitted += 1
        return self._executor.submit(
            execute_job, spec, self.store_root, self.use_cache,
            trace_ctx=trace_ctx, deadline_ns=deadline_ns,
        )

    def resubmit(self, key: str) -> Optional[Future]:
        """Replay one pending job after a restart (None if unknown)."""
        spec = self.pending.get(key)
        if spec is None:
            return None
        if self._executor is None:
            self.start()
        trace_ctx = self.pending_ctx.get(key)
        if trace_ctx:
            self.journal.note("replay", key=key, **trace_ctx)
        else:
            self.journal.note("replay", key=key)
        self.journal.started(self.submitted, key)
        self.submitted += 1
        return self._executor.submit(
            execute_job, spec, self.store_root, self.use_cache,
            trace_ctx=trace_ctx,
            deadline_ns=self.pending_deadline.get(key),
        )

    def complete(self, key: str, result: JobResult) -> None:
        from repro.lab.store import payload_digest

        self.pending.pop(key, None)
        self.pending_ctx.pop(key, None)
        self.pending_deadline.pop(key, None)
        self.journal.done(
            self.submitted,
            key,
            result.status,
            payload_digest(result.payload) if result.payload else None,
            result.attempts,
        )

    def fail(self, key: str, error: str) -> None:
        self.pending.pop(key, None)
        self.pending_ctx.pop(key, None)
        self.pending_deadline.pop(key, None)
        self.journal.failed(self.submitted, key, error, attempts=1)

    def journal_state(self) -> JournalState:
        """Parse this shard's journal (torn final line tolerated)."""
        return JournalState.load(self.journal.path)

    # -- introspection ------------------------------------------------

    def worker_pids(self) -> List[int]:
        return sorted(
            record["pid"]
            for record in self.heartbeats.beats()
            if record.get("pid") != os.getpid()
        )

    def describe(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "run_id": self.run_id,
            "workers": self.workers,
            "generation": self.generation,
            "submitted": self.submitted,
            "pending": len(self.pending),
            "restarts": self.restarts,
            "worker_pids": self.worker_pids(),
        }


class ShardSet:
    """The fixed ring of shards plus the routing function."""

    def __init__(
        self,
        n_shards: int,
        run_id: str,
        store_root: Optional[Union[str, Path]],
        runs_dir: Union[str, Path],
        heartbeat_root: Union[str, Path],
        use_cache: bool = True,
        watchdog_policy: Optional[WatchdogPolicy] = None,
        workers: int = 1,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.shards = [
            Shard(
                i,
                run_id,
                store_root,
                runs_dir,
                heartbeat_root,
                use_cache=use_cache,
                watchdog_policy=watchdog_policy,
                workers=workers,
            )
            for i in range(n_shards)
        ]

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def route(self, key: str) -> Shard:
        return self.shards[shard_index(key, len(self.shards))]

    def start(self) -> None:
        for shard in self.shards:
            shard.start()

    def close(self) -> None:
        for shard in self.shards:
            shard.close()

    def describe(self) -> List[Dict[str, Any]]:
        return [shard.describe() for shard in self.shards]


__all__ = ["Shard", "ShardSet", "shard_index"]
