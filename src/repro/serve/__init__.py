"""repro.serve — the sharded async experiment service.

The batch lab answers "run these experiments"; serve answers "keep
answering simulate/sweep queries, fast, forever". It is a thin asyncio
front door over the primitives every prior layer already provides:

- :mod:`repro.serve.protocol` — JSON-lines request/response frames,
  validation, and the job-spec mapping (requests are content-addressed
  through the same :func:`repro.lab.store.job_key` as batch runs);
- :mod:`repro.serve.cache` — tier-0 in-process LRU (byte-bounded) over
  pluggable verified disk backends (the lab store plus an independent
  directory tier);
- :mod:`repro.serve.shards` — hash-prefix worker shards with
  write-ahead journals, heartbeats, and crash-restart replay;
- :mod:`repro.serve.service` — request coalescing (singleflight per
  content address), the tier walk, shard dispatch, metrics, and the
  TCP server;
- :mod:`repro.serve.client` — the synchronous client helper the tests,
  CI driver, and ``repro serve status`` use.

Start one with ``python -m repro serve run``; see ``docs/serve.md``.
"""

from repro.serve.cache import (
    CacheBackend,
    DirectoryBackend,
    StoreBackend,
    TieredCache,
)
from repro.serve.client import ServeClient, ServeClientError, read_endpoint
from repro.serve.protocol import ProtocolError, ShardCrashError
from repro.serve.service import (
    BackgroundServer,
    ExperimentService,
    ServeServer,
    endpoint_path,
)
from repro.serve.shards import Shard, ShardSet, shard_index

__all__ = [
    "BackgroundServer",
    "CacheBackend",
    "DirectoryBackend",
    "ExperimentService",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "Shard",
    "ShardCrashError",
    "ShardSet",
    "StoreBackend",
    "TieredCache",
    "endpoint_path",
    "read_endpoint",
    "shard_index",
]
