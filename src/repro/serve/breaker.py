"""Client-side circuit breaker: stop hammering an endpoint that's down.

Retries alone make overload worse — a client that keeps re-sending
into a struggling service converts one failure into a failure storm.
The breaker is the client's half of the overload contract
(:mod:`repro.serve.admission` is the server's): after enough
consecutive failures against one endpoint it *opens* and fails calls
locally, instantly, with :class:`CircuitOpenError`; after a seeded
jittered cooldown it goes *half-open* and lets a bounded number of
probe calls through; one probe success closes it again, one probe
failure re-opens it with a longer cooldown.

State machine per endpoint (an endpoint is whatever string the caller
keys by — :class:`repro.serve.client.ServeClient` uses the op name)::

    closed ──(failure_threshold consecutive failures)──> open
    open ──(cooldown elapsed)──> half-open
    half-open ──(probe success)──> closed
    half-open ──(probe failure)──> open (cooldown doubled, jittered)

Cooldowns are deterministic: ``base * 2**(opens-1)`` scaled by a
uniform [0.5, 1.5) factor from a SplitMix stream keyed on
``(seed, "breaker", endpoint, opens)`` — the same failure sequence
always produces the same cooldowns, while two endpoints (or two
clients with different seeds) never re-probe in lockstep.

The clock is injectable (``clock()`` returning monotonic seconds) so
tests drive transitions without sleeping. Thread-safe: one lock
guards all endpoint state, and no callback runs under it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.util.rng import SplitMix, derive_seed

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(RuntimeError):
    """The breaker refused the call locally (endpoint circuit open).

    Carries ``retry_in_s`` — how long until the breaker would go
    half-open — so callers can schedule their next attempt instead of
    spinning.
    """

    def __init__(self, endpoint: str, retry_in_s: float) -> None:
        super().__init__(
            f"circuit open for endpoint '{endpoint}'; "
            f"retry in {retry_in_s:.3f}s"
        )
        self.endpoint = endpoint
        self.retry_in_s = retry_in_s


@dataclass
class _EndpointState:
    state: str = CLOSED
    failures: int = 0
    #: Lifetime open transitions — the cooldown jitter sequence number.
    opens: int = 0
    opened_at: float = 0.0
    cooldown_s: float = 0.0
    probes_inflight: int = 0
    stats: Dict[str, int] = field(
        default_factory=lambda: {"allowed": 0, "rejected": 0}
    )


class CircuitBreaker:
    """Per-endpoint closed/open/half-open breaker with seeded cooldowns."""

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_base_s: float = 0.25,
        cooldown_cap_s: float = 30.0,
        half_open_probes: int = 1,
        seed: int = 2006,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError(
                f"failure_threshold must be positive, got {failure_threshold}"
            )
        if half_open_probes <= 0:
            raise ValueError(
                f"half_open_probes must be positive, got {half_open_probes}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_base_s = cooldown_base_s
        self.cooldown_cap_s = cooldown_cap_s
        self.half_open_probes = half_open_probes
        self.seed = seed
        self.clock = clock or time.monotonic
        self._lock = threading.Lock()
        self._endpoints: Dict[str, _EndpointState] = {}

    # -- the call protocol --------------------------------------------

    def before_call(self, endpoint: str) -> None:
        """Gate one call; raises :class:`CircuitOpenError` if refused.

        Every allowed call *must* be matched by exactly one
        :meth:`record_success` or :meth:`record_failure` — half-open
        probe accounting depends on it.
        """
        now = self.clock()
        with self._lock:
            ep = self._endpoints.setdefault(endpoint, _EndpointState())
            if ep.state == OPEN:
                elapsed = now - ep.opened_at
                if elapsed < ep.cooldown_s:
                    ep.stats["rejected"] += 1
                    raise CircuitOpenError(endpoint, ep.cooldown_s - elapsed)
                ep.state = HALF_OPEN
                ep.probes_inflight = 0
            if ep.state == HALF_OPEN:
                if ep.probes_inflight >= self.half_open_probes:
                    ep.stats["rejected"] += 1
                    raise CircuitOpenError(
                        endpoint,
                        max(0.0, ep.cooldown_s - (now - ep.opened_at)),
                    )
                ep.probes_inflight += 1
            ep.stats["allowed"] += 1

    def record_success(self, endpoint: str) -> None:
        with self._lock:
            ep = self._endpoints.setdefault(endpoint, _EndpointState())
            if ep.state == HALF_OPEN:
                ep.probes_inflight = max(0, ep.probes_inflight - 1)
            ep.state = CLOSED
            ep.failures = 0

    def record_failure(self, endpoint: str) -> None:
        now = self.clock()
        with self._lock:
            ep = self._endpoints.setdefault(endpoint, _EndpointState())
            if ep.state == HALF_OPEN:
                # A failed probe: straight back to open, longer cooldown.
                ep.probes_inflight = max(0, ep.probes_inflight - 1)
                self._open_locked(endpoint, ep, now)
                return
            ep.failures += 1
            if ep.state == CLOSED and ep.failures >= self.failure_threshold:
                self._open_locked(endpoint, ep, now)

    def _open_locked(
        self, endpoint: str, ep: _EndpointState, now: float
    ) -> None:
        ep.opens += 1
        ep.state = OPEN
        ep.opened_at = now
        ep.failures = 0
        base = self.cooldown_base_s * (2 ** max(0, ep.opens - 1))
        rng = SplitMix(derive_seed(self.seed, "breaker", endpoint, ep.opens))
        ep.cooldown_s = min(
            self.cooldown_cap_s, base * (0.5 + rng.random())
        )

    # -- introspection ------------------------------------------------

    def state(self, endpoint: str) -> str:
        """The endpoint's *effective* state (open past cooldown reads
        as half-open: the next call would be allowed as a probe)."""
        now = self.clock()
        with self._lock:
            ep = self._endpoints.get(endpoint)
            if ep is None:
                return CLOSED
            if ep.state == OPEN and now - ep.opened_at >= ep.cooldown_s:
                return HALF_OPEN
            return ep.state

    def describe(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                endpoint: {
                    "state": ep.state,
                    "failures": ep.failures,
                    "opens": ep.opens,
                    "cooldown_s": round(ep.cooldown_s, 6),
                    **ep.stats,
                }
                for endpoint, ep in self._endpoints.items()
            }


__all__ = [
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "HALF_OPEN",
    "OPEN",
]
