"""The serve result cache: tier-0 LRU over pluggable disk backends.

Lookup order is tier 0 (in-process :class:`repro.util.lru.LRUCache`,
byte-bounded), then each configured :class:`CacheBackend` in priority
order. A backend hit is promoted into tier 0 so the next identical
request never leaves the process. Writes go everywhere (write-through)
so a service restart only costs the tier-0 warmth.

Two backends prove the interface is real:

- :class:`StoreBackend` — the lab's content-addressed
  ``.repro-cache`` store; every read is integrity-verified (payload
  sha256 + content address + code salt) and corrupt objects are
  quarantined, exactly as for batch runs.
- :class:`DirectoryBackend` — a second, independent directory of
  checksummed objects in the same verified envelope
  (:func:`repro.lab.store.verify_object_bytes`), demonstrating that a
  remote/blob tier can slot in without touching the service.

Everything here is synchronous on purpose: the service calls it
through ``asyncio.to_thread`` so the event loop never blocks on disk
(SRV001 polices that discipline).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs import context as obs_context
from repro.lab.store import (
    CODE_SALT,
    ResultStore,
    payload_digest,
    quarantine_file,
    verify_object_bytes,
)
from repro.resilience.atomic import atomic_write_bytes
from repro.util.lru import LRUCache

#: Tier-0 defaults: enough for a sweep's working set, bounded in bytes
#: so a handful of huge timeline payloads cannot pin the heap.
DEFAULT_TIER0_ITEMS = 512
DEFAULT_TIER0_BYTES = 64 * 1024 * 1024

TIER0_NAME = "tier0"


def json_sizeof(value: Any) -> int:
    """Measure a payload by its serialized JSON size.

    ``sys.getsizeof`` is shallow (a dict of big lists measures tiny);
    the JSON length is what the payload actually costs to hold and
    ship, and it is deterministic across runs.
    """
    return len(json.dumps(value, separators=(",", ":")))


class CacheBackend:
    """One disk (or remote) tier below the in-process LRU.

    ``get`` returns the verified payload or ``None`` — backends never
    raise for a miss, a corrupt object, or an unreadable file, because
    a cache failure must degrade to a recompute, not an error.
    ``put`` failures are likewise swallowed by :class:`TieredCache`.
    """

    #: Short tier label used in metrics (``serve.cache_hits_<name>_total``)
    #: and response ``meta.source``; lowercase alphanumerics only.
    name: str = "backend"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        raise NotImplementedError

    def put(
        self,
        key: str,
        payload: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        raise NotImplementedError

    def stats(self) -> Dict[str, Any]:
        return {}


class StoreBackend(CacheBackend):
    """The lab's content-addressed store as a cache tier."""

    name = "store"

    def __init__(self, store: ResultStore) -> None:
        self.store = store

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self.store.get(key)

    def put(
        self,
        key: str,
        payload: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.store.put(key, payload, meta=meta)

    def stats(self) -> Dict[str, Any]:
        return self.store.stats.as_dict()


class DirectoryBackend(CacheBackend):
    """An independent directory tier in the store's verified envelope.

    Objects live at ``<root>/<key[:2]>/<key>.json`` with the same
    salt + sha256 wrapper the primary store writes, so reads reuse
    :func:`verify_object_bytes` and damaged objects are quarantined
    into ``<root>/quarantine/`` rather than served.
    """

    name = "dir"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        status, obj = verify_object_bytes(raw, expected_key=key)
        if status == "ok":
            self.hits += 1
            return obj.get("payload")
        self.misses += 1
        if status != "stale-salt":
            quarantine_file(self.root, path, f"dir-tier get: {status}")
        return None

    def put(
        self,
        key: str,
        payload: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        import time

        obj = {
            "key": key,
            "salt": CODE_SALT,
            "sha256": payload_digest(payload),
            "stored_at": time.time(),
            "meta": meta or {},
            "payload": payload,
        }
        blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
        atomic_write_bytes(self._path(key), blob)

    def count(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(
            1
            for p in self.root.glob("*/*.json")
            if p.parent.name != "quarantine"
        )

    def stats(self) -> Dict[str, Any]:
        return {"hits": self.hits, "misses": self.misses}


class TieredCache:
    """Tier-0 LRU in front of an ordered list of backends."""

    def __init__(
        self,
        tier0: Optional[LRUCache] = None,
        backends: Sequence[CacheBackend] = (),
    ) -> None:
        # `tier0 or ...` would discard a caller-supplied cache: LRUCache
        # defines __len__, so an empty one is falsy.
        if tier0 is None:
            tier0 = LRUCache(
                DEFAULT_TIER0_ITEMS,
                max_bytes=DEFAULT_TIER0_BYTES,
                sizeof=json_sizeof,
            )
        self.tier0 = tier0
        self.backends: List[CacheBackend] = list(backends)
        #: Brownout hook: when set, only payloads at most this many
        #: serialized bytes are admitted into tier 0 (lookups and the
        #: write-through to backends are unaffected). ``None`` = no cap.
        self.tier0_admit_bytes: Optional[int] = None
        names = [TIER0_NAME] + [b.name for b in self.backends]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cache tier names: {names}")

    def _admit_tier0(self, payload: Dict[str, Any]) -> bool:
        cap = self.tier0_admit_bytes
        return cap is None or json_sizeof(payload) <= cap

    @property
    def tier_names(self) -> List[str]:
        return [TIER0_NAME] + [b.name for b in self.backends]

    def lookup(self, key: str) -> Tuple[Optional[Dict[str, Any]], Optional[str]]:
        """``(payload, tier_name)`` on a hit; ``(None, None)`` on a miss.

        A backend hit is promoted into tier 0 (and only tier 0 — the
        backends already have it by write-through).

        When the calling request carries an ambient span collector
        (:func:`repro.obs.context.current_collector` — contextvars
        survive the service's ``asyncio.to_thread`` hop into here), the
        tier-0 probe and the backend walk are recorded as
        ``cache_tier0`` / ``cache_backend`` latency-stack spans. With
        tracing off the collector is ``None`` and this is the single
        extra attribute read the overhead benchmark budgets for.
        """
        collector = obs_context.current_collector()
        if collector is None:
            payload = self.tier0.get(key)
            if payload is not None:
                return payload, TIER0_NAME
            for backend in self.backends:
                payload = backend.get(key)
                if payload is not None:
                    if self._admit_tier0(payload):
                        self.tier0[key] = payload
                    return payload, backend.name
            return None, None
        ctx = obs_context.current_context()
        trace_id = ctx.trace_id if ctx else ""
        parent_id = ctx.span_id if ctx else None
        t0 = collector.now()
        payload = self.tier0.get(key)
        collector.add_complete(
            "cache_tier0",
            trace_id=trace_id,
            parent_id=parent_id,
            start_ns=t0,
            hit=payload is not None,
            key=key[:12],
        )
        if payload is not None:
            return payload, TIER0_NAME
        for backend in self.backends:
            t0 = collector.now()
            payload = backend.get(key)
            collector.add_complete(
                "cache_backend",
                trace_id=trace_id,
                parent_id=parent_id,
                start_ns=t0,
                tier=backend.name,
                hit=payload is not None,
                key=key[:12],
            )
            if payload is not None:
                if self._admit_tier0(payload):
                    self.tier0[key] = payload
                return payload, backend.name
        return None, None

    def store(
        self,
        key: str,
        payload: Dict[str, Any],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Write-through to every tier; backend failures are absorbed
        (a result that cannot be cached is still a result)."""
        if self._admit_tier0(payload):
            self.tier0[key] = payload
        for backend in self.backends:
            try:
                backend.put(key, payload, meta=meta)
            except Exception:
                continue

    def stats(self) -> Dict[str, Any]:
        return {
            TIER0_NAME: self.tier0.stats(),
            **{b.name: b.stats() for b in self.backends},
        }


__all__ = [
    "CacheBackend",
    "DEFAULT_TIER0_BYTES",
    "DEFAULT_TIER0_ITEMS",
    "DirectoryBackend",
    "StoreBackend",
    "TIER0_NAME",
    "TieredCache",
    "json_sizeof",
]
