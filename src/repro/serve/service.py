"""The asyncio front door: coalescing, cache tiers, shard dispatch.

:class:`ExperimentService` is the transport-independent core — its
:meth:`~ExperimentService.handle` coroutine maps one request dict to
one response dict, and the TCP layer (:class:`ServeServer`) is a thin
JSON-lines adapter over it. Tests drive ``handle`` directly with
``asyncio.gather``; the CLI and the client helper go through TCP.

Request path for ``simulate``:

1. validate → :class:`repro.lab.jobs.SimJob` → content address;
2. **singleflight**: if that key is already being computed, await the
   leader's future (``serve.coalesced_total``) — registration happens
   synchronously before the leader's first ``await``, so N identical
   requests arriving in one scheduling window always collapse to one
   computation, deterministically;
3. **tiered cache** (:class:`repro.serve.cache.TieredCache`): tier-0
   LRU, then the verified store, then further backends — a warm
   request never touches a shard (``serve.cache_hits_<tier>_total``);
4. **shard dispatch**: route by content address, journal write-ahead,
   execute on the shard's worker (``serve.pool_executions_total``). If
   the shard's worker dies mid-job (``BrokenProcessPool``), the shard
   is restarted and the journal consulted: completed-before-death work
   is replayed from the store, in-flight work is resubmitted once, and
   a second crash surfaces as a *retryable* ``shard-crashed`` error —
   waiters always get an answer or that error, never a hang.

Every counter lives in a service-owned
:class:`repro.obs.metrics.MetricsRegistry`; ``status`` responses carry
the live snapshot and :meth:`write_manifest` persists it next to the
lab's run manifests so ``repro obs metrics`` tooling can read it.
"""

from __future__ import annotations

import asyncio
import os
import threading
import uuid
from collections import deque
from concurrent.futures import BrokenExecutor
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro import __version__
from repro.lab.jobs import JobResult, JobStatus, SimJob
from repro.lab.store import ResultStore
from repro.obs import context as obs_context
from repro.obs import runtime as obs_runtime
from repro.obs.metrics import MetricsRegistry, histogram_quantiles
from repro.obs.spans import (
    STACK_COMPONENTS,
    SpanCollector,
    fold_latency_stack_records,
    merge_span_snapshots,
)
from repro.resilience import deadline as deadlines
from repro.resilience.atomic import atomic_write_json
from repro.resilience.watchdog import WatchdogPolicy
from repro.serve import protocol
from repro.serve.admission import (
    AdmissionController,
    AdmissionPolicy,
    BrownoutController,
)
from repro.serve.cache import (
    DEFAULT_TIER0_BYTES,
    DEFAULT_TIER0_ITEMS,
    DirectoryBackend,
    StoreBackend,
    TieredCache,
    json_sizeof,
)
from repro.serve.shards import ShardSet
from repro.util.lru import LRUCache
from repro.util.timing import Stopwatch, default_clock_ns

#: Where a running service advertises its address, under the store root.
ENDPOINT_FILE = "serve/endpoint.json"

#: Latency histogram edges in milliseconds (sub-ms cache hits up to
#: multi-second cold simulations).
LATENCY_EDGES_MS = (0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000,
                    2500, 5000, 10000)

#: Closed-span buffer bound for the service collector: old spans are
#: dropped FIFO so a long-running service cannot grow without bound.
SPAN_BUFFER_LIMIT = 20_000

#: Telemetry ring size: queue-depth/in-flight samples kept for the
#: ``stats`` op and the serve manifest.
TELEMETRY_SAMPLES = 256

#: Ops that are introspection, not traffic: they are never traced (a
#: ``trace`` query must not append spans to the tree it is reading).
UNTRACED_OPS = ("stats", "trace")


def endpoint_path(store_root: Union[str, Path]) -> Path:
    return Path(store_root) / ENDPOINT_FILE


class ExperimentService:
    """Coalescing, caching, sharded execution — behind one coroutine."""

    def __init__(
        self,
        store_root: Optional[Union[str, Path]] = None,
        n_shards: int = 2,
        tier0_items: int = DEFAULT_TIER0_ITEMS,
        tier0_bytes: Optional[int] = DEFAULT_TIER0_BYTES,
        dir_cache: Optional[Union[str, Path]] = None,
        service_id: Optional[str] = None,
        use_cache: bool = True,
        watchdog_policy: Optional[WatchdogPolicy] = None,
        trace_requests: Optional[bool] = None,
        span_clock: Optional[Callable[[], int]] = None,
        shard_workers: int = 1,
        admission_policy: Optional[AdmissionPolicy] = None,
    ) -> None:
        self.store = (
            ResultStore(root=store_root) if store_root else ResultStore()
        )
        self.service_id = service_id or f"serve-{uuid.uuid4().hex[:10]}"
        self.use_cache = use_cache
        self.metrics = MetricsRegistry()
        backends = [StoreBackend(self.store)]
        if dir_cache is None:
            dir_cache = self.store.root / "serve" / "l2"
        backends.append(DirectoryBackend(dir_cache))
        self.cache = TieredCache(
            LRUCache(tier0_items, max_bytes=tier0_bytes, sizeof=json_sizeof),
            backends,
        )
        self.shards = ShardSet(
            n_shards,
            self.service_id,
            str(self.store.root),
            self.store.runs_dir,
            self.store.root / "serve" / "heartbeats" / self.service_id,
            use_cache=use_cache,
            watchdog_policy=watchdog_policy,
            workers=shard_workers,
        )
        self.admission_policy = admission_policy or AdmissionPolicy()
        self.admission = AdmissionController(
            self.admission_policy, self.metrics, n_shards
        )
        self.brownout = BrownoutController(self.admission_policy, self.metrics)
        #: key -> (payload, source, exec_span_id) singleflight futures.
        self._inflight: Dict[
            str, "asyncio.Future[Tuple[dict, str, Optional[str]]]"
        ] = {}
        self._uptime = Stopwatch()
        self.shutdown_requested = asyncio.Event()
        #: None = follow the ambient REPRO_TRACE switch; True/False pin
        #: request tracing regardless (``repro serve run --trace``).
        self.trace_requests = trace_requests
        self.spans = SpanCollector(
            process="serve",
            clock_ns=span_clock or default_clock_ns,
            max_spans=SPAN_BUFFER_LIMIT,
        )
        #: Event-loop samples of queue depth / in-flight, kept in a ring
        #: for the ``stats`` op. Always on: appending one small dict at
        #: request milestones is inside the disabled-overhead budget.
        self._telemetry: "deque[Dict[str, Any]]" = deque(maxlen=TELEMETRY_SAMPLES)
        self._telemetry_seq = 0
        # Pre-register every counter so a fresh snapshot shows explicit
        # zeros (CI asserts on names, not just values).
        for name in (
            "serve.requests_total",
            "serve.coalesced_total",
            "serve.cache_misses_total",
            "serve.pool_executions_total",
            "serve.shard_restarts_total",
            "serve.errors_total",
            # Overload/deadline plane. The metric grammar allows one
            # dot, so the "serve.overload.*" family is spelled with
            # underscores: serve.overload_<noun>_total.
            "serve.overload_sheds_total",
            "serve.overload_shed_sweeps_total",
            "serve.overload_transitions_total",
            "serve.deadline_expired_total",
            "serve.deadline_dropped_total",
        ):
            self.metrics.counter(name)
        for tier in self.cache.tier_names:
            self.metrics.counter(f"serve.cache_hits_{tier}_total")
        self.metrics.histogram(
            "serve.request_latency_milliseconds", edges=LATENCY_EDGES_MS
        )
        # Telemetry-plane metrics, registered with literal names so
        # OBS002's static check vets each one. (``serve.inflight`` as
        # named in planning would fail the subsystem.noun_unit pattern —
        # no unit suffix — hence ``serve.inflight_requests``.)
        # serve.queue_depth stays the lifetime high-watermark
        # (set_max); serve.queue_depth_current is the live sampled
        # depth the admission controller and `repro serve top` act on.
        self.metrics.gauge("serve.queue_depth")
        self.metrics.gauge("serve.queue_depth_current")
        self.metrics.gauge("serve.inflight_requests")
        self.metrics.gauge("serve.brownout_level")
        # Per-shard current-depth gauges; the f-string names follow
        # the same subsystem.noun_unit grammar the registry enforces
        # at runtime (e.g. serve.shard0_queue_depth).
        self._shard_depth_gauges = [
            self.metrics.gauge(f"serve.shard{i}_queue_depth")
            for i in range(n_shards)
        ]
        self.metrics.histogram(
            "serve.simulate_latency_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.sweep_latency_milliseconds", edges=LATENCY_EDGES_MS
        )
        # One histogram per latency-stack component — the service-level
        # CPI stack. Recorded via _record_stack; the names here keep
        # them statically checkable and visible in fresh snapshots.
        self.metrics.histogram(
            "serve.latency_stack_queue_wait_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.latency_stack_coalesce_wait_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.latency_stack_cache_tier0_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.latency_stack_cache_backend_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.latency_stack_pool_execute_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.latency_stack_store_put_milliseconds", edges=LATENCY_EDGES_MS
        )
        self.metrics.histogram(
            "serve.latency_stack_serialize_milliseconds", edges=LATENCY_EDGES_MS
        )
        # Handles resolved once: _record_stack runs per traced request,
        # and re-looking histograms up by formatted name there is
        # measurable against the enabled-overhead bound.
        self._stack_hists = {
            component: self.metrics.histogram(
                f"serve.latency_stack_{component}_milliseconds",
                edges=LATENCY_EDGES_MS,
            )
            for component in STACK_COMPONENTS
        }

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        self.shards.start()

    def close(self) -> None:
        # Whatever is still open at shutdown (a request cut off by the
        # loop going down) closes as ``aborted`` — exports never see a
        # span without an end timestamp.
        self.spans.abort_open("service-shutdown")
        self.write_manifest()
        self.shards.close()

    # -- dispatch -----------------------------------------------------

    def _tracing_on(self) -> bool:
        # Brownout level 1+ overrides even a pinned --trace: tracing is
        # the first luxury overload pays with, by design.
        if not self.brownout.tracing_allowed():
            return False
        if self.trace_requests is not None:
            return self.trace_requests
        return obs_runtime.tracing_enabled()

    def _sample_queues(self) -> None:
        """One event-loop sample of queue depth and in-flight requests.

        Pure memory — reading ``len`` of per-shard pending tables and
        the inflight map — so sampling at request milestones is safe on
        the loop and cheap enough to leave always on. Each sample also
        feeds the brownout controller (pressure = the worst shard's
        budget fraction) and applies its tier-0 admission cap.
        """
        per_shard = [len(shard.pending) for shard in self.shards]
        depth = sum(per_shard)
        inflight = len(self._inflight)
        self.metrics.gauge("serve.queue_depth").set_max(depth)
        self.metrics.gauge("serve.queue_depth_current").set(depth)
        self.metrics.gauge("serve.inflight_requests").set_max(inflight)
        for gauge, shard_depth in zip(self._shard_depth_gauges, per_shard):
            gauge.set(shard_depth)
        pressure = max(
            (
                self.admission.pressure(index, shard_depth)
                for index, shard_depth in enumerate(per_shard)
            ),
            default=0.0,
        )
        level = self.brownout.observe(pressure)
        self.cache.tier0_admit_bytes = self.brownout.tier0_admit_bytes()
        self._telemetry_seq += 1
        self._telemetry.append(
            {
                "seq": self._telemetry_seq,
                "queue_depth": depth,
                "inflight": inflight,
                "shards": per_shard,
                "pressure": round(pressure, 4),
                "brownout": level,
            }
        )

    async def handle(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """One request dict in, one response dict out; never raises."""
        rid = protocol.request_id(obj)
        watch = Stopwatch()
        self.metrics.counter("serve.requests_total").inc()
        self._sample_queues()
        collector = self.spans if self._tracing_on() else None
        root = None
        mark = 0
        tokens = None
        op: Optional[str] = None
        try:
            op = protocol.request_op(obj)
            if collector is not None and op not in UNTRACED_OPS:
                trace_id, parent_span = protocol.trace_fields(obj)
                if trace_id is None:
                    trace_id = collector.new_trace_id()
                mark = collector.mark()
                root = collector.start(
                    "request", trace_id=trace_id, parent_id=parent_span, op=op
                )
                tokens = obs_context.activate(
                    obs_context.TraceContext(trace_id, root.span_id), collector
                )
            if op == "ping":
                response = protocol.ok_response(
                    rid, "pong", {"service_id": self.service_id}
                )
            elif op == "status":
                response = protocol.ok_response(
                    rid, await asyncio.to_thread(self.status_payload), {}
                )
            elif op == "stats":
                # Pure in-memory snapshot, answered inline on the loop:
                # polling it can never block or perturb coalescing.
                response = protocol.ok_response(
                    rid, self.stats_payload(),
                    {"service_id": self.service_id},
                )
            elif op == "trace":
                response = protocol.ok_response(
                    rid, self.trace_payload(obj),
                    {"service_id": self.service_id},
                )
            elif op == "shutdown":
                self.shutdown_requested.set()
                response = protocol.ok_response(
                    rid, "stopping", {"service_id": self.service_id}
                )
            elif op == "simulate":
                response = await self._simulate(
                    rid, obj, self._deadline_of(obj)
                )
            else:  # sweep (request_op already validated the set)
                if self.brownout.shed_sweeps():
                    # Brownout level 3: one sweep fans out to dozens of
                    # pool jobs; under sustained pressure the service
                    # keeps the cheaper `simulate` promise instead.
                    self._shed_sweep()
                response = await self._sweep(rid, obj, self._deadline_of(obj))
        except (protocol.ProtocolError, protocol.ShardCrashError,
                protocol.DeadlineExceededError) as exc:
            self.metrics.counter("serve.errors_total").inc()
            response = protocol.error_response(
                rid, exc.error_type, str(exc), exc.retryable
            )
        except protocol.OverloadedError as exc:
            self.metrics.counter("serve.errors_total").inc()
            response = protocol.error_response(
                rid, exc.error_type, str(exc), exc.retryable,
                extra=exc.wire_extra(),
            )
        except Exception as exc:  # the front door absorbs everything
            self.metrics.counter("serve.errors_total").inc()
            response = protocol.error_response(
                rid, protocol.ERR_INTERNAL,
                f"{type(exc).__name__}: {exc}", False,
            )
        if root is not None:
            if tokens is not None:
                obs_context.deactivate(tokens)
            ok = bool(response.get("ok"))
            collector.finish(root, status="ok" if ok else "error")
            # Records straight from the buffer, unfiltered: the fold
            # skips foreign-trace spans itself, so filtering here too
            # would just walk the window twice.
            stack = fold_latency_stack_records(
                root, collector.since_records(mark)
            )
            self._record_stack(stack)
            meta = response.get("meta")
            if ok and isinstance(meta, dict):
                meta["trace_id"] = root.trace_id
                meta["span_id"] = root.span_id
                meta["wall_ns"] = root.duration_ns
                meta["latency_stack_ns"] = stack
        elapsed_ms = watch.elapsed * 1000.0
        self.metrics.histogram(
            "serve.request_latency_milliseconds", edges=LATENCY_EDGES_MS
        ).add(elapsed_ms)
        if op == "simulate":
            self.metrics.histogram(
                "serve.simulate_latency_milliseconds", edges=LATENCY_EDGES_MS
            ).add(elapsed_ms)
        elif op == "sweep":
            self.metrics.histogram(
                "serve.sweep_latency_milliseconds", edges=LATENCY_EDGES_MS
            ).add(elapsed_ms)
        self._sample_queues()
        return response

    def _record_stack(self, stack: Dict[str, int]) -> None:
        """Aggregate one request's latency stack into the histograms."""
        hists = self._stack_hists
        for component, ns in stack.items():
            hists[component].add(ns / 1e6)

    def _deadline_of(self, obj: Dict[str, Any]) -> Optional[int]:
        """The request's absolute monotonic deadline (ns), or None.

        Converted from the wire's relative ``deadline_ms`` budget the
        moment the request is picked up — everything downstream
        (coalesce waits, shard dispatch, the worker process) compares
        against this one absolute instant, so queueing time is charged
        against the budget instead of resetting it.
        """
        budget = protocol.deadline_budget_ms(obj)
        if budget is None:
            return None
        return deadlines.deadline_from_budget_ms(budget)

    def _shed_sweep(self) -> None:
        """Brownout level 3: reject this sweep with a retry hint."""
        self.metrics.counter("serve.overload_shed_sweeps_total").inc()
        per_shard = [len(shard.pending) for shard in self.shards]
        worst = max(range(len(per_shard)), key=per_shard.__getitem__)
        self.admission.shed_now(
            worst, per_shard[worst], "brownout-shed-sweeps"
        ).raise_overloaded()

    async def _simulate(
        self,
        rid: Optional[str],
        obj: Dict[str, Any],
        deadline: Optional[int],
    ) -> Dict[str, Any]:
        spec = protocol.sim_job_from(obj)
        key = spec.key()
        payload, source, coalesced = await self._result_for(
            key, spec, obj, deadline
        )
        collector = obs_context.current_collector()
        ctx = obs_context.current_context() if collector is not None else None
        t0 = collector.now() if collector is not None else 0
        response = protocol.ok_response(
            rid,
            protocol.summarize_payload(payload),
            {
                "key": key,
                "source": source,
                "coalesced": coalesced,
                "shard": self.shards.route(key).index,
            },
        )
        if collector is not None and ctx is not None:
            collector.add_complete(
                "serialize",
                trace_id=ctx.trace_id,
                parent_id=ctx.span_id,
                start_ns=t0,
            )
        return response

    async def _sweep(
        self,
        rid: Optional[str],
        obj: Dict[str, Any],
        deadline: Optional[int],
    ) -> Dict[str, Any]:
        specs = protocol.sweep_jobs_from(obj)
        points = await asyncio.gather(
            *(
                self._result_for(spec.key(), spec, obj, deadline)
                for spec in specs
            )
        )
        collector = obs_context.current_collector()
        ctx = obs_context.current_context() if collector is not None else None
        t0 = collector.now() if collector is not None else 0
        results = []
        for spec, (payload, source, coalesced) in zip(specs, points):
            summary = protocol.summarize_payload(payload)
            summary["label"] = spec.label
            summary["key"] = spec.key()
            summary["source"] = source
            results.append(summary)
        response = protocol.ok_response(
            rid,
            results,
            {
                "points": len(results),
                "coalesced": sum(1 for _, _, c in points if c),
            },
        )
        if collector is not None and ctx is not None:
            collector.add_complete(
                "serialize",
                trace_id=ctx.trace_id,
                parent_id=ctx.span_id,
                start_ns=t0,
                points=len(results),
            )
        return response

    # -- the singleflight + cache + shard core ------------------------

    async def _await_leader(
        self,
        existing: "asyncio.Future[Tuple[dict, str, Optional[str]]]",
        key: str,
        deadline: Optional[int],
    ) -> Tuple[Dict[str, Any], str, Optional[str]]:
        """A coalesced waiter's bounded wait on the leader's future.

        Shielded — the shared computation must survive one waiter's
        cancellation — and bounded by *this waiter's* deadline: a
        short-budget follower gets its own deadline error without
        cancelling work its siblings (and the leader) still want. The
        asymmetry is deliberate: the pool job runs under the leader's
        deadline, each waiter only bounds how long it will stand in
        line for the shared result.
        """
        try:
            return await asyncio.wait_for(
                asyncio.shield(existing),
                timeout=deadlines.remaining_s(deadline),
            )
        except asyncio.TimeoutError:
            self.metrics.counter("serve.deadline_expired_total").inc()
            raise protocol.DeadlineExceededError(
                "deadline expired while waiting on the coalesced "
                f"computation of {key[:12]}"
            ) from None

    async def _result_for(
        self,
        key: str,
        spec: SimJob,
        request: Dict[str, Any],
        deadline: Optional[int],
    ) -> Tuple[Dict[str, Any], str, bool]:
        """``(payload, source, coalesced)`` for one content address.

        The inflight table is checked *and claimed* synchronously —
        no ``await`` between the miss check and the claim — so on a
        single event loop every concurrent duplicate either leads or
        coalesces; there is no window to race through.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            self.metrics.counter("serve.coalesced_total").inc()
            collector = obs_context.current_collector()
            if collector is not None:
                ctx = obs_context.current_context()
                t0 = collector.now()
                payload, source, exec_span = await self._await_leader(
                    existing, key, deadline
                )
                # The waiter span parents to the *leader's* pool_execute
                # span when there was one — that is the cross-request
                # edge that makes a coalesced burst one legible tree.
                collector.add_complete(
                    "coalesce_wait",
                    trace_id=ctx.trace_id if ctx else "",
                    parent_id=exec_span or (ctx.span_id if ctx else None),
                    start_ns=t0,
                    key=key[:12],
                )
            else:
                payload, source, _ = await self._await_leader(
                    existing, key, deadline
                )
            return payload, source, True
        leader: "asyncio.Future[Tuple[dict, str, Optional[str]]]" = (
            asyncio.get_running_loop().create_future()
        )
        # A leader with no followers never awaits its own future; the
        # callback marks any exception as retrieved so asyncio does not
        # log a spurious "exception was never retrieved" at teardown.
        leader.add_done_callback(
            lambda f: f.cancelled() or f.exception()
        )
        self._inflight[key] = leader
        try:
            payload, source, exec_span = await self._compute(
                key, spec, request, deadline
            )
        except Exception as exc:
            leader.set_exception(exc)
            raise
        else:
            leader.set_result((payload, source, exec_span))
            return payload, source, False
        finally:
            # A cancelled leader (CancelledError skips the except
            # clause above) must not strand shielded followers on a
            # future nobody will ever resolve.
            if not leader.done():
                leader.set_exception(
                    protocol.ShardCrashError(
                        "computation abandoned before completion; "
                        "the request is safe to retry"
                    )
                )
            self._inflight.pop(key, None)

    async def _compute(
        self,
        key: str,
        spec: SimJob,
        request: Dict[str, Any],
        deadline: Optional[int],
    ) -> Tuple[Dict[str, Any], str, Optional[str]]:
        if self.use_cache:
            # ``to_thread`` copies the contextvars context, so the
            # cache records its tier-probe spans against this request.
            payload, tier = await asyncio.to_thread(self.cache.lookup, key)
            if payload is not None:
                self.metrics.counter(f"serve.cache_hits_{tier}_total").inc()
                return payload, tier, None
        self.metrics.counter("serve.cache_misses_total").inc()
        payload, exec_span = await self._run_on_shard(
            key, spec, request, deadline
        )
        if self.use_cache:
            collector = obs_context.current_collector()
            if collector is not None:
                ctx = obs_context.current_context()
                t0 = collector.now()
                await asyncio.to_thread(
                    self.cache.store, key, payload, {"label": spec.label}
                )
                collector.add_complete(
                    "store_put",
                    trace_id=ctx.trace_id if ctx else "",
                    parent_id=ctx.span_id if ctx else None,
                    start_ns=t0,
                    key=key[:12],
                )
            else:
                await asyncio.to_thread(
                    self.cache.store, key, payload, {"label": spec.label}
                )
        return payload, "pool", exec_span

    async def _run_on_shard(
        self,
        key: str,
        spec: SimJob,
        request: Dict[str, Any],
        deadline: Optional[int],
    ) -> Tuple[Dict[str, Any], Optional[str]]:
        """Execute on the owning shard with crash-recovery semantics.

        Returns ``(payload, pool_execute span id)`` — the span id is
        what coalesced waiters parent their ``coalesce_wait`` spans to.

        Admission control lives here, *below* the cache and coalescing
        layers on purpose: warm and duplicate requests cost nothing to
        answer, so only work that would actually occupy a queue slot
        and a pool worker can be shed.
        """
        shard = self.shards.route(key)
        if deadlines.expired(deadline):
            # The budget was spent upstream (wire, cache probes); do
            # not burn a queue slot on a request nobody is waiting for.
            self.metrics.counter("serve.deadline_expired_total").inc()
            raise protocol.DeadlineExceededError(
                f"deadline expired before dispatch of {spec.label}"
            )
        wire_request = {
            k: v for k, v in request.items() if k in (
                "op", "workload", "length", "seed", "core", "config",
                "parameter", "values",
            )
        }
        cost = json_sizeof(wire_request)
        decision = self.admission.try_admit(
            shard.index, len(shard.pending), cost
        )
        if decision is not None:
            decision.raise_overloaded()
        self.metrics.counter("serve.pool_executions_total").inc()
        collector = obs_context.current_collector()
        ctx = obs_context.current_context() if collector is not None else None
        exec_span = None
        trace_ctx = None
        if collector is not None and ctx is not None:
            exec_span = collector.start(
                "pool_execute",
                trace_id=ctx.trace_id,
                parent_id=ctx.span_id,
                shard=shard.index,
                key=key[:12],
            )
            trace_ctx = {
                "trace_id": ctx.trace_id,
                "parent_span": exec_span.span_id,
            }
        exec_span_id = exec_span.span_id if exec_span is not None else None
        service_ms: Optional[float] = None
        pool_watch = Stopwatch()
        try:
            generation = shard.generation
            try:
                future = await asyncio.to_thread(
                    shard.submit, key, spec, wire_request, trace_ctx, deadline
                )
            except BrokenExecutor:
                # The pool was already broken when this request arrived
                # (a corpse nobody has observed yet, or one mid-triage
                # by an earlier waiter — recover() blocks on the shard
                # lock either way). Rebuild and submit once on the
                # fresh pool; a second break is the crash path proper.
                recovered = await asyncio.to_thread(
                    shard.recover, generation
                )
                if recovered is not None:
                    self.metrics.counter("serve.shard_restarts_total").inc()
                try:
                    future = await asyncio.to_thread(
                        shard.submit, key, spec, wire_request, trace_ctx,
                        deadline,
                    )
                except BrokenExecutor:
                    await asyncio.to_thread(
                        shard.fail, key, "shard pool broken at submit"
                    )
                    if collector is not None and exec_span is not None:
                        collector.finish(
                            exec_span, status="aborted",
                            abort_reason="shard-crashed",
                        )
                    raise protocol.ShardCrashError(
                        f"shard {shard.index} pool broke before "
                        f"{spec.label} could be submitted; the request "
                        "is safe to retry"
                    ) from None
            # Captured *after* submit: if the pool breaks under us,
            # recover() restarts it only for the first observer whose
            # generation still matches — the guard against N waiters
            # serially killing each other's fresh pools.
            generation = shard.generation
            self._sample_queues()
            for attempt in (1, 2):
                try:
                    result: JobResult = await asyncio.wait_for(
                        asyncio.wrap_future(future),
                        timeout=deadlines.remaining_s(deadline),
                    )
                except asyncio.TimeoutError:
                    self.metrics.counter("serve.deadline_dropped_total").inc()
                    await asyncio.to_thread(
                        shard.fail, key,
                        "deadline expired while executing",
                    )
                    if collector is not None and exec_span is not None:
                        collector.finish(
                            exec_span, status="aborted",
                            abort_reason="deadline-exceeded",
                        )
                    raise protocol.DeadlineExceededError(
                        f"deadline expired while executing {spec.label}"
                    ) from None
                except BrokenExecutor:
                    recovered = await asyncio.to_thread(
                        shard.recover, generation
                    )
                    if recovered is not None:
                        # First observer of this corpse: the restart
                        # (and the worker-death triage) ran on our
                        # watch. Later observers see None and skip
                        # straight to resubmission on the fresh pool.
                        self.metrics.counter(
                            "serve.shard_restarts_total"
                        ).inc()
                    generation = shard.generation
                    # Journal triage: work that finished before the
                    # crash replays from the store; everything else
                    # gets exactly one resubmission (at-least-once,
                    # then fail retryable).
                    state = await asyncio.to_thread(shard.journal_state)
                    if state.classify(key) == "complete" and self.use_cache:
                        payload = await asyncio.to_thread(self.store.get, key)
                        if payload is not None:
                            shard.pending.pop(key, None)
                            shard.pending_ctx.pop(key, None)
                            shard.pending_deadline.pop(key, None)
                            if collector is not None and exec_span is not None:
                                collector.finish(
                                    exec_span, status="ok", replayed=True
                                )
                            return payload, exec_span_id
                    if attempt == 2:
                        break
                    future = await asyncio.to_thread(shard.resubmit, key)
                    if future is None:
                        break
                    continue
                if result.status == JobStatus.EXPIRED:
                    # The worker dropped it unexecuted at dequeue —
                    # the budget died in the shard queue.
                    self.metrics.counter("serve.deadline_dropped_total").inc()
                    await asyncio.to_thread(
                        shard.fail, key, result.error or "deadline expired"
                    )
                    if collector is not None and exec_span is not None:
                        collector.finish(
                            exec_span, status="aborted",
                            abort_reason="deadline-exceeded",
                        )
                    raise protocol.DeadlineExceededError(
                        f"deadline expired before {spec.label} reached a "
                        "worker (dropped at dequeue)"
                    )
                if result.ok and result.payload is not None:
                    service_ms = pool_watch.elapsed * 1000.0
                    await asyncio.to_thread(shard.complete, key, result)
                    if collector is not None and exec_span is not None:
                        # Adopt the worker-process spans (worker_execute,
                        # store reads/writes) into this request's tree.
                        collector.absorb(result.spans)
                        collector.finish(exec_span, status="ok")
                    return result.payload, exec_span_id
                error = (result.error or "job failed with no payload").strip()
                await asyncio.to_thread(shard.fail, key, error)
                if collector is not None and exec_span is not None:
                    collector.absorb(result.spans)
                    collector.finish(exec_span, status="error")
                last = error.splitlines()[-1] if error else "job failed"
                raise _job_failure(last)
            await asyncio.to_thread(
                shard.fail, key, "shard crashed while executing"
            )
            if collector is not None and exec_span is not None:
                # The worker died with the job: its spans are gone, so
                # the dispatch span is force-closed rather than left
                # dangling.
                collector.finish(
                    exec_span, status="aborted", abort_reason="shard-crashed"
                )
            raise protocol.ShardCrashError(
                f"shard {shard.index} crashed while executing {spec.label}; "
                "the request is safe to retry"
            )
        finally:
            # Bytes come back whatever happened; the EWMA only learns
            # from completed pool executions (service_ms stays None on
            # every error path).
            self.admission.release(
                shard.index, cost, service_time_ms=service_ms
            )

    # -- introspection ------------------------------------------------

    def status_payload(self) -> Dict[str, Any]:
        """The ``status`` op's result (sync; called off the loop —
        ``shards.describe()`` reads heartbeat files from disk)."""
        return {
            "service_id": self.service_id,
            "version": __version__,
            "pid": os.getpid(),
            "uptime_s": self._uptime.elapsed,
            "store_root": str(self.store.root),
            "shards": self.shards.describe(),
            "cache": self.cache.stats(),
            "tiers": self.cache.tier_names,
            "inflight": len(self._inflight),
            "admission": self.admission.describe(),
            "brownout": self.brownout.describe(),
            "metrics": self.metrics.snapshot(),
        }

    def stats_payload(self) -> Dict[str, Any]:
        """The ``stats`` op's result: the live telemetry plane.

        Strictly in-memory (unlike :meth:`status_payload`, which walks
        heartbeat files): per-shard queue depths from the pending
        tables, the telemetry ring of event-loop samples, and the
        latency quantiles — so it runs inline on the loop and a
        dashboard polling it cannot disturb request coalescing.
        """
        snapshot = self.metrics.snapshot()
        return {
            "service_id": self.service_id,
            "uptime_s": self._uptime.elapsed,
            "tracing": self._tracing_on(),
            "inflight": len(self._inflight),
            "admission": self.admission.describe(),
            "brownout": self.brownout.describe(),
            "shards": [
                {
                    "index": shard.index,
                    "queue_depth": len(shard.pending),
                    "submitted": shard.submitted,
                    "restarts": shard.restarts,
                }
                for shard in self.shards
            ],
            "counters": snapshot["counters"],
            "gauges": snapshot["gauges"],
            "latency_quantiles_ms": {
                name: histogram_quantiles(payload)
                for name, payload in snapshot["histograms"].items()
                if payload["count"]
            },
            "samples": list(self._telemetry),
            "spans_buffered": len(self.spans),
        }

    def trace_payload(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """The ``trace`` op's result: a non-draining span snapshot.

        ``trace_id`` filters to one request's tree; ``limit`` bounds
        the frame (most recent spans win). In-memory only.
        """
        trace_id, _ = protocol.trace_fields(obj)
        limit = obj.get("limit", 500)
        if isinstance(limit, bool) or not isinstance(limit, int) or limit < 0:
            raise protocol.ProtocolError(
                "'limit' must be a non-negative integer"
            )
        spans = self.spans.snapshot(trace_id=trace_id, limit=limit)
        return {
            "service_id": self.service_id,
            "count": len(spans),
            "spans": spans,
        }

    def write_manifest(self) -> Path:
        """Persist the metrics/cache snapshot next to lab run manifests.

        The v2 manifest also carries the telemetry ring, the merged
        span snapshot (order-independent: shard/worker spans were
        absorbed as they arrived, then canonicalized here), and the
        latency-stack quantiles.
        """
        payload = self.status_payload()
        snapshot = payload["metrics"]
        payload["telemetry"] = list(self._telemetry)
        payload["spans"] = merge_span_snapshots([self.spans.snapshot()])
        payload["latency_quantiles_ms"] = {
            name: histogram_quantiles(hist)
            for name, hist in snapshot["histograms"].items()
            if hist["count"]
        }
        path = self.store.runs_dir / f"{self.service_id}.serve.json"
        atomic_write_json(path, payload)
        return path


def _job_failure(message: str) -> protocol.ProtocolError:
    error = protocol.ProtocolError(message)
    error.error_type = protocol.ERR_JOB_FAILED
    return error


class ServeServer:
    """JSON-lines TCP adapter over an :class:`ExperimentService`."""

    def __init__(
        self,
        service: ExperimentService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: set = set()

    async def start(self) -> None:
        self.service.start()
        self._server = await asyncio.start_server(
            self._on_connection,
            self.host,
            self.port,
            limit=protocol.MAX_LINE_BYTES + 2,
        )
        # Benign RMW across the await: start() runs once, before any
        # connection handler exists, so nothing can interleave on port.
        self.port = self._server.sockets[0].getsockname()[1]  # repro: noqa[RACE001]
        await asyncio.to_thread(self._write_endpoint)

    def _write_endpoint(self) -> None:
        atomic_write_json(
            endpoint_path(self.service.store.root),
            {
                "host": self.host,
                "port": self.port,
                "pid": os.getpid(),
                "service_id": self.service.service_id,
            },
        )

    def _remove_endpoint(self) -> None:
        try:
            endpoint_path(self.service.store.root).unlink()
        except OSError:
            pass

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._writers.add(writer)
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(protocol.encode_line(
                        protocol.error_response(
                            None, protocol.ERR_BAD_REQUEST,
                            "request line too long", False,
                        )
                    ))
                    await writer.drain()
                    break
                if not raw:
                    break
                line = raw.strip()
                if not line:
                    continue
                try:
                    obj = protocol.decode_line(line)
                except protocol.ProtocolError as exc:
                    response = protocol.error_response(
                        None, exc.error_type, str(exc), exc.retryable
                    )
                else:
                    response = await self.service.handle(obj)
                writer.write(protocol.encode_line(response))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop teardown with the connection still open: close out
            # quietly instead of logging a cancelled handler task.
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def serve_until_shutdown(self) -> None:
        """Run until a ``shutdown`` op (or cancellation) arrives."""
        if self._server is None:
            await self.start()
        try:
            await self.service.shutdown_requested.wait()
        finally:
            await self.stop()

    async def stop(self) -> None:
        # Claim the server reference synchronously before any await so
        # two concurrent stop() calls cannot both enter the close path
        # (the second claimant sees None and skips it).
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        # ``Server.close`` stops accepting; established connections
        # must be hung up explicitly so their handler tasks finish
        # before the loop does.
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                continue
        await asyncio.sleep(0)
        await asyncio.to_thread(self._remove_endpoint)
        await asyncio.to_thread(self.service.close)


class BackgroundServer:
    """A :class:`ServeServer` on its own thread, for tests and drivers.

    The caller's (synchronous) world sees ``host``/``port`` once
    :meth:`start` returns and must call :meth:`stop` when done.
    """

    def __init__(self, service: ExperimentService, host: str = "127.0.0.1"):
        self.service = service
        self.server = ServeServer(service, host=host)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port

    def start(self, timeout_s: float = 30.0) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout_s):
            raise RuntimeError("serve server failed to start in time")
        if self._error is not None:
            raise RuntimeError(f"serve server failed: {self._error!r}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced to the caller in stop()
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        await self.server.start()
        self._loop = asyncio.get_running_loop()
        self._ready.set()
        await self.server.serve_until_shutdown()

    def stop(self, timeout_s: float = 30.0) -> None:
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(
                self.service.shutdown_requested.set
            )
        if self._thread is not None:
            self._thread.join(timeout_s)
            self._thread = None

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = [
    "BackgroundServer",
    "ENDPOINT_FILE",
    "ExperimentService",
    "LATENCY_EDGES_MS",
    "SPAN_BUFFER_LIMIT",
    "TELEMETRY_SAMPLES",
    "ServeServer",
    "UNTRACED_OPS",
    "endpoint_path",
]
