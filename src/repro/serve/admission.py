"""Admission control and brownout: say no early, degrade on purpose.

An overloaded service has exactly two honest moves: reject new work
*immediately* with a retryable error, or keep accepted work flowing by
shedding its own luxuries. Everything else — unbounded queues, silent
slowdown, timeouts deep in the stack — converts overload into hangs
and lost work. This module implements both honest moves for
:class:`repro.serve.service.ExperimentService`:

:class:`AdmissionController`
    Per-shard bounded admission: a request that would push a shard's
    pending queue past its **depth** budget or its queued-request
    **byte** budget is shed with :class:`repro.serve.protocol.
    OverloadedError` before anything is journaled or submitted. The
    ``retry_after_ms`` hint in the error is sized from the shed
    shard's live depth and its service-time EWMA (an estimate of how
    long the backlog takes to drain) and jittered by a seeded stream
    keyed on the shed sequence number — deterministic for a given
    request order, no wall-clock entropy, and different across
    consecutive sheds so a rejected burst re-arrives staggered. The
    ``serve.admit`` fault site fires on every admission decision, so
    chaos drills can force sheds deterministically.

:class:`BrownoutController`
    Sustained pressure (hysteresis over event-loop samples of queue
    depth and estimated drain time) walks the service down a fixed
    degradation ladder, cheapest luxury first::

        0 normal       everything on
        1 no-tracing   request tracing off (span trees are the most
                       expensive thing the hot path does)
        2 lean-cache   tier-0 cache admission shrunk: only small
                       payloads are promoted, so a burst of huge
                       results cannot churn the LRU under pressure
        3 shed-sweeps  ``sweep`` ops shed outright before ``simulate``
                       (one sweep fans out to MAX_SWEEP_POINTS pool
                       jobs; single simulates are the cheaper promise
                       to keep)

    Raising a level takes :attr:`AdmissionPolicy.brownout_raise_after`
    consecutive high-pressure samples; lowering takes
    :attr:`AdmissionPolicy.brownout_lower_after` consecutive calm ones
    — so one spiky sample cannot flap the service. Every transition
    increments ``serve.overload_transitions_total`` and moves the
    ``serve.brownout_level`` gauge, which ``repro serve top`` renders.

Both controllers are plain synchronous state machines driven from the
event loop (no locks, no awaits) — decisions are made at admission
time on the loop, which is exactly where the live queue-depth numbers
already are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs.metrics import MetricsRegistry
from repro.resilience import faults
from repro.serve import protocol
from repro.util.rng import SplitMix, derive_seed

#: Degradation ladder labels, index == level.
BROWNOUT_LEVELS = ("normal", "no-tracing", "lean-cache", "shed-sweeps")


@dataclass(frozen=True)
class AdmissionPolicy:
    """Budgets and knobs for admission control + brownout.

    Defaults are sized for the stock two-shard service: a shard with
    64 queued jobs at ~100 ms each is already a ~6 s backlog — deeper
    queues only turn overload into timeouts.
    """

    #: Per-shard pending-queue depth ceiling (admission budget).
    max_depth: int = 64
    #: Per-shard queued request-bytes ceiling (admission budget).
    max_bytes: int = 4 * 1024 * 1024
    #: EWMA smoothing for per-shard pool service time.
    ewma_alpha: float = 0.2
    #: Floor of the ``retry_after_ms`` hint.
    retry_after_base_ms: int = 25
    #: Ceiling of the ``retry_after_ms`` hint.
    retry_after_cap_ms: int = 5_000
    #: Seed for the deterministic retry-hint jitter stream.
    seed: int = 2006
    #: Pressure (0..1+ fraction of budget) above which a sample counts
    #: toward raising the brownout level.
    brownout_high: float = 0.75
    #: Pressure below which a sample counts toward lowering it.
    brownout_low: float = 0.25
    #: Consecutive high samples needed to raise one level.
    brownout_raise_after: int = 3
    #: Consecutive low samples needed to lower one level.
    brownout_lower_after: int = 8
    #: Backlog drain estimate (depth × EWMA) treated as pressure 1.0.
    drain_target_ms: float = 2_000.0
    #: Tier-0 cache admission cap (bytes per payload) at level >= 2.
    tier0_lean_bytes: int = 16 * 1024


@dataclass
class ShedDecision:
    """Why a request was not admitted, plus the client's backoff hint."""

    reason: str
    shard: int
    retry_after_ms: int

    def raise_overloaded(self) -> None:
        raise protocol.OverloadedError(
            f"shard {self.shard} overloaded ({self.reason}); "
            f"retry after {self.retry_after_ms} ms",
            retry_after_ms=self.retry_after_ms,
        )


class AdmissionController:
    """Per-shard depth/byte budgets with a seeded retry-after hint."""

    def __init__(
        self,
        policy: AdmissionPolicy,
        metrics: MetricsRegistry,
        n_shards: int,
    ) -> None:
        self.policy = policy
        self.metrics = metrics
        #: Bytes of admitted-but-unfinished requests, per shard.
        self.queued_bytes: Dict[int, int] = {i: 0 for i in range(n_shards)}
        #: Per-shard service-time EWMA in milliseconds (0.0 = no data).
        self.ewma_ms: Dict[int, float] = {i: 0.0 for i in range(n_shards)}
        #: Total sheds so far — the jitter stream's sequence number.
        self.sheds = 0

    # -- decisions ----------------------------------------------------

    def try_admit(
        self, shard: int, depth: int, cost_bytes: int
    ) -> Optional[ShedDecision]:
        """Admit (None) or shed (a :class:`ShedDecision`) one request.

        ``depth`` is the shard's *live* pending count, read by the
        caller on the event loop at decision time — the current-depth
        signal, not the high-watermark gauge. Admitting reserves
        ``cost_bytes`` against the shard's byte budget until
        :meth:`release`.
        """
        try:
            faults.fault_point("serve.admit")
        except faults.InjectedFault:
            return self._shed(shard, depth, "injected-fault")
        if depth >= self.policy.max_depth:
            return self._shed(shard, depth, "queue-depth")
        if self.queued_bytes.get(shard, 0) + cost_bytes > self.policy.max_bytes:
            return self._shed(shard, depth, "queue-bytes")
        self.queued_bytes[shard] = self.queued_bytes.get(shard, 0) + cost_bytes
        return None

    def release(
        self,
        shard: int,
        cost_bytes: int,
        service_time_ms: Optional[float] = None,
    ) -> None:
        """Return an admitted request's bytes; fold in its pool time."""
        self.queued_bytes[shard] = max(
            0, self.queued_bytes.get(shard, 0) - cost_bytes
        )
        if service_time_ms is not None and service_time_ms >= 0.0:
            previous = self.ewma_ms.get(shard, 0.0)
            alpha = self.policy.ewma_alpha
            if previous <= 0.0:
                self.ewma_ms[shard] = service_time_ms
            else:
                self.ewma_ms[shard] = (
                    alpha * service_time_ms + (1.0 - alpha) * previous
                )

    def shed_now(self, shard: int, depth: int, reason: str) -> ShedDecision:
        """An externally-decided shed (brownout) with the same hint."""
        return self._shed(shard, depth, reason)

    def _shed(self, shard: int, depth: int, reason: str) -> ShedDecision:
        self.sheds += 1
        self.metrics.counter("serve.overload_sheds_total").inc()
        return ShedDecision(
            reason=reason,
            shard=shard,
            retry_after_ms=self.retry_after_ms(shard, depth),
        )

    def retry_after_ms(self, shard: int, depth: int) -> int:
        """The seeded backoff hint for one shed.

        Sized from the shed shard's backlog drain estimate (live depth
        × its service-time EWMA) so a deeper or slower queue pushes
        clients further away, then scaled by a uniform [0.5, 1.5)
        factor from a SplitMix stream keyed on (seed, shed sequence):
        the same request order always produces the same hints, while
        consecutive sheds get different ones — a rejected burst comes
        back staggered instead of in lockstep.
        """
        policy = self.policy
        drain_ms = self.ewma_ms.get(shard, 0.0) * max(1, depth)
        base = policy.retry_after_base_ms + drain_ms
        rng = SplitMix(derive_seed(policy.seed, "retry-after", self.sheds))
        hint = int(base * (0.5 + rng.random()))
        return max(
            policy.retry_after_base_ms,
            min(policy.retry_after_cap_ms, hint),
        )

    # -- introspection ------------------------------------------------

    def pressure(self, shard: int, depth: int) -> float:
        """One shard's load as a fraction of budget (can exceed 1.0).

        The max of three normalized signals: queue depth against the
        depth budget, queued bytes against the byte budget, and the
        estimated drain time (depth × EWMA) against the drain target.
        """
        policy = self.policy
        depth_frac = depth / policy.max_depth if policy.max_depth else 0.0
        bytes_frac = (
            self.queued_bytes.get(shard, 0) / policy.max_bytes
            if policy.max_bytes
            else 0.0
        )
        drain_frac = (
            (self.ewma_ms.get(shard, 0.0) * depth) / policy.drain_target_ms
            if policy.drain_target_ms
            else 0.0
        )
        return max(depth_frac, bytes_frac, drain_frac)

    def describe(self) -> Dict[str, object]:
        return {
            "max_depth": self.policy.max_depth,
            "max_bytes": self.policy.max_bytes,
            "queued_bytes": dict(self.queued_bytes),
            "ewma_ms": {k: round(v, 3) for k, v in self.ewma_ms.items()},
            "sheds": self.sheds,
        }


class BrownoutController:
    """The degradation ladder: pressure in, service level out."""

    def __init__(
        self, policy: AdmissionPolicy, metrics: MetricsRegistry
    ) -> None:
        self.policy = policy
        self.metrics = metrics
        self.level = 0
        self._high_streak = 0
        self._low_streak = 0
        metrics.gauge("serve.brownout_level").set(0)

    def observe(self, pressure: float) -> int:
        """Feed one pressure sample; returns the (possibly new) level.

        Hysteresis both ways: ``brownout_raise_after`` consecutive
        samples above ``brownout_high`` raise one level;
        ``brownout_lower_after`` consecutive samples below
        ``brownout_low`` lower one. Anything in between resets both
        streaks, holding the current level steady.
        """
        policy = self.policy
        if pressure >= policy.brownout_high:
            self._high_streak += 1
            self._low_streak = 0
            if (
                self._high_streak >= policy.brownout_raise_after
                and self.level < len(BROWNOUT_LEVELS) - 1
            ):
                self._set_level(self.level + 1)
                self._high_streak = 0
        elif pressure <= policy.brownout_low:
            self._low_streak += 1
            self._high_streak = 0
            if (
                self._low_streak >= policy.brownout_lower_after
                and self.level > 0
            ):
                self._set_level(self.level - 1)
                self._low_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
        return self.level

    def _set_level(self, level: int) -> None:
        self.level = level
        self.metrics.counter("serve.overload_transitions_total").inc()
        self.metrics.gauge("serve.brownout_level").set(level)

    # -- what the service asks ----------------------------------------

    @property
    def label(self) -> str:
        return BROWNOUT_LEVELS[self.level]

    def tracing_allowed(self) -> bool:
        """Level >= 1 turns request tracing off (even a pinned
        ``--trace``): span trees are the hot path's priciest luxury,
        and they are the first thing overload pays with."""
        return self.level < 1

    def tier0_admit_bytes(self) -> Optional[int]:
        """Tier-0 cache admission cap at level >= 2 (None = no cap)."""
        if self.level >= 2:
            return self.policy.tier0_lean_bytes
        return None

    def shed_sweeps(self) -> bool:
        """Level >= 3: reject ``sweep`` ops outright, keep ``simulate``."""
        return self.level >= 3

    def describe(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "label": self.label,
            "tracing": self.tracing_allowed(),
            "tier0_admit_bytes": self.tier0_admit_bytes(),
            "shed_sweeps": self.shed_sweeps(),
        }


__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BROWNOUT_LEVELS",
    "BrownoutController",
    "ShedDecision",
]
