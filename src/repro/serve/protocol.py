"""The serve wire protocol: JSON lines in, JSON lines out.

One request per line, one response per line, UTF-8 JSON with no
embedded newlines. The protocol is deliberately transport-dumb —
everything interesting (coalescing, cache tiers, sharding) happens
behind :meth:`repro.serve.service.ExperimentService.handle`, which
consumes and produces the plain dicts this module validates.

Request shapes (``op`` discriminates)::

    {"op": "ping", "id": "r1"}
    {"op": "status", "id": "r2"}
    {"op": "shutdown", "id": "r3"}
    {"op": "simulate", "id": "r4", "workload": "gzip",
     "length": 20000, "seed": 2006, "core": "ooo",
     "config": {"rob_size": 256}}
    {"op": "sweep", "id": "r5", "workload": "gzip",
     "parameter": "rob_size", "values": [32, 64, 128], ...}
    {"op": "stats", "id": "r6"}
    {"op": "trace", "id": "r7", "trace_id": "t-serve-000001",
     "limit": 200}

Every request may additionally carry ``trace_id`` (adopt the caller's
distributed-trace identity) and ``parent_span`` (the caller-side span
the request span should parent to); both are optional opaque tokens
validated by :func:`trace_fields`. ``simulate``/``sweep`` requests may
also carry ``deadline_ms`` — a relative budget after which the client
stops listening; the service propagates it to workers and drops
expired work instead of executing it (:func:`deadline_budget_ms`).
``stats`` and ``trace`` are served from in-memory state on the event
loop — they never touch the pool or the store, so polling them cannot
perturb coalescing.

Responses::

    {"id": "r4", "ok": true, "result": {...},
     "meta": {"key": "...", "source": "tier0|store|dir|pool",
              "coalesced": false, "shard": 1, "elapsed_ms": 3.2}}
    {"id": "r4", "ok": false,
     "error": {"type": "bad-request", "message": "...",
               "retryable": false}}

``error.retryable`` is the client contract for crash and overload
semantics: a ``shard-crashed`` error means the service accepted the
work but lost the shard twice while executing it — the request is safe
to resend (execution is journaled and content-addressed, so a retry
either replays the stored result or recomputes it). An ``overloaded``
error means admission control shed the request *before* accepting it
(nothing journaled, nothing executed — always safe to resend) and
carries ``retry_after_ms``, the service's seeded-deterministic backoff
hint. ``deadline-exceeded`` is not retryable: the caller's own budget
ran out. The full error × retryable × client-action table lives in
``docs/serve.md``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple

from repro.lab.jobs import SimJob, SweepJob
from repro.pipeline.config import CoreConfig

#: Operations the service understands.
OPS = ("ping", "status", "simulate", "sweep", "shutdown", "stats", "trace")

#: Hard ceiling on one request line (bytes); guards the reader buffer.
MAX_LINE_BYTES = 1_000_000

#: Per-request ceiling on simulated instructions, so one query cannot
#: monopolize a shard for minutes.
MAX_LENGTH = 2_000_000

#: And on sweep fan-out.
MAX_SWEEP_POINTS = 64

DEFAULT_LENGTH = 20_000
DEFAULT_SEED = 2006

#: Ceiling on a request's ``deadline_ms`` budget (one hour): a larger
#: value is almost certainly a unit bug on the client side.
MAX_DEADLINE_MS = 3_600_000

#: ``error.type`` values the service emits.
ERR_BAD_REQUEST = "bad-request"
ERR_JOB_FAILED = "job-failed"
ERR_SHARD_CRASHED = "shard-crashed"
ERR_OVERLOADED = "overloaded"
ERR_DEADLINE = "deadline-exceeded"
ERR_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A request that cannot be dispatched (malformed, out of bounds)."""

    error_type = ERR_BAD_REQUEST
    retryable = False


class ShardCrashError(RuntimeError):
    """The owning shard died (twice) while executing accepted work.

    Retryable by contract: the journal has the request on record and
    the store is content-addressed, so resending is always safe.
    """

    error_type = ERR_SHARD_CRASHED
    retryable = True


class OverloadedError(RuntimeError):
    """Admission control shed the request before accepting it.

    Retryable by contract — nothing was journaled or executed, so
    resending is always safe. ``retry_after_ms`` is the service's
    seeded-deterministic backoff hint (sized from the shed shard's
    queue depth and its service-time EWMA); well-behaved clients wait
    at least that long, which is what turns a burst into a ramp.
    """

    error_type = ERR_OVERLOADED
    retryable = True

    def __init__(self, message: str, retry_after_ms: int = 0) -> None:
        super().__init__(message)
        self.retry_after_ms = int(retry_after_ms)

    def wire_extra(self) -> Dict[str, Any]:
        return {"retry_after_ms": self.retry_after_ms}


class DeadlineExceededError(RuntimeError):
    """The request's ``deadline_ms`` budget ran out before completion.

    *Not* retryable: the caller's budget is spent, so a mechanical
    retry with the same deadline would just expire again. Re-issue
    with a larger budget if the result is still wanted — accepted work
    keeps its journal record, and a finished computation lands in the
    content-addressed store, so the re-issue is typically a cache hit.
    """

    error_type = ERR_DEADLINE
    retryable = False


def encode_line(obj: Dict[str, Any]) -> bytes:
    """One protocol frame: compact JSON, newline-terminated."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(raw: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(raw) > MAX_LINE_BYTES:
        raise ProtocolError(f"request line over {MAX_LINE_BYTES} bytes")
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def request_op(obj: Dict[str, Any]) -> str:
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; one of {', '.join(OPS)}"
        )
    return op


def request_id(obj: Dict[str, Any]) -> Optional[str]:
    """The client's correlation id, if it sent one (echoed verbatim)."""
    rid = obj.get("id")
    return str(rid) if rid is not None else None


#: Opaque trace tokens: printable, no whitespace, bounded. Deliberately
#: loose — they only have to be safe to echo into journals and exports.
TRACE_TOKEN_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")


def trace_fields(obj: Dict[str, Any]) -> Tuple[Optional[str], Optional[str]]:
    """Validate the optional ``trace_id``/``parent_span`` request fields."""
    tokens = []
    for name in ("trace_id", "parent_span"):
        raw = obj.get(name)
        if raw is None:
            tokens.append(None)
            continue
        if not isinstance(raw, str) or not TRACE_TOKEN_RE.match(raw):
            raise ProtocolError(
                f"{name!r} must be a short printable token"
                f" (pattern {TRACE_TOKEN_RE.pattern})"
            )
        tokens.append(raw)
    return tokens[0], tokens[1]


def deadline_budget_ms(obj: Dict[str, Any]) -> Optional[int]:
    """Validate the optional ``deadline_ms`` field (relative budget).

    ``None`` when absent. The budget is client-relative milliseconds;
    the service converts it to an absolute monotonic deadline at
    arrival (:mod:`repro.resilience.deadline`), which is what rides
    the shard queue into workers.
    """
    raw = obj.get("deadline_ms")
    if raw is None:
        return None
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ProtocolError("'deadline_ms' must be an integer")
    if not 1 <= raw <= MAX_DEADLINE_MS:
        raise ProtocolError(
            f"'deadline_ms' must be in [1, {MAX_DEADLINE_MS}]"
        )
    return raw


def _int_field(
    obj: Dict[str, Any], name: str, default: int, low: int, high: int
) -> int:
    raw = obj.get(name, default)
    if isinstance(raw, bool) or not isinstance(raw, int):
        raise ProtocolError(f"{name!r} must be an integer")
    if not low <= raw <= high:
        raise ProtocolError(f"{name!r} must be in [{low}, {high}]")
    return raw


def _config_from(obj: Dict[str, Any]) -> CoreConfig:
    overrides = obj.get("config") or {}
    if not isinstance(overrides, dict):
        raise ProtocolError("'config' must be an object of field overrides")
    try:
        return CoreConfig().with_overrides(**overrides)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad config override: {exc}") from None


def sim_job_from(obj: Dict[str, Any]) -> SimJob:
    """Validate a ``simulate`` request into a content-addressed job."""
    workload = obj.get("workload")
    if not workload or not isinstance(workload, str):
        raise ProtocolError("'workload' (string) is required")
    core = obj.get("core", "ooo")
    if core not in ("ooo", "inorder"):
        raise ProtocolError("'core' must be 'ooo' or 'inorder'")
    try:
        return SimJob(
            workload=workload,
            length=_int_field(obj, "length", DEFAULT_LENGTH, 1, MAX_LENGTH),
            seed=_int_field(obj, "seed", DEFAULT_SEED, 0, 2**63 - 1),
            config=_config_from(obj),
            core=core,
        )
    except ValueError as exc:
        raise ProtocolError(str(exc)) from None


def sweep_jobs_from(obj: Dict[str, Any]) -> List[SimJob]:
    """Validate a ``sweep`` request and expand it point by point."""
    parameter = obj.get("parameter")
    if not parameter or not isinstance(parameter, str):
        raise ProtocolError("'parameter' (CoreConfig field) is required")
    values = obj.get("values")
    if not isinstance(values, list) or not values:
        raise ProtocolError("'values' must be a non-empty list")
    if len(values) > MAX_SWEEP_POINTS:
        raise ProtocolError(f"at most {MAX_SWEEP_POINTS} sweep points")
    workload = obj.get("workload")
    if not workload or not isinstance(workload, str):
        raise ProtocolError("'workload' (string) is required")
    sweep = SweepJob(
        parameter=parameter,
        values=values,
        workload=workload,
        length=_int_field(obj, "length", DEFAULT_LENGTH, 1, MAX_LENGTH),
        seed=_int_field(obj, "seed", DEFAULT_SEED, 0, 2**63 - 1),
        base_config=_config_from(obj),
        core=obj.get("core", "ooo"),
    )
    try:
        return sweep.expand()
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad sweep: {exc}") from None


def summarize_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """The compact result clients get back on the wire.

    Full payloads stay in the store (fetch by ``meta.key``); the
    response carries the headline numbers so frames stay small.
    """
    instructions = payload.get("instructions", 0)
    cycles = payload.get("cycles", 0)
    return {
        "type": payload.get("type"),
        "instructions": instructions,
        "cycles": cycles,
        "ipc": (instructions / cycles) if cycles else 0.0,
        "events": len(payload.get("events", ())),
    }


def ok_response(
    rid: Optional[str], result: Any, meta: Dict[str, Any]
) -> Dict[str, Any]:
    response: Dict[str, Any] = {"ok": True, "result": result, "meta": meta}
    if rid is not None:
        response["id"] = rid
    return response


def error_response(
    rid: Optional[str],
    error_type: str,
    message: str,
    retryable: bool = False,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    error: Dict[str, Any] = {
        "type": error_type,
        "message": message,
        "retryable": retryable,
    }
    if extra:
        error.update(extra)
    response: Dict[str, Any] = {"ok": False, "error": error}
    if rid is not None:
        response["id"] = rid
    return response


__all__ = [
    "DEFAULT_LENGTH",
    "DEFAULT_SEED",
    "ERR_BAD_REQUEST",
    "ERR_DEADLINE",
    "ERR_INTERNAL",
    "ERR_JOB_FAILED",
    "ERR_OVERLOADED",
    "ERR_SHARD_CRASHED",
    "MAX_DEADLINE_MS",
    "MAX_LENGTH",
    "MAX_LINE_BYTES",
    "MAX_SWEEP_POINTS",
    "OPS",
    "DeadlineExceededError",
    "OverloadedError",
    "ProtocolError",
    "TRACE_TOKEN_RE",
    "ShardCrashError",
    "deadline_budget_ms",
    "decode_line",
    "encode_line",
    "error_response",
    "ok_response",
    "request_id",
    "request_op",
    "sim_job_from",
    "summarize_payload",
    "sweep_jobs_from",
    "trace_fields",
]
