"""Synchronous JSON-lines client for the serve front door.

Used by the tests, the CI traffic driver, and ``repro serve status``.
Deliberately synchronous (plain ``socket``): callers are scripts and
test code, and a blocking client exercises the server's concurrency
from the outside instead of sharing its event loop.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.serve import protocol
from repro.serve.service import endpoint_path


class ServeClientError(RuntimeError):
    """Transport-level failure (connect, framing, truncated stream)."""


def read_endpoint(store_root: Union[str, Path]) -> Dict[str, Any]:
    """The running service's advertised address under ``store_root``."""
    path = endpoint_path(store_root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ServeClientError(
            f"no serve endpoint at {path} ({exc}); is the service running?"
        ) from None
    if not isinstance(record, dict) or "port" not in record:
        raise ServeClientError(f"malformed endpoint file {path}")
    return record


class ServeClient:
    """One connection, request/response in lockstep."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._sent = 0

    @classmethod
    def from_store(
        cls, store_root: Union[str, Path], timeout_s: float = 60.0
    ) -> "ServeClient":
        record = read_endpoint(store_root)
        return cls(
            host=record.get("host", "127.0.0.1"),
            port=int(record["port"]),
            timeout_s=timeout_s,
        )

    def _ensure_connected(self) -> None:
        if self._sock is not None:
            return
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
        except OSError as exc:
            raise ServeClientError(
                f"cannot connect to serve at {self.host}:{self.port}: {exc}"
            ) from None
        self._reader = self._sock.makefile("rb")

    def request(self, obj: Dict[str, Any]) -> Dict[str, Any]:
        """Send one frame, read one frame; raises only on transport."""
        self._ensure_connected()
        if "id" not in obj:
            self._sent += 1
            obj = {**obj, "id": f"c{self._sent}"}
        try:
            self._sock.sendall(protocol.encode_line(obj))
            raw = self._reader.readline()
        except OSError as exc:
            self.close()
            raise ServeClientError(f"serve connection failed: {exc}") from None
        if not raw:
            self.close()
            raise ServeClientError("serve closed the connection mid-request")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeClientError(f"bad response frame: {exc}") from None
        if not isinstance(response, dict):
            raise ServeClientError("response frame is not an object")
        return response

    # -- op helpers ---------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"}).get("result") == "pong"

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def stats(self) -> Dict[str, Any]:
        """Live telemetry snapshot (queue depths, quantiles, samples)."""
        return self.request({"op": "stats"})

    def trace(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        """Span snapshot — one request's tree, or the recent window."""
        obj: Dict[str, Any] = {"op": "trace"}
        if trace_id is not None:
            obj["trace_id"] = trace_id
        if limit is not None:
            obj["limit"] = limit
        return self.request(obj)

    def simulate(
        self,
        workload: str,
        length: int = protocol.DEFAULT_LENGTH,
        seed: int = protocol.DEFAULT_SEED,
        core: str = "ooo",
        config: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> Dict[str, Any]:
        obj = {
            "op": "simulate",
            "workload": workload,
            "length": length,
            "seed": seed,
            "core": core,
            "config": config or {},
        }
        if trace_id is not None:
            obj["trace_id"] = trace_id
        if parent_span is not None:
            obj["parent_span"] = parent_span
        return self.request(obj)

    def sweep(
        self,
        workload: str,
        parameter: str,
        values: List[Any],
        length: int = protocol.DEFAULT_LENGTH,
        seed: int = protocol.DEFAULT_SEED,
        core: str = "ooo",
        config: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
    ) -> Dict[str, Any]:
        obj = {
            "op": "sweep",
            "workload": workload,
            "parameter": parameter,
            "values": values,
            "length": length,
            "seed": seed,
            "core": core,
            "config": config or {},
        }
        if trace_id is not None:
            obj["trace_id"] = trace_id
        if parent_span is not None:
            obj["parent_span"] = parent_span
        return self.request(obj)

    def close(self) -> None:
        reader, self._reader = self._reader, None
        sock, self._sock = self._sock, None
        for closable in (reader, sock):
            if closable is None:
                continue
            try:
                closable.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServeClient", "ServeClientError", "read_endpoint"]
