"""Synchronous JSON-lines client for the serve front door.

Used by the tests, the CI traffic driver, and ``repro serve status``.
Deliberately synchronous (plain ``socket``): callers are scripts and
test code, and a blocking client exercises the server's concurrency
from the outside instead of sharing its event loop.

Resilience (all opt-in; the zero-argument client behaves exactly like
a bare socket with a timeout):

- **Full-exchange timeout.** ``timeout_s`` bounds one *complete*
  request/response exchange against an absolute monotonic deadline —
  not each socket operation separately. The distinction matters: a
  stalling server that dribbles one byte per ``timeout_s`` would keep
  a per-operation timeout alive forever, because every ``recv`` that
  makes progress resets it. Here every ``recv`` gets only the time
  remaining on the exchange, so the client always unblocks on time.
- **Retries** (``retries=N``): a transport failure or a *retryable*
  error response is retried with a seeded jittered exponential backoff
  — and when the server's ``overloaded`` rejection carries a
  ``retry_after_ms`` hint, the client honours it (the delay is the
  max of the hint and the backoff; the server knows its backlog
  better than any client-side curve).
- **Circuit breaker** (``breaker=CircuitBreaker(...)``): consecutive
  failures against one endpoint (op name) open the circuit and fail
  calls locally; see :mod:`repro.serve.breaker`. With retries left
  and budget remaining, the client sleeps out the cooldown and probes
  again instead of surfacing :class:`~repro.serve.breaker.
  CircuitOpenError` immediately.
- **Deadlines** (``deadline_ms=...`` on :meth:`ServeClient.request`,
  :meth:`~ServeClient.simulate`, :meth:`~ServeClient.sweep`): one
  budget bounds the *whole* round trip — connect, send, stall, every
  retry and backoff sleep — and each attempt forwards the remaining
  budget on the wire as the request's ``deadline_ms``, so the server
  and its workers stop spending on the request the moment the client
  stops waiting.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Union

from repro.serve import protocol
from repro.serve.breaker import CircuitBreaker, CircuitOpenError
from repro.serve.service import endpoint_path
from repro.util.rng import jittered_backoff_s

#: recv chunk size for the line reader.
_RECV_BYTES = 65536


class ServeClientError(RuntimeError):
    """Transport-level failure (connect, framing, truncated stream)."""


class ServeClientTimeout(ServeClientError):
    """The full-exchange (or full-request) budget ran out client-side."""


def read_endpoint(store_root: Union[str, Path]) -> Dict[str, Any]:
    """The running service's advertised address under ``store_root``."""
    path = endpoint_path(store_root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            record = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ServeClientError(
            f"no serve endpoint at {path} ({exc}); is the service running?"
        ) from None
    if not isinstance(record, dict) or "port" not in record:
        raise ServeClientError(f"malformed endpoint file {path}")
    return record


def retryable_error(response: Dict[str, Any]) -> bool:
    """True when a response is an error the server marked retryable."""
    if response.get("ok"):
        return False
    error = response.get("error")
    return isinstance(error, dict) and bool(error.get("retryable"))


class ServeClient:
    """One connection, request/response in lockstep."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: float = 60.0,
        retries: int = 0,
        backoff_base_s: float = 0.05,
        breaker: Optional[CircuitBreaker] = None,
        seed: int = 2006,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.breaker = breaker
        self.seed = seed
        self._sleep = sleep
        self._clock = clock
        self._sock: Optional[socket.socket] = None
        self._rbuf = bytearray()
        self._sent = 0
        self.retries_performed = 0

    @classmethod
    def from_store(
        cls, store_root: Union[str, Path], timeout_s: float = 60.0, **kwargs
    ) -> "ServeClient":
        record = read_endpoint(store_root)
        return cls(
            host=record.get("host", "127.0.0.1"),
            port=int(record["port"]),
            timeout_s=timeout_s,
            **kwargs,
        )

    # -- one bounded exchange -----------------------------------------

    def _ensure_connected(self, deadline_mono: float) -> None:
        if self._sock is not None:
            return
        budget = deadline_mono - self._clock()
        if budget <= 0:
            raise ServeClientTimeout(
                f"timeout connecting to serve at {self.host}:{self.port}"
            )
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=budget
            )
        except socket.timeout:
            raise ServeClientTimeout(
                f"timeout connecting to serve at {self.host}:{self.port}"
            ) from None
        except OSError as exc:
            raise ServeClientError(
                f"cannot connect to serve at {self.host}:{self.port}: {exc}"
            ) from None
        self._rbuf = bytearray()

    def _read_line(self, deadline_mono: float) -> bytes:
        """One ``\\n``-terminated frame, bounded by the exchange deadline.

        A hand-rolled reader instead of ``sock.makefile``: a buffered
        reader applies the socket timeout per underlying ``recv``, so a
        server dribbling bytes resets the clock on every drip. Here
        each ``recv`` gets only the time left on the whole exchange.
        """
        while True:
            newline = self._rbuf.find(b"\n")
            if newline >= 0:
                line = bytes(self._rbuf[: newline + 1])
                del self._rbuf[: newline + 1]
                return line
            remaining = deadline_mono - self._clock()
            if remaining <= 0:
                raise socket.timeout("exchange deadline reached")
            self._sock.settimeout(remaining)
            chunk = self._sock.recv(_RECV_BYTES)
            if not chunk:
                return b""
            self._rbuf.extend(chunk)

    def _exchange(
        self, obj: Dict[str, Any], budget_s: float
    ) -> Dict[str, Any]:
        """Send one frame, read one frame; the *whole* exchange —
        connect included — is bounded by ``budget_s``."""
        deadline_mono = self._clock() + budget_s
        self._ensure_connected(deadline_mono)
        try:
            self._sock.settimeout(max(0.001, deadline_mono - self._clock()))
            self._sock.sendall(protocol.encode_line(obj))
            raw = self._read_line(deadline_mono)
        except socket.timeout:
            # The connection is mid-frame and unusable: a late response
            # to *this* request must not be read as the answer to the
            # next one.
            self.close()
            raise ServeClientTimeout(
                f"serve exchange exceeded {budget_s:.3f}s"
            ) from None
        except OSError as exc:
            self.close()
            raise ServeClientError(f"serve connection failed: {exc}") from None
        if not raw:
            self.close()
            raise ServeClientError("serve closed the connection mid-request")
        try:
            response = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeClientError(f"bad response frame: {exc}") from None
        if not isinstance(response, dict):
            raise ServeClientError("response frame is not an object")
        return response

    # -- the resilient request loop -----------------------------------

    def request(
        self,
        obj: Dict[str, Any],
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        """One request with the client's full resilience stack.

        Transport errors and retryable error responses consume retries
        (``retries=0`` surfaces them immediately, preserving the plain
        client's behaviour); non-retryable responses return as-is.
        ``deadline_ms`` bounds everything — attempts, backoff sleeps,
        breaker cooldowns — and each attempt forwards the *remaining*
        budget on the wire, so queue time on the server is charged
        against the same clock the client is watching.
        """
        endpoint = str(obj.get("op", "unknown"))
        deadline_mono: Optional[float] = None
        if deadline_ms is not None:
            deadline_mono = self._clock() + deadline_ms / 1000.0
        attempt = 0
        while True:
            try:
                response = self._attempt(obj, endpoint, deadline_mono)
            except CircuitOpenError as exc:
                if attempt >= self.retries:
                    raise
                delay = exc.retry_in_s
                if not self._sleep_within(delay, deadline_mono):
                    raise
                attempt += 1
                self.retries_performed += 1
                continue
            except ServeClientError:
                if self.breaker is not None:
                    self.breaker.record_failure(endpoint)
                if attempt >= self.retries:
                    raise
                if not self._sleep_within(
                    self._backoff_s(endpoint, attempt), deadline_mono
                ):
                    raise
                attempt += 1
                self.retries_performed += 1
                continue
            retryable = retryable_error(response)
            if self.breaker is not None:
                if retryable:
                    # Transport is healthy but the server is shedding
                    # or crashed mid-job: that still counts against the
                    # endpoint — hammering a shedding server is exactly
                    # what the breaker exists to stop.
                    self.breaker.record_failure(endpoint)
                else:
                    self.breaker.record_success(endpoint)
            if not retryable or attempt >= self.retries:
                return response
            delay = max(
                self._retry_after_s(response),
                self._backoff_s(endpoint, attempt),
            )
            if not self._sleep_within(delay, deadline_mono):
                return response
            attempt += 1
            self.retries_performed += 1

    def _attempt(
        self,
        obj: Dict[str, Any],
        endpoint: str,
        deadline_mono: Optional[float],
    ) -> Dict[str, Any]:
        # Breaker accounting contract: once before_call allows the
        # attempt, request() records exactly one success or failure
        # for it — including the ServeClientError paths raised below.
        if self.breaker is not None:
            self.breaker.before_call(endpoint)
        budget_s = self.timeout_s
        wire = dict(obj)
        if deadline_mono is not None:
            remaining_s = deadline_mono - self._clock()
            if remaining_s <= 0:
                raise ServeClientTimeout(
                    f"request deadline expired before attempt ({endpoint})"
                )
            budget_s = min(budget_s, remaining_s)
            wire["deadline_ms"] = max(1, int(remaining_s * 1000))
        if "id" not in wire:
            self._sent += 1
            wire["id"] = f"c{self._sent}"
        return self._exchange(wire, budget_s)

    def _backoff_s(self, endpoint: str, attempt: int) -> float:
        """Seeded jittered exponential backoff for one retry."""
        return jittered_backoff_s(
            self.backoff_base_s, attempt, self.seed, "serve-client",
            endpoint, self._sent,
        )

    @staticmethod
    def _retry_after_s(response: Dict[str, Any]) -> float:
        error = response.get("error")
        if not isinstance(error, dict):
            return 0.0
        hint = error.get("retry_after_ms")
        if isinstance(hint, bool) or not isinstance(hint, (int, float)):
            return 0.0
        return max(0.0, float(hint) / 1000.0)

    def _sleep_within(
        self, delay_s: float, deadline_mono: Optional[float]
    ) -> bool:
        """Sleep ``delay_s`` if the deadline allows; False = give up."""
        if deadline_mono is not None:
            remaining = deadline_mono - self._clock()
            if delay_s >= remaining:
                return False
        if delay_s > 0:
            self._sleep(delay_s)
        return True

    # -- op helpers ---------------------------------------------------

    def ping(self) -> bool:
        return self.request({"op": "ping"}).get("result") == "pong"

    def status(self) -> Dict[str, Any]:
        return self.request({"op": "status"})

    def shutdown(self) -> Dict[str, Any]:
        return self.request({"op": "shutdown"})

    def stats(self) -> Dict[str, Any]:
        """Live telemetry snapshot (queue depths, quantiles, samples)."""
        return self.request({"op": "stats"})

    def trace(
        self, trace_id: Optional[str] = None, limit: Optional[int] = None
    ) -> Dict[str, Any]:
        """Span snapshot — one request's tree, or the recent window."""
        obj: Dict[str, Any] = {"op": "trace"}
        if trace_id is not None:
            obj["trace_id"] = trace_id
        if limit is not None:
            obj["limit"] = limit
        return self.request(obj)

    def simulate(
        self,
        workload: str,
        length: int = protocol.DEFAULT_LENGTH,
        seed: int = protocol.DEFAULT_SEED,
        core: str = "ooo",
        config: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        obj = {
            "op": "simulate",
            "workload": workload,
            "length": length,
            "seed": seed,
            "core": core,
            "config": config or {},
        }
        if trace_id is not None:
            obj["trace_id"] = trace_id
        if parent_span is not None:
            obj["parent_span"] = parent_span
        return self.request(obj, deadline_ms=deadline_ms)

    def sweep(
        self,
        workload: str,
        parameter: str,
        values: List[Any],
        length: int = protocol.DEFAULT_LENGTH,
        seed: int = protocol.DEFAULT_SEED,
        core: str = "ooo",
        config: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
        parent_span: Optional[str] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, Any]:
        obj = {
            "op": "sweep",
            "workload": workload,
            "parameter": parameter,
            "values": values,
            "length": length,
            "seed": seed,
            "core": core,
            "config": config or {},
        }
        if trace_id is not None:
            obj["trace_id"] = trace_id
        if parent_span is not None:
            obj["parent_span"] = parent_span
        return self.request(obj, deadline_ms=deadline_ms)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._rbuf = bytearray()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "ServeClient",
    "ServeClientError",
    "ServeClientTimeout",
    "read_endpoint",
    "retryable_error",
]
