"""Plain-text table rendering for benchmark and harness output.

The benchmark harness prints the rows of every reproduced table/figure as
aligned ASCII; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import List, Sequence


def _render_cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = ".3f",
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Floats are formatted with ``float_fmt``; all other values via ``str``.
    """
    rendered = [[_render_cell(cell, float_fmt) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_fmt: str = ".3f",
) -> str:
    """Render a GitHub-flavoured markdown table (used by EXPERIMENTS.md)."""
    rendered = [[_render_cell(cell, float_fmt) for cell in row] for row in rows]
    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
