"""Argument validation helpers shared by configuration dataclasses."""

from __future__ import annotations


def check_positive(name: str, value: float) -> None:
    """Raise ValueError unless ``value`` is strictly positive."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_non_negative(name: str, value: float) -> None:
    """Raise ValueError unless ``value`` is >= 0."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise ValueError unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")


def check_power_of_two(name: str, value: int) -> None:
    """Raise ValueError unless ``value`` is a positive power of two."""
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{name} must be a power of two, got {value}")
