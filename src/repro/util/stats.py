"""Small statistics helpers used across measurement and modelling code."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple


class RunningMean:
    """Incrementally maintained arithmetic mean."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, value: float, weight: float = 1.0) -> None:
        self.count += 1
        self.total += value * weight
        self._weight_total = getattr(self, "_weight_total", 0.0) + weight

    @property
    def mean(self) -> float:
        weight_total = getattr(self, "_weight_total", 0.0)
        if weight_total == 0.0:
            return 0.0
        return self.total / weight_total


class OnlineStats:
    """Welford online mean/variance with min/max tracking."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    def summary(self) -> Dict[str, float]:
        """Return a plain-dict summary convenient for table rendering."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "stddev": self.stddev,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
        }


class Histogram:
    """Integer-valued histogram with exact counts per value.

    Used for interval-length and resolution-time distributions, where the
    domain is small non-negative integers (cycles, instruction counts).
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self.total = 0

    def add(self, value: int, count: int = 1) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        self._counts[value] = self._counts.get(value, 0) + count
        self.total += count

    def count(self, value: int) -> int:
        return self._counts.get(value, 0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.total == other.total and self._counts == other._counts

    def __repr__(self) -> str:
        return f"Histogram(total={self.total}, values={len(self._counts)})"

    def items(self) -> List[Tuple[int, int]]:
        """Return (value, count) pairs sorted by value."""
        return sorted(self._counts.items())

    @property
    def mean(self) -> float:
        if not self.total:
            return 0.0
        return sum(v * c for v, c in self._counts.items()) / self.total

    def percentile(self, q: float) -> int:
        """Return the smallest value whose CDF reaches ``q`` (0..1]."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile must be in (0, 1], got {q}")
        if not self.total:
            raise ValueError("empty histogram has no percentiles")
        threshold = q * self.total
        acc = 0
        for value, count in self.items():
            acc += count
            if acc >= threshold:
                return value
        return self.items()[-1][0]

    def cdf(self) -> List[Tuple[int, float]]:
        """Return the cumulative distribution as (value, fraction<=value)."""
        acc = 0
        out = []
        for value, count in self.items():
            acc += count
            out.append((value, acc / self.total))
        return out


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile of a sequence, q in [0, 1]."""
    if not values:
        raise ValueError("empty sequence has no percentiles")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"percentile must be in [0, 1], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    pos = q * (len(ordered) - 1)
    lower = int(math.floor(pos))
    upper = int(math.ceil(pos))
    if lower == upper:
        return float(ordered[lower])
    frac = pos - lower
    return ordered[lower] * (1.0 - frac) + ordered[upper] * frac


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; every value must be positive."""
    if not values:
        raise ValueError("geometric mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean; every value must be positive."""
    if not values:
        raise ValueError("harmonic mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("harmonic mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def weighted_mean(values: Sequence[float], weights: Sequence[float]) -> float:
    """Weighted arithmetic mean."""
    if len(values) != len(weights):
        raise ValueError("values and weights must have the same length")
    total_weight = float(sum(weights))
    if total_weight <= 0.0:
        raise ValueError("weights must sum to a positive value")
    return sum(v * w for v, w in zip(values, weights)) / total_weight


def bucketize(value: float, edges: Sequence[float]) -> int:
    """Return the index of the bucket containing ``value``.

    ``edges`` are ascending upper bounds of the first ``len(edges)``
    buckets; values above the last edge fall into bucket ``len(edges)``.
    """
    for i, edge in enumerate(edges):
        if value <= edge:
            return i
    return len(edges)
