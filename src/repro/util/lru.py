"""A small bounded LRU mapping used by the harness caches.

The harness used to memoize traces and simulations in unbounded dicts;
long sweeps (hundreds of distinct configurations) made those grow
without limit. :class:`LRUCache` keeps the dict interface the harness
needs (``in``, ``[]``, ``[]=``, ``clear``, ``len``) while evicting the
least-recently-used entry once ``capacity`` is exceeded.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Iterator, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Both reads and writes refresh an entry's recency. ``capacity`` must
    be positive; eviction counts are kept in :attr:`evictions` so cache
    sizing can be audited (the lab telemetry reads it).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[K, V]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __getitem__(self, key: K) -> V:
        value = self._data[key]
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Recency-refreshing lookup that records hit/miss counts."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def clear(self) -> None:
        self._data.clear()
