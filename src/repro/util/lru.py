"""A small bounded LRU mapping used by the harness and serve caches.

The harness used to memoize traces and simulations in unbounded dicts;
long sweeps (hundreds of distinct configurations) made those grow
without limit. :class:`LRUCache` keeps the dict interface the harness
needs (``in``, ``[]``, ``[]=``, ``clear``, ``len``) while evicting the
least-recently-used entry once ``capacity`` is exceeded.

Two independent bounds are supported:

- ``capacity`` — maximum entry count (always enforced);
- ``max_bytes`` — maximum total payload size, measured by the
  ``sizeof`` callable (default :func:`sys.getsizeof`). The serve
  tier-0 result cache uses this mode so a handful of huge simulation
  payloads cannot pin unbounded memory the way a pure item bound would
  allow.

Every lookup path (``get``, ``[]``) records hit/miss counts and
evictions are tallied, so cache sizing can be audited — the lab
telemetry and ``repro serve status`` both read :meth:`stats`.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from typing import Callable, Dict, Generic, Iterator, Optional, TypeVar, Union

K = TypeVar("K")
V = TypeVar("V")

_MISSING = object()


class LRUCache(Generic[K, V]):
    """Bounded mapping with least-recently-used eviction.

    Both reads and writes refresh an entry's recency. ``capacity`` must
    be positive. ``max_bytes`` (optional) adds a size bound: each
    stored value is measured once, at insertion, by ``sizeof``; when
    the running total exceeds ``max_bytes`` the least-recently-used
    entries are evicted until it fits. A single value larger than
    ``max_bytes`` is itself evicted immediately — the cache never holds
    an entry it cannot afford.
    """

    def __init__(
        self,
        capacity: int,
        max_bytes: Optional[int] = None,
        sizeof: Optional[Callable[[V], int]] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._sizeof = sizeof or sys.getsizeof
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Total measured size of the stored values (max_bytes mode
        #: only tracks it, but it is maintained unconditionally so
        #: stats() is meaningful either way).
        self.bytes = 0
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._sizes: Dict[K, int] = {}

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: K) -> bool:
        # Deliberately not counted: the harness probes with `in` before
        # indexing, and counting both would double every hit.
        return key in self._data

    def __iter__(self) -> Iterator[K]:
        return iter(self._data)

    def __getitem__(self, key: K) -> V:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            raise
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def __setitem__(self, key: K, value: V) -> None:
        if key in self._data:
            self.bytes -= self._sizes.get(key, 0)
            self._data.move_to_end(key)
        size = int(self._sizeof(value))
        self._data[key] = value
        self._sizes[key] = size
        self.bytes += size
        self._evict_to_bounds()

    def _over_bounds(self) -> bool:
        if len(self._data) > self.capacity:
            return True
        return self.max_bytes is not None and self.bytes > self.max_bytes

    def _evict_to_bounds(self) -> None:
        while self._data and self._over_bounds():
            key, _ = self._data.popitem(last=False)
            self.bytes -= self._sizes.pop(key, 0)
            self.evictions += 1

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Recency-refreshing lookup that records hit/miss counts."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def pop(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Remove and return an entry (no hit/miss accounting)."""
        value = self._data.pop(key, _MISSING)
        if value is _MISSING:
            return default
        self.bytes -= self._sizes.pop(key, 0)
        return value

    def clear(self) -> None:
        self._data.clear()
        self._sizes.clear()
        self.bytes = 0

    def stats(self) -> Dict[str, Union[int, None]]:
        """Hit/miss/eviction/size accounting for telemetry surfaces."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._data),
            "bytes": self.bytes,
            "capacity": self.capacity,
            "max_bytes": self.max_bytes,
        }
