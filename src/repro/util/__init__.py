"""Shared utilities: deterministic RNG helpers, statistics, and tables.

These helpers are deliberately dependency-light; everything in the
simulator proper builds on them, so they must stay small and obvious.
"""

from repro.util.rng import SplitMix, derive_seed
from repro.util.stats import (
    Histogram,
    OnlineStats,
    RunningMean,
    bucketize,
    geometric_mean,
    harmonic_mean,
    percentile,
    weighted_mean,
)
from repro.util.tabulate import format_table, format_markdown_table
from repro.util.validation import (
    check_in_range,
    check_non_negative,
    check_positive,
    check_power_of_two,
)

__all__ = [
    "SplitMix",
    "derive_seed",
    "Histogram",
    "OnlineStats",
    "RunningMean",
    "bucketize",
    "geometric_mean",
    "harmonic_mean",
    "percentile",
    "weighted_mean",
    "format_table",
    "format_markdown_table",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_power_of_two",
]
