"""Deterministic random number generation for reproducible experiments.

Every stochastic component in the library (synthetic trace generation,
random replacement, workload profiles) draws from an explicitly seeded
generator so that two runs with the same configuration produce identical
traces, identical miss events, and therefore identical measurements.

``SplitMix`` is a small, fast 64-bit generator (SplitMix64) with a
convenient ``split`` operation for deriving independent child streams.
We use it rather than ``random.Random`` where we want a stable algorithm
that cannot change across Python versions.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def _mix(z: int) -> int:
    """The SplitMix64 finalizer: avalanche a 64-bit state into an output."""
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    z = (z ^ (z >> 27)) * 0x94D049BB133111EB & _MASK64
    return z ^ (z >> 31)


def derive_seed(base: int, *labels: object) -> int:
    """Derive a child seed from ``base`` and a sequence of labels.

    Labels may be strings or integers; the derivation is stable across
    runs and platforms, so a component can carve out an independent
    stream with e.g. ``derive_seed(seed, "dcache", workload_name)``.
    """
    state = _mix(base & _MASK64)
    for label in labels:
        if isinstance(label, int):
            chunk = label & _MASK64
        else:
            chunk = 0
            for byte in str(label).encode("utf-8"):
                chunk = (chunk * 131 + byte) & _MASK64
        state = _mix((state + chunk + _GOLDEN) & _MASK64)
    return state


def jittered_backoff_s(base_s: float, attempt: int, *labels: object) -> float:
    """Seeded exponential backoff with jitter: no wall clock, no lockstep.

    Returns ``base_s * 2**attempt`` scaled by a uniform factor in
    [0.5, 1.5) drawn from a SplitMix stream derived from ``labels``
    (typically a job key) and the attempt number. Two workers retrying
    different jobs therefore sleep different durations — no thundering
    herd — while the same (job, attempt) pair always sleeps the same
    duration, keeping runs reproducible.
    """
    if base_s <= 0.0:
        return 0.0
    rng = SplitMix(derive_seed(0xB0FF, attempt, *labels))
    return base_s * (2 ** max(0, attempt)) * (0.5 + rng.random())


class SplitMix:
    """SplitMix64 pseudo-random generator.

    Provides the handful of draw shapes the library needs: 64-bit words,
    bounded integers, unit-interval floats, geometric and Bernoulli
    variates, and weighted choice.
    """

    def __init__(self, seed: int):
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        """Return the next raw 64-bit output."""
        self._state = (self._state + _GOLDEN) & _MASK64
        return _mix(self._state)

    def split(self, *labels: object) -> "SplitMix":
        """Return an independent child generator derived from labels."""
        return SplitMix(derive_seed(self._state, "split", *labels))

    def random(self) -> float:
        """Return a float uniformly distributed in [0, 1)."""
        return (self.next_u64() >> 11) * (1.0 / (1 << 53))

    def randint(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in [low, high]."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        span = high - low + 1
        return low + self.next_u64() % span

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self.random() < p

    def geometric(self, p: float, cap: int = 1 << 20) -> int:
        """Number of failures before the first success, capped.

        ``p`` is the per-trial success probability. The cap keeps a
        pathological probability from generating unbounded values.
        """
        if not 0.0 < p <= 1.0:
            raise ValueError(f"geometric probability must be in (0, 1], got {p}")
        count = 0
        while count < cap and not self.bernoulli(p):
            count += 1
        return count

    def choice(self, items: list) -> object:
        """Return a uniformly chosen element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty list")
        return items[self.randint(0, len(items) - 1)]

    def weighted_choice(self, items: list, weights: list) -> object:
        """Return an element of ``items`` chosen with the given weights."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        total = float(sum(weights))
        if total <= 0.0:
            raise ValueError("weights must sum to a positive value")
        target = self.random() * total
        acc = 0.0
        for item, weight in zip(items, weights):
            acc += weight
            if target < acc:
                return item
        return items[-1]

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place (Fisher-Yates)."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randint(0, i)
            items[i], items[j] = items[j], items[i]
