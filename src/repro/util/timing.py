"""Wall-clock measurement at the harness boundary.

The lint rule CLK001 bans direct ``time.*`` reads inside the
simulation packages (``pipeline/``, ``interval/``, ``frontend/``):
simulated time must be a pure function of trace + configuration.
Speedup and throughput numbers are still wanted, so this module is the
one blessed doorway — a monotonic :class:`Stopwatch` that simulation
code may *carry* (it never influences simulated results) and tests can
substitute with a fake clock to make timing-dependent assertions
deterministic.
"""

from __future__ import annotations

import time
from typing import Callable

#: The default clock: monotonic, high-resolution, unaffected by NTP.
default_clock: Callable[[], float] = time.perf_counter

#: Integer-nanosecond variant of :data:`default_clock`. Span timestamps
#: (:mod:`repro.obs.spans`) use this so latency-stack components can sum
#: to wall latency *exactly* — integer arithmetic carries no rounding.
default_clock_ns: Callable[[], int] = time.perf_counter_ns


class Stopwatch:
    """Measure an elapsed wall-time span via an injectable clock."""

    def __init__(self, clock: Callable[[], float] = default_clock):
        self._clock = clock
        self._started = clock()

    def restart(self) -> None:
        self._started = self._clock()

    @property
    def elapsed(self) -> float:
        """Seconds since construction (or the last :meth:`restart`)."""
        return self._clock() - self._started


__all__ = ["Stopwatch", "default_clock", "default_clock_ns"]
